#!/usr/bin/env python3
"""When does decentralized-aware ordering actually matter?

The paper's point is that with *heterogeneous* inter-service transfer costs the
classical centralized (communication-oblivious) ordering can be far from
optimal.  This example sweeps the heterogeneity of a clustered (LAN/WAN)
network from 0 (uniform costs, the Srivastava et al. setting) to 1 (fully
clustered) while keeping the mean transfer cost fixed, and reports how far the
centralized ordering drifts from the optimum — the shape of experiment E4.

Run it with::

    python examples/decentralized_vs_centralized.py
"""

from __future__ import annotations

from repro.core import branch_and_bound
from repro.core.srivastava import SrivastavaOptimizer
from repro.network import clustered_matrix, interpolate_to_uniform
from repro.utils import Table
from repro.workloads import default_spec, generate_problem


def main() -> None:
    base = generate_problem(default_spec(8), seed=2026)
    clustered = clustered_matrix(8, cluster_count=2, seed=7, intra_cost=0.1, inter_cost=3.0)

    table = Table(
        ["heterogeneity", "optimal cost", "centralized cost", "penalty"],
        title="centralized ordering vs the decentralized optimum",
    )
    for level in (0.0, 0.25, 0.5, 0.75, 1.0):
        problem = base.with_transfer(interpolate_to_uniform(clustered, level))
        optimal = branch_and_bound(problem)
        centralized = SrivastavaOptimizer().optimize(problem)
        table.add_row(
            level,
            round(optimal.cost, 4),
            round(centralized.cost, 4),
            f"{centralized.cost / optimal.cost:.2f}x",
        )

    print(table.to_markdown())
    print()
    print(
        "With uniform communication the two plans are close; as the network becomes\n"
        "clustered the communication-oblivious plan repeatedly crosses the WAN boundary\n"
        "and its bottleneck grows, while the decentralized-aware optimum keeps the\n"
        "expensive hops off the critical path."
    )


if __name__ == "__main__":
    main()

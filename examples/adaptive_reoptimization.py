#!/usr/bin/env python3
"""Adaptive re-optimization: keep the ordering optimal while conditions drift.

Long-running queries outlive the conditions they were optimized for: a service
gets slower under load, a WAN link degrades, a filter's selectivity changes
with the data.  This example runs the monitor → re-estimate → re-optimize loop
the library provides on top of the paper's algorithm:

1. optimize the credit-card-screening scenario and start "executing" it
   (simulated),
2. observe the execution and re-estimate the parameters with the calibrator,
3. inject a drift (the fraud-scoring service becomes 4x slower and the
   cross-DC link degrades),
4. let the :class:`AdaptiveReoptimizer` decide whether the drift warrants a new
   plan, and show the response-time difference between sticking with the old
   plan and switching.

Run it with::

    python examples/adaptive_reoptimization.py
"""

from __future__ import annotations

from repro.core import CommunicationCostMatrix, OrderingProblem, Service
from repro.estimation import AdaptiveReoptimizer
from repro.simulation import SimulationConfig, simulate_plan
from repro.workloads import credit_card_screening


def drifted_version(problem: OrderingProblem) -> OrderingProblem:
    """The same deployment after a load spike: fraud_score 4x slower, WAN 2x slower."""
    services = []
    for service in problem.services:
        if service.name == "fraud_score":
            services.append(Service(service.name, service.cost * 4.0, service.selectivity, service.host))
        else:
            services.append(service)
    size = problem.size
    rows = [
        [
            0.0 if i == j else problem.transfer_cost(i, j) * (2.0 if problem.transfer_cost(i, j) > 5.0 else 1.0)
            for j in range(size)
        ]
        for i in range(size)
    ]
    return OrderingProblem(services, CommunicationCostMatrix(rows), name=f"{problem.name}-drifted")


def main() -> None:
    problem = credit_card_screening()
    controller = AdaptiveReoptimizer(problem, drift_threshold=0.05, improvement_threshold=0.02)
    print("Initial optimal plan:", " -> ".join(controller.current_plan_names))
    print(f"Expected response time per tuple: {problem.cost(controller.current_order):.3f}")
    print()

    observed = drifted_version(problem)
    print("Conditions drift: fraud_score is now 4x slower, the inter-DC links 2x slower.")
    stale_order = [observed.service_index(name) for name in controller.current_plan_names]
    decision = controller.update(observed)
    print(
        f"Measured drift: cost {decision.drift.max_cost_drift:.0%}, "
        f"transfer {decision.drift.max_transfer_drift:.0%} "
        f"-> re-optimized: {decision.reoptimized}, switched plans: {decision.switched}"
    )
    print(f"Old plan under the new conditions: {decision.current_plan_cost:.3f} per tuple")
    print(f"New optimal plan:                  {decision.best_plan_cost:.3f} per tuple")
    print(f"Improvement from adapting:         {decision.improvement:.1%}")
    print()

    print("Validating both choices in the execution simulator (3000 tuples):")
    config = SimulationConfig(tuple_count=3000)
    for label, order in (("stale plan", stale_order), ("adapted plan", controller.current_order)):
        report = simulate_plan(observed, order, config)
        print(
            f"  {label:<13} simulated response time {report.normalized_makespan:8.3f} per tuple "
            f"(bottleneck stage {report.observed_bottleneck_position})"
        )


if __name__ == "__main__":
    main()

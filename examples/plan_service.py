"""Serving plans from a long-running service: cache, portfolio and HTTP.

The one-shot pipeline (build a problem, optimize, print) does not amortize
anything: every structurally identical request pays the full optimization
again.  This example walks through the serving subsystem that fixes that:

1. a :class:`~repro.serving.service.PlanService` answers a mixed stream of
   requests, optimizing cold misses with a deadline-budgeted portfolio
   (greedy anytime seed, refined by beam search and branch-and-bound) and
   answering repeats from the fingerprint cache,
2. the fingerprint is permutation-invariant, so the *same* problem with its
   services listed in a different order still hits the cache — the cached
   plan is translated through canonical positions back into the caller's
   indices, and
3. the same service is then put behind the stdlib JSON/HTTP endpoint and
   queried over a real socket.

Run with ``PYTHONPATH=src python examples/plan_service.py``.
"""

from __future__ import annotations

import json
import urllib.request

from repro.core import CommunicationCostMatrix, OrderingProblem
from repro.serialization import problem_to_dict
from repro.serving import PlanService, PlanServiceConfig, serve
from repro.workloads import credit_card_screening, default_spec, generate_problem


def permuted_copy(problem: OrderingProblem) -> OrderingProblem:
    """The same problem with its services listed in reverse index order."""
    permutation = list(range(problem.size))[::-1]
    rows = [
        [problem.transfer_cost(permutation[i], permutation[j]) for j in range(problem.size)]
        for i in range(problem.size)
    ]
    sink = (
        [problem.sink_cost(index) for index in permutation]
        if problem.sink_transfer is not None
        else None
    )
    return OrderingProblem(
        [problem.service(index) for index in permutation],
        CommunicationCostMatrix(rows),
        sink_transfer=sink,
        name=f"{problem.name}-permuted",
    )


def main() -> None:
    """Demonstrate the plan service end to end."""
    config = PlanServiceConfig(budget_seconds=0.5, cache_ttl=300.0)
    with PlanService(config) as service:
        print("== mixed request stream ==")
        problems = [credit_card_screening()] + [
            generate_problem(default_spec(8), seed=seed) for seed in range(3)
        ]
        for round_number in range(2):
            for problem in problems:
                response = service.submit(problem)
                source = "cache " if response.cache_hit else "portfolio"
                print(
                    f"round {round_number} {problem.name or 'instance':>24}: "
                    f"cost={response.cost:8.4f} via {source} "
                    f"[{response.latency_seconds * 1e3:7.3f} ms]"
                )

        print("\n== permutation-invariant cache hits ==")
        original = problems[1]
        shuffled = permuted_copy(original)
        response = service.submit(shuffled)
        print(f"permuted resubmission: cache_hit={response.cache_hit}")
        print(f"plan (names): {' -> '.join(response.service_names)}")
        shuffled.validate_plan(response.order)

        stats = service.stats()
        print(f"\ncache hit rate: {stats['cache']['hit_rate']:.1%}")
        print(f"cold p50 latency: {stats['requests']['latency']['cold']['p50'] * 1e3:.2f} ms")
        print(f"hit  p50 latency: {stats['requests']['latency']['hit']['p50'] * 1e3:.2f} ms")

        print("\n== the same service over HTTP ==")
        server = serve(service, host="127.0.0.1", port=0)
        server.serve_in_background()
        host, port = server.server_address[:2]
        try:
            body = json.dumps(problem_to_dict(problems[0])).encode("utf-8")
            request = urllib.request.Request(
                f"http://{host}:{port}/plan",
                data=body,
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=30) as raw:
                payload = json.loads(raw.read().decode("utf-8"))
            print(
                f"POST /plan -> cost={payload['cost']:.4f}, "
                f"cache_hit={payload['cache_hit']}, algorithm={payload['algorithm']}"
            )
            with urllib.request.urlopen(f"http://{host}:{port}/stats", timeout=30) as raw:
                remote_stats = json.loads(raw.read().decode("utf-8"))
            print(f"GET /stats -> answered={remote_stats['requests']['answered']}")
        finally:
            server.shutdown()
            server.server_close()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The paper's motivating scenario: screening potential customers.

A person identifier flows through four Web Services:

* ``card_lookup``      — returns the person's credit-card numbers (σ > 1),
* ``payment_history``  — keeps customers with a good payment history,
* ``fraud_score``      — keeps low-risk customers,
* ``geo_filter``       — keeps customers in the serviced region.

All orderings produce the same answer, but — because the services live in two
different data centres with expensive cross-DC links — their response times
differ substantially.  The example optimizes the ordering, explains *why* the
chosen order wins, and then validates the decision by simulating the pipelined
decentralized execution of the best and the worst plan.

Run it with::

    python examples/credit_card_screening.py
"""

from __future__ import annotations

from itertools import permutations

from repro.core import branch_and_bound
from repro.simulation import SimulationConfig, simulate_plan
from repro.workloads import credit_card_screening


def main() -> None:
    problem = credit_card_screening()
    print(problem.describe())
    print()

    result = branch_and_bound(problem)
    print("Optimal ordering:")
    print(result.plan.describe())
    print()

    worst_order = max(permutations(range(problem.size)), key=problem.cost)
    worst_cost = problem.cost(worst_order)
    print(
        f"Worst ordering would cost {worst_cost:.2f} per tuple "
        f"({worst_cost / result.cost:.2f}x slower than the optimum)."
    )
    print()

    print("Validating both plans in the discrete-event simulator (5000 input tuples):")
    config = SimulationConfig(tuple_count=5000)
    for label, order in (("optimal", result.order), ("worst", worst_order)):
        report = simulate_plan(problem, order, config)
        print(
            f"  {label:<8} predicted={report.predicted_cost:7.3f} ms/tuple   "
            f"simulated={report.normalized_makespan:7.3f} ms/tuple   "
            f"(error {report.model_relative_error:.2%}, "
            f"bottleneck stage {report.observed_bottleneck_position})"
        )
    print()
    print(
        "The filters that discard most tuples early and avoid the expensive cross-DC hop\n"
        "are pulled to the front; the proliferative card lookup is pushed as late as the\n"
        "bottleneck allows."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""A full WS-management-system workflow: declarative query to executed choreography.

This example exercises every substrate of the library the way a deployment
would:

1. register the deployed services in a catalogue (host, cost/selectivity
   estimates, attribute schema),
2. model the network that connects their hosts (two data centres),
3. express the query declaratively (which services to apply, not in which
   order),
4. let the planner lower it to an ordering problem, optimize the order with
   the paper's branch-and-bound algorithm, and emit per-service routing
   instructions (the choreography), and
5. execute the choreography in the discrete-event simulator and compare the
   measured response time with the optimizer's prediction.

Run it with::

    python examples/declarative_query_pipeline.py
"""

from __future__ import annotations

from repro.network import clustered_topology
from repro.simulation import SimulationConfig, simulate_plan
from repro.workflow import QueryPlanner, ServiceCatalog, ServiceDescriptor, parse_query


def build_catalog(hosts: list[str]) -> ServiceCatalog:
    """Document-processing services spread across the available hosts."""
    return ServiceCatalog(
        [
            ServiceDescriptor(
                "decrypt",
                host=hosts[0],
                cost=2.5,
                selectivity=1.0,
                produces={"plaintext"},
                description="decrypts the document payload",
            ),
            ServiceDescriptor(
                "language_filter",
                host=hosts[1],
                cost=1.0,
                selectivity=0.5,
                description="keeps documents in supported languages",
            ),
            ServiceDescriptor(
                "pii_scrubber",
                host=hosts[2],
                cost=5.0,
                selectivity=0.9,
                consumes={"plaintext"},
                description="redacts personal data",
            ),
            ServiceDescriptor(
                "classifier",
                host=hosts[3],
                cost=8.0,
                selectivity=0.35,
                consumes={"plaintext"},
                description="keeps documents of the requested category",
            ),
            ServiceDescriptor(
                "summarizer",
                host=hosts[4],
                cost=12.0,
                selectivity=1.0,
                consumes={"plaintext"},
                description="produces an abstract for surviving documents",
            ),
        ]
    )


def main() -> None:
    topology = clustered_topology(cluster_count=2, hosts_per_cluster=3, seed=9)
    catalog = build_catalog(topology.host_names())
    planner = QueryPlanner(catalog, topology, tuple_size=8192.0, block_size=4)

    query = parse_query(
        """
        PROCESS documents
        USING decrypt, language_filter, pii_scrubber, classifier, summarizer
        WITH pii_scrubber BEFORE summarizer
        GIVEN doc_id
        """
    )
    planned = planner.plan(query)

    print(planned.query.describe())
    print()
    print(planned.result.plan.describe())
    print()
    print(planned.choreography.describe())
    print()

    report = simulate_plan(
        planned.problem,
        planned.result.order,
        SimulationConfig(tuple_count=3000, block_size=planned.choreography.block_size),
    )
    print("Simulated decentralized execution of the deployed choreography:")
    print(report.to_table().to_markdown())
    print()
    print(
        f"Predicted bottleneck cost: {planned.result.cost:.4f} per tuple; "
        f"simulated: {report.normalized_makespan:.4f} per tuple "
        f"(relative error {report.model_relative_error:.2%})."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: define a handful of services and find the optimal calling order.

This is the smallest end-to-end use of the library:

1. describe each Web Service (per-tuple cost ``c_i`` and selectivity ``σ_i``),
2. describe the per-tuple transfer cost between every pair of service hosts
   (decentralized execution: services ship tuples directly to each other),
3. run the branch-and-bound optimizer of the paper, and
4. inspect the resulting plan and its bottleneck cost.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import CommunicationCostMatrix, OrderingProblem, Service, compare, optimize


def build_problem() -> OrderingProblem:
    """Four filtering services spread over two sites."""
    services = [
        Service("validate", cost=1.0, selectivity=0.9, host="site-a"),
        Service("dedupe", cost=2.5, selectivity=0.6, host="site-a"),
        Service("enrich", cost=4.0, selectivity=1.0, host="site-b"),
        Service("score", cost=6.0, selectivity=0.3, host="site-b"),
    ]
    # Per-tuple transfer cost (same site: 0.2, across sites: 3.0).
    hosts = [service.host for service in services]
    transfer = CommunicationCostMatrix.from_function(
        len(services), lambda i, j: 0.2 if hosts[i] == hosts[j] else 3.0
    )
    return OrderingProblem(services, transfer, name="quickstart")


def main() -> None:
    problem = build_problem()
    print(problem.describe())
    print()

    result = optimize(problem, algorithm="branch_and_bound")
    print("Optimal plan (minimises the bottleneck cost metric of Eq. 1):")
    print(result.plan.describe())
    print()
    print(f"Search statistics: {result.statistics.as_dict()}")
    print()

    print("How the baselines compare on the same instance:")
    for name, other in compare(
        problem,
        algorithms=[
            "branch_and_bound",
            "srivastava_centralized",
            "greedy_cheapest_cost",
            "random",
        ],
    ).items():
        gap = other.cost / result.cost
        print(f"  {name:<26} cost={other.cost:8.4f}  ({gap:.2f}x the optimum)")


if __name__ == "__main__":
    main()

"""Throughput and rebalance numbers of the sharded serving tier.

The benchmark replays the *96-request mixed trace* (24 unique
pruning-resistant problems arriving 4x each, shuffled — the same workload
shape as ``bench_parallel``) through a :class:`~repro.sharding.ShardRouter`
over 1, 2 and 4 process shards, delivered as a stream of mixed batches the
way ``POST /plan/batch`` traffic arrives.

Every shard runs a full :class:`~repro.serving.service.PlanService` with a
deliberately *bounded* plan cache (16 entries — smaller than the trace's
24-key working set, the realistic regime where cached state outgrows any one
process).  The shard count therefore compounds two effects, and the JSON
separates them:

* **aggregate cache capacity** — one shard thrashes its LRU on the 24-key
  working set and keeps re-optimizing plans it just evicted, while 4 shards
  hold ~6 keys each and answer every repeat warm.  This pays off everywhere,
  including the single-core CI container (each run records its cache
  hits/misses so the effect is visible, not inferred);
* **multi-core scaling** — shards are OS processes, so cold optimizations
  proceed concurrently on real hardware (``cpu_count`` is recorded; on a
  1-CPU container this contributes ~nothing, exactly like
  ``bench_parallel``'s no-dedup control).

The second section measures the *rebalance* property with actual cached
keys, not theory: after the top run the shards' caches are scanned, one
shard is added, and the fraction of cached keys whose owner changed is
compared against the ~1/N consistent-hashing ideal (a 2048-key synthetic
placement is recorded alongside, as the large-sample view of the same ring).

Usage::

    PYTHONPATH=src python benchmarks/bench_sharding.py           # full run
    PYTHONPATH=src python benchmarks/bench_sharding.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/bench_sharding.py -o out.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import time
from pathlib import Path

from repro.core import OrderingProblem
from repro.serving import PlanServiceConfig
from repro.sharding import ShardRouter, ShardRouterConfig
from repro.sharding.ring import HashRing

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_sharding.json"

ALGORITHM = "branch_and_bound"
"""The cold-compile algorithm behind every shard (the service default)."""

ACCEPTANCE_SHARDS = 4
"""Acceptance: this many shards must beat one shard on the mixed trace."""


def hard_problem(size: int, seed: int) -> OrderingProblem:
    """A pruning-resistant instance (mirrors ``bench_parallel.hard_problem``)."""
    rng = random.Random(seed)
    costs = [rng.uniform(1.0, 1.3) for _ in range(size)]
    selectivities = [rng.uniform(0.9, 1.0) for _ in range(size)]
    rows = [
        [0.0 if i == j else rng.uniform(0.5, 4.0) for j in range(size)] for i in range(size)
    ]
    return OrderingProblem.from_parameters(
        costs, selectivities, rows, name=f"hard-n{size}-seed{seed}"
    )


def serving_trace(
    size: int, unique: int, duplication: int, seed: int = 0
) -> list[OrderingProblem]:
    """``unique * duplication`` requests; every occurrence is a fresh instance."""
    order = [index % unique for index in range(unique * duplication)]
    random.Random(seed).shuffle(order)
    return [hard_problem(size, seed=index) for index in order]


def shard_config(cache_capacity: int) -> PlanServiceConfig:
    """One shard's service: single exact member, bounded cache, no expiry."""
    return PlanServiceConfig(
        algorithms=(ALGORITHM,),
        budget_seconds=None,
        cache_capacity=cache_capacity,
        cache_ttl=None,
        drift_threshold=None,
    )


def time_trace(
    router: ShardRouter, trace: list[OrderingProblem], batch_size: int
) -> float:
    started = time.perf_counter()
    answered = 0
    for start in range(0, len(trace), batch_size):
        answered += len(router.optimize_batch(trace[start : start + batch_size]))
    elapsed = time.perf_counter() - started
    assert answered == len(trace)
    return elapsed


def run_throughput(quick: bool) -> tuple[dict, ShardRouter]:
    size = 9 if quick else 12
    unique = 8 if quick else 24
    duplication = 3 if quick else 4
    # Half the working set: the regime where cached state has outgrown any
    # single process and sharding's aggregate capacity is the fix.
    cache_capacity = 4 if quick else 12
    batch_size = 6 if quick else 8
    shard_counts = (1, 2) if quick else (1, 2, ACCEPTANCE_SHARDS)

    requests = unique * duplication
    print(
        f"mixed trace: {requests} requests ({unique} unique x{duplication}, n={size}), "
        f"batches of {batch_size}, per-shard cache capacity {cache_capacity}"
    )

    runs = []
    top_router: ShardRouter | None = None
    for shards in shard_counts:
        router = ShardRouter(
            ShardRouterConfig(
                shards=shards,
                backend="processes",
                service_config=shard_config(cache_capacity),
            )
        )
        try:
            trace = serving_trace(size, unique, duplication)
            elapsed = time_trace(router, trace, batch_size)
            stats = router.stats()
            run = {
                "shards": shards,
                "seconds": elapsed,
                "requests_per_second": requests / elapsed,
                "cache_hits": stats["cache"]["hits"],
                "cache_misses": stats["cache"]["misses"],
                "cache_evictions": stats["cache"]["evictions"],
                "coalesced": stats["requests"]["coalesced"],
            }
            runs.append(run)
            print(
                f"shards={shards}: {elapsed:.3f} s -> {run['requests_per_second']:.1f} req/s "
                f"(hits={run['cache_hits']}, misses={run['cache_misses']}, "
                f"evictions={run['cache_evictions']})"
            )
        finally:
            if shards == shard_counts[-1]:
                top_router = router  # kept warm for the rebalance measurement
            else:
                router.close()

    baseline = runs[0]["seconds"]
    for run in runs:
        run["speedup_vs_1shard"] = baseline / run["seconds"]
    assert top_router is not None
    return (
        {
            "workload": {
                "algorithm": ALGORITHM,
                "size": size,
                "unique_problems": unique,
                "duplication_factor": duplication,
                "requests": requests,
                "batch_size": batch_size,
                "per_shard_cache_capacity": cache_capacity,
            },
            "runs": runs,
        },
        top_router,
    )


def run_rebalance(router: ShardRouter) -> dict:
    """Add one shard to the *warm* router; measure how many cached keys move."""
    shards_before = len(router.shard_ids)
    # The union, deduplicated: with a shared store every shard reports the
    # same directory, and a key's placement is what the rebalance measures.
    cached_keys = sorted(
        {key for shard_keys in router.cache_keys().values() for key in shard_keys}
    )
    before = {key: router.shard_for(key) for key in cached_keys}
    newcomer = router.add_shard()
    after = {key: router.shard_for(key) for key in cached_keys}
    moved = [key for key in cached_keys if before[key] != after[key]]
    moved_fraction = len(moved) / len(cached_keys) if cached_keys else 0.0
    all_to_newcomer = all(after[key] == newcomer for key in moved)

    # The same ring, measured on a large synthetic key population: the
    # cached-key number above is the deployment-sized sample of this.
    synthetic = [f"synthetic-{index:05d}" for index in range(2048)]
    ring_before = HashRing([f"shard-{i}" for i in range(shards_before)])
    placement_before = ring_before.placement(synthetic)
    ring_before.add_node(f"shard-{shards_before}")
    placement_after = ring_before.placement(synthetic)
    synthetic_moved = sum(
        1 for key in synthetic if placement_before[key] != placement_after[key]
    )

    ideal = 1.0 / (shards_before + 1)
    print(
        f"rebalance {shards_before}->{shards_before + 1} shards: "
        f"{len(moved)}/{len(cached_keys)} cached keys moved "
        f"({moved_fraction:.3f}; ideal {ideal:.3f}), all onto the new shard: "
        f"{all_to_newcomer}; synthetic 2048-key movement: "
        f"{synthetic_moved / len(synthetic):.3f}"
    )
    return {
        "shards_before": shards_before,
        "cached_keys": len(cached_keys),
        "moved_keys": len(moved),
        "moved_fraction": moved_fraction,
        "all_moves_to_new_shard": all_to_newcomer,
        "ideal_fraction": ideal,
        "synthetic_keys": len(synthetic),
        "synthetic_moved_fraction": synthetic_moved / len(synthetic),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small trace / small sizes; used as the CI smoke invocation",
    )
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"output JSON path (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    throughput, top_router = run_throughput(args.quick)
    try:
        rebalance = run_rebalance(top_router)
    finally:
        top_router.close()

    top_run = throughput["runs"][-1]
    # "~1/N": the cached-key population is deployment-sized (tens of keys),
    # so the acceptance bound is the 1/N envelope of the K/(N+1) ideal rather
    # than the ideal itself; the 2048-key measurement pins the tight value.
    movement_threshold = 1.0 / rebalance["shards_before"]
    acceptance = {
        "top_shards": top_run["shards"],
        "top_speedup_vs_1shard": top_run["speedup_vs_1shard"],
        "sharded_beats_single": top_run["speedup_vs_1shard"] > 1.0,
        "rebalance_moved_fraction": rebalance["moved_fraction"],
        "rebalance_threshold": movement_threshold,
        "rebalance_within_threshold": rebalance["moved_fraction"] <= movement_threshold,
        "rebalance_only_onto_new_shard": rebalance["all_moves_to_new_shard"],
    }

    payload = {
        "benchmark": "bench_sharding",
        "mode": "quick" if args.quick else "full",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "throughput": throughput,
        "rebalance": rebalance,
        "acceptance": acceptance,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    print(
        f"acceptance: {top_run['shards']} shards {top_run['speedup_vs_1shard']:.2f}x "
        f"vs 1 shard (beats={acceptance['sharded_beats_single']}), rebalance moved "
        f"{rebalance['moved_fraction']:.3f} <= {movement_threshold:.3f} "
        f"({acceptance['rebalance_within_threshold']})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Native async shard path vs the executor bridge on a warm process-shard router.

The tentpole scenario of the end-to-end async shard path: one warm
:class:`~repro.sharding.router.ShardRouter` over N process shards, served by
the same :class:`~repro.serving.aserver.AsyncPlanServer` twice —

* **bridged**: the pre-existing path; every POST crosses a bounded
  ``run_in_executor`` pool, so each in-flight request occupies one bridge
  thread blocking on the shard waiter;
* **native**: the request is awaited end to end; the shard answer resolves an
  ``asyncio`` future via ``loop.call_soon_threadsafe`` from the (single)
  response-multiplexer thread, and **no** per-request handler thread exists.

Both modes serve the same concurrent keep-alive clients over the same warm
(cache-hit) problem set.  The clients are *paced* (a fixed per-client think
time between requests) so the server runs at high-but-not-saturated
utilisation: that is the regime where p50 measures per-request latency rather
than pure queueing.  Each bridged request needs two extra thread wakeups (the
bridge worker picking the request up, then being woken by the multiplexer's
``Event.set``), and under a contended interpreter every wakeup waits behind
whichever thread holds the GIL — milliseconds, not microseconds.  The native
path completes on the event loop with no handler thread to wake.  (At full
saturation both modes converge on the same interpreter-bound throughput cap
and p50 degenerates to ``concurrency / throughput``; the paced regime is the
production-shaped one.)  The payload also audits live thread counts during
the native run (0 ``aserver-bridge`` workers, 1 ``shard-mux`` selector) and
checks that native responses are byte-identical to the blocking router's for
the same problems (modulo the per-call latency measurement).

Usage::

    PYTHONPATH=src python benchmarks/bench_async_shards.py           # full run
    PYTHONPATH=src python benchmarks/bench_async_shards.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import platform
import random
import statistics
import threading
import time
from pathlib import Path

from repro.core.problem import OrderingProblem
from repro.serialization import problem_to_dict
from repro.serving import PlanServiceConfig
from repro.serving.aserver import serve_async
from repro.serving.http import response_to_dict
from repro.sharding import ShardRouter, ShardRouterConfig
from repro.utils import runtime_provenance

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_async_shards.json"

NATIVE_SPEEDUP_TARGET = 1.3
"""Acceptance: bridged p50 / native p50 on the full (32-client) run."""


def service_config() -> PlanServiceConfig:
    """Cheap, deterministic shards: the benchmark measures the request path."""
    return PlanServiceConfig(
        algorithms=("greedy_min_term",),
        budget_seconds=None,
        cache_ttl=None,
        drift_threshold=None,
    )


def build_problems(count: int, size: int = 8) -> list[OrderingProblem]:
    """Distinct random problems so traffic spreads over every shard."""
    problems = []
    for seed in range(count):
        rng = random.Random(20260807 + seed)
        costs = [rng.uniform(0.5, 5.0) for _ in range(size)]
        selectivities = [rng.uniform(0.1, 1.0) for _ in range(size)]
        rows = [
            [0.0 if i == j else rng.uniform(0.1, 4.0) for j in range(size)]
            for i in range(size)
        ]
        problems.append(OrderingProblem.from_parameters(costs, selectivities, rows))
    return problems


def thread_names(prefix: str) -> list[str]:
    return [t.name for t in threading.enumerate() if t.name.startswith(prefix)]


def client_loop(
    address: tuple[str, int],
    bodies: list[bytes],
    deadline: float,
    latencies: list[float],
    lock: threading.Lock,
    offset: int,
    think_seconds: float,
) -> None:
    """One paced keep-alive client cycling through the warm problem set."""
    connection = http.client.HTTPConnection(*address, timeout=30)
    index = offset
    local: list[float] = []
    try:
        while time.monotonic() < deadline:
            body = bodies[index % len(bodies)]
            index += 1
            started = time.monotonic()
            connection.request(
                "POST", "/plan", body=body, headers={"Content-Type": "application/json"}
            )
            response = connection.getresponse()
            payload = response.read()
            assert response.status == 200, (response.status, payload[:200])
            local.append(time.monotonic() - started)
            if think_seconds:
                time.sleep(think_seconds)
    finally:
        connection.close()
        with lock:
            latencies.extend(local)


def _client_worker_main(
    address, bodies, duration, threads_per_worker, offset, think_seconds, start, queue
):
    """Client-process entry point: drive ``threads_per_worker`` paced clients.

    Clients live in their own processes so their HTTP work never contends for
    the server process's GIL — the measured difference is the server-side
    request path, which is the thing under test.  The worker signals readiness
    and then blocks on ``start`` so the measured window begins only after
    every client process has finished interpreter startup — on a small
    machine the simultaneous spawn storm would otherwise pollute the samples.
    """
    latencies: list[float] = []
    lock = threading.Lock()
    queue.put("ready")
    start.wait()
    deadline = time.monotonic() + duration
    workers = [
        threading.Thread(
            target=client_loop,
            args=(
                address,
                bodies,
                deadline,
                latencies,
                lock,
                offset + index,
                think_seconds,
            ),
        )
        for index in range(threads_per_worker)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    queue.put(latencies)


def run_trial(
    kind: str,
    router: ShardRouter,
    bodies: list[bytes],
    *,
    clients: int,
    duration: float,
    think_seconds: float = 0.0,
) -> dict:
    """One measured window against one server mode: raw latencies + audit."""
    import multiprocessing

    native = kind == "native"
    threads_per_worker = min(4, clients)
    workers = clients // threads_per_worker
    if workers * threads_per_worker != clients:
        raise ValueError(
            f"clients={clients} must divide into {threads_per_worker}-thread workers"
        )
    with serve_async(router, port=0, native_async=native) as handle:
        address = handle.address
        peak_bridge = 0
        sampling = threading.Event()

        def sample_threads() -> None:
            nonlocal peak_bridge
            while not sampling.is_set():
                peak_bridge = max(peak_bridge, len(thread_names("aserver-bridge")))
                time.sleep(0.01)

        # spawn, not fork: the parent runs an event loop, a selector thread
        # and shard queues — forking that mid-flight is asking for inherited
        # locks; the client worker needs none of it.
        context = multiprocessing.get_context("spawn")
        queue = context.Queue()
        start = context.Event()
        processes = [
            context.Process(
                target=_client_worker_main,
                args=(
                    address,
                    bodies,
                    duration,
                    threads_per_worker,
                    index * threads_per_worker,
                    think_seconds,
                    start,
                    queue,
                ),
            )
            for index in range(workers)
        ]
        sampler = threading.Thread(target=sample_threads)
        sampler.start()
        for process in processes:
            process.start()
        for _ in processes:  # all interpreters are up before the clock starts
            assert queue.get(timeout=60) == "ready"
        start.set()
        latencies: list[float] = []
        for _ in processes:
            latencies.extend(queue.get(timeout=duration + 60))
        for process in processes:
            process.join(timeout=30)
        sampling.set()
        sampler.join()
        mux_threads = len([t for t in threading.enumerate() if t.name == "shard-mux"])

    return {
        "latencies": latencies,
        "peak_bridge_threads": peak_bridge,
        "multiplexer_threads": mux_threads,
    }


def measure_modes(
    router: ShardRouter,
    bodies: list[bytes],
    *,
    clients: int,
    duration: float,
    think_seconds: float = 0.0,
    trials: int = 1,
) -> dict[str, dict]:
    """Alternate native/bridged trials and pool each mode's latencies.

    Interleaving the modes cancels slow machine-state drift (thermal, other
    tenants) that a single long back-to-back pair would fold into the ratio.
    Native runs first in each pair so its thread audit never sees stragglers
    of a bridged trial's executor pool.
    """
    pooled: dict[str, dict] = {
        kind: {"latencies": [], "peak_bridge_threads": 0, "multiplexer_threads": []}
        for kind in ("native", "bridged")
    }
    for trial in range(trials):
        for kind in ("native", "bridged"):
            outcome = run_trial(
                kind,
                router,
                bodies,
                clients=clients,
                duration=duration,
                think_seconds=think_seconds,
            )
            mode = pooled[kind]
            mode["latencies"].extend(outcome["latencies"])
            mode["peak_bridge_threads"] = max(
                mode["peak_bridge_threads"], outcome["peak_bridge_threads"]
            )
            mode["multiplexer_threads"].append(outcome["multiplexer_threads"])

    runs: dict[str, dict] = {}
    for kind, mode in pooled.items():
        latencies = sorted(mode["latencies"])
        run = {
            "mode": kind,
            "trials": trials,
            "requests": len(latencies),
            "throughput_rps": len(latencies) / (duration * trials),
            "p50_ms": statistics.median(latencies) * 1e3,
            "p90_ms": latencies[int(0.9 * (len(latencies) - 1))] * 1e3,
            "p99_ms": latencies[int(0.99 * (len(latencies) - 1))] * 1e3,
            "peak_bridge_threads": mode["peak_bridge_threads"],
            "multiplexer_threads": max(mode["multiplexer_threads"]),
        }
        print(
            f"{kind}: {run['requests']} requests over {trials} trial(s), "
            f"p50 {run['p50_ms']:.2f} ms, p90 {run['p90_ms']:.2f} ms, "
            f"{run['throughput_rps']:.0f} req/s, "
            f"peak bridge threads {run['peak_bridge_threads']}"
        )
        runs[kind] = run
    return runs


def parity_check(router: ShardRouter, problems: list[OrderingProblem]) -> dict:
    """Native server answers vs the blocking router, byte for byte.

    Both sides answer from the warm shard cache, so every field except the
    per-call latency measurement must match exactly.
    """
    volatile = ("latency_seconds", "trace_id")
    mismatches = 0
    with serve_async(router, port=0) as handle:
        assert handle.server.native_async
        connection = http.client.HTTPConnection(*handle.address, timeout=30)
        try:
            for problem in problems:
                body = json.dumps(problem_to_dict(problem)).encode("utf-8")
                connection.request(
                    "POST", "/plan", body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                native_document = json.loads(response.read())
                assert response.status == 200
                sync_document = response_to_dict(router.submit(problem))
                native_comparable = {
                    key: value for key, value in native_document.items()
                    if key not in volatile
                }
                sync_comparable = {
                    key: value for key, value in sync_document.items()
                    if key not in volatile
                }
                if native_comparable != sync_comparable:
                    mismatches += 1
        finally:
            connection.close()
    result = {"problems_compared": len(problems), "mismatches": mismatches}
    print(f"parity: {len(problems)} problems, {mismatches} mismatches")
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small cohort / short run; used as the CI smoke invocation",
    )
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"output JSON path (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    shards = 2 if args.quick else 4
    clients = 8 if args.quick else 32
    duration = 1.0 if args.quick else 2.0
    trials = 1 if args.quick else 3
    # Pace each client so aggregate load sits at high-but-not-saturated
    # utilisation; see the module docstring for why the latency regime (and
    # not the saturation regime) is the one under test.
    think_seconds = 0.016 if args.quick else 0.048
    problems = build_problems(8 if args.quick else 16)
    print(
        f"async shard path: {shards} process shards, {clients} concurrent clients "
        f"({think_seconds * 1e3:.0f} ms think time), {trials} x {duration:.0f} s "
        f"interleaved trials per mode, warm cache"
    )

    config = ShardRouterConfig(
        shards=shards, backend="processes", service_config=service_config()
    )
    with ShardRouter(config) as router:
        for problem in problems:  # warm: every request below is a cache hit
            router.submit(problem)
        bodies = [
            json.dumps(problem_to_dict(problem)).encode("utf-8") for problem in problems
        ]
        runs = measure_modes(
            router,
            bodies,
            clients=clients,
            duration=duration,
            think_seconds=think_seconds,
            trials=trials,
        )
        native, bridged = runs["native"], runs["bridged"]
        parity = parity_check(router, problems)

    speedup = bridged["p50_ms"] / native["p50_ms"]
    acceptance = {
        "concurrent_clients": clients,
        "native_p50_speedup": speedup,
        "native_speedup_target": NATIVE_SPEEDUP_TARGET,
        "native_meets_target": speedup >= NATIVE_SPEEDUP_TARGET,
        "native_zero_handler_threads": native["peak_bridge_threads"] == 0,
        "one_multiplexer_thread": native["multiplexer_threads"] == 1,
        "responses_byte_identical": parity["mismatches"] == 0,
    }

    payload = {
        "benchmark": "bench_async_shards",
        "mode": "quick" if args.quick else "full",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "provenance": runtime_provenance(),
        "workload": {
            "process_shards": shards,
            "concurrent_clients": clients,
            "think_seconds_per_client": think_seconds,
            "seconds_per_trial": duration,
            "interleaved_trials": trials,
            "distinct_problems": len(problems),
        },
        "runs": [native, bridged],
        "parity": parity,
        "acceptance": acceptance,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    print(
        f"acceptance: native p50 speedup {speedup:.2f}x >= {NATIVE_SPEEDUP_TARGET}x "
        f"({acceptance['native_meets_target']}), zero handler threads: "
        f"{acceptance['native_zero_handler_threads']}, byte-identical: "
        f"{acceptance['responses_byte_identical']}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

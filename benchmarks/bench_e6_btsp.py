"""E6 — The bottleneck-TSP special case (hardness-reduction cross-check)."""

from __future__ import annotations

from repro.experiments import run_e6_btsp


def test_e6_btsp(benchmark, record_experiment):
    result = benchmark.pedantic(
        lambda: run_e6_btsp(sizes=(5, 6, 7, 8), instances_per_size=4),
        rounds=1,
        iterations=1,
    )
    record_experiment(result)
    for row in result.row_dicts():
        assert row["optima agree"] == row["instances"]

"""Micro-benchmarks of the core primitives.

Unlike the experiment benchmarks (one-shot table regeneration), these are
repeated-measurement benchmarks of the operations a deployment performs in its
hot path: evaluating the bottleneck cost of a plan, extending a partial plan,
computing the residual bound, optimizing a mid-size instance, and simulating a
short stream.
"""

from __future__ import annotations

from repro.core import PartialPlan, branch_and_bound, dynamic_programming
from repro.core.bounds import max_residual_cost
from repro.simulation import SimulationConfig, simulate_plan
from repro.workloads import default_spec, generate_problem

_PROBLEM_8 = generate_problem(default_spec(8), seed=5)
_PROBLEM_12 = generate_problem(default_spec(12), seed=5)
_ORDER_8 = tuple(range(8))
_PREFIX_12 = PartialPlan.from_order(_PROBLEM_12, tuple(range(6)))


def test_plan_cost_evaluation(benchmark):
    cost = benchmark(lambda: _PROBLEM_8.cost(_ORDER_8))
    assert cost > 0


def test_partial_plan_extension(benchmark):
    partial = PartialPlan.from_order(_PROBLEM_12, tuple(range(6)))
    result = benchmark(lambda: partial.extend(7))
    assert result.size == 7


def test_residual_bound_computation(benchmark):
    bound = benchmark(lambda: max_residual_cost(_PREFIX_12))
    assert bound.value >= 0


def test_branch_and_bound_12_services(benchmark):
    result = benchmark(lambda: branch_and_bound(_PROBLEM_12))
    assert result.optimal


def test_dynamic_programming_12_services(benchmark):
    result = benchmark(lambda: dynamic_programming(_PROBLEM_12))
    assert result.optimal


def test_simulation_throughput(benchmark):
    report = benchmark.pedantic(
        lambda: simulate_plan(_PROBLEM_8, _ORDER_8, SimulationConfig(tuple_count=500)),
        rounds=3,
        iterations=1,
    )
    assert report.tuple_count == 500

"""E4 — Plan quality of baselines vs the optimum under growing heterogeneity."""

from __future__ import annotations

from repro.experiments import run_e4_plan_quality


def test_e4_plan_quality(benchmark, record_experiment):
    result = benchmark.pedantic(
        lambda: run_e4_plan_quality(
            service_count=8, levels=(0.0, 0.25, 0.5, 0.75, 1.0), instances_per_level=4
        ),
        rounds=1,
        iterations=1,
    )
    record_experiment(result)
    rows = result.row_dicts()
    # Ratios never drop below 1 (the branch-and-bound plan is optimal) and the
    # communication-oblivious centralized ordering degrades with heterogeneity.
    for row in rows:
        for key, value in row.items():
            if key.endswith("ratio"):
                assert value >= 1.0 - 1e-9
    assert rows[-1]["srivastava_centralized ratio"] >= rows[0]["srivastava_centralized ratio"] - 1e-6

"""Warm-cache overhead of tracing: the observability subsystem's price tag.

The observability acceptance bar is that turning tracing *on* must not tax
the latency-critical path noticeably: the warm-cache p50 of
:meth:`~repro.serving.service.PlanService.submit` with an active trace
scope (exactly what the HTTP front ends do per request — enter
:func:`~repro.obs.activate_trace`, serve, hand the finished activation to
:meth:`~repro.obs.Observability.record_trace`) must stay within 5% of the
same service answering untraced.

A warm-cache submit is a fingerprint + cache lookup — a few hundred
microseconds — so the measurement is deliberately noise-hardened:

* the traced and untraced services run *interleaved rounds* with the order
  alternating every round (A/B, B/A, A/B, …), so CPU-frequency drift and
  container neighbours bias both paths equally;
* the reported overhead is the **median of the per-round ratios** — each
  ratio compares two back-to-back measurements, which cancels slow drift
  that a single pooled comparison would absorb as fake overhead.

A second section microbenchmarks the primitives themselves: the disabled
path of :func:`~repro.obs.trace_span` (one contextvar read, paid by every
un-traced request) and the per-span cost under an active trace.

Usage::

    PYTHONPATH=src python benchmarks/bench_observability.py           # full run
    PYTHONPATH=src python benchmarks/bench_observability.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/bench_observability.py -o out.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import statistics
import time
from pathlib import Path

from repro.core import OrderingProblem
from repro.obs import activate_trace, trace_span
from repro.serving import PlanService, PlanServiceConfig

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_observability.json"

OVERHEAD_THRESHOLD = 0.05
"""Acceptance: traced warm-cache p50 within 5% of the untraced p50."""

PROBLEM_SIZE = 12
"""The serving-workload size the parallel benchmark uses; a warm submit is
fingerprint + cache lookup, so the instance size sets the base latency the
fixed per-request tracing cost is judged against."""

UNIQUE_PROBLEMS = 16


def warm_problem(size: int, seed: int) -> OrderingProblem:
    """A small random instance (mirrors the test suite's ``random_problem``)."""
    rng = random.Random(seed)
    costs = [rng.uniform(0.0, 5.0) for _ in range(size)]
    selectivities = [rng.uniform(0.1, 1.0) for _ in range(size)]
    rows = [
        [0.0 if i == j else rng.uniform(0.0, 4.0) for j in range(size)] for i in range(size)
    ]
    return OrderingProblem.from_parameters(
        costs, selectivities, rows, name=f"warm-n{size}-seed{seed}"
    )


def build_service(observability: bool) -> PlanService:
    config = PlanServiceConfig(
        budget_seconds=None,
        algorithms=("greedy_min_term", "branch_and_bound"),
        observability=observability,
    )
    return PlanService(config)


def warm(service: PlanService, problems: list) -> None:
    for problem in problems:
        service.submit(problem)


def measure_p50(service: PlanService, problems: list, iterations: int, traced: bool) -> float:
    """p50 of one warm submit (seconds), cycling the warmed problem set."""
    count = len(problems)
    samples = []
    if traced:
        for index in range(iterations):
            problem = problems[index % count]
            started = time.perf_counter()
            with activate_trace() as active:
                service.submit(problem)
            service.obs.record_trace(active)
            samples.append(time.perf_counter() - started)
    else:
        for index in range(iterations):
            problem = problems[index % count]
            started = time.perf_counter()
            service.submit(problem)
            samples.append(time.perf_counter() - started)
    return statistics.median(samples)


def run_overhead(quick: bool) -> dict:
    rounds = 3 if quick else 9
    iterations = 300 if quick else 1500

    problems = [warm_problem(PROBLEM_SIZE, seed) for seed in range(UNIQUE_PROBLEMS)]
    base_service = build_service(observability=False)
    traced_service = build_service(observability=True)
    warm(base_service, problems)
    warm(traced_service, problems)
    try:
        base_rounds: list[float] = []
        traced_rounds: list[float] = []
        for round_index in range(rounds):
            # Alternate the order so neither path always runs on the warmer
            # (or colder) half of the round.
            if round_index % 2 == 0:
                base = measure_p50(base_service, problems, iterations, traced=False)
                traced = measure_p50(traced_service, problems, iterations, traced=True)
            else:
                traced = measure_p50(traced_service, problems, iterations, traced=True)
                base = measure_p50(base_service, problems, iterations, traced=False)
            base_rounds.append(base)
            traced_rounds.append(traced)
    finally:
        base_service.close()
        traced_service.close()

    ratios = [traced / base for base, traced in zip(base_rounds, traced_rounds)]
    overhead = statistics.median(ratios) - 1.0
    base_p50 = min(base_rounds)
    traced_p50 = min(traced_rounds)
    print(
        f"warm-cache p50 over {rounds} interleaved rounds x {iterations} submits: "
        f"untraced {base_p50 * 1e6:.1f} us, traced {traced_p50 * 1e6:.1f} us, "
        f"median per-round overhead {overhead * 100:.2f}%"
    )
    return {
        "workload": {
            "problem_size": PROBLEM_SIZE,
            "unique_problems": UNIQUE_PROBLEMS,
            "rounds": rounds,
            "iterations_per_round": iterations,
        },
        "untraced_p50_seconds": base_p50,
        "traced_p50_seconds": traced_p50,
        "untraced_round_p50s": base_rounds,
        "traced_round_p50s": traced_rounds,
        "round_overheads": [ratio - 1.0 for ratio in ratios],
        "overhead": overhead,
    }


def run_primitives(quick: bool) -> dict:
    iterations = 20_000 if quick else 200_000

    started = time.perf_counter()
    for _ in range(iterations):
        with trace_span("bench.noop"):
            pass
    disabled_ns = (time.perf_counter() - started) / iterations * 1e9

    started = time.perf_counter()
    with activate_trace():
        for _ in range(iterations):
            with trace_span("bench.span"):
                pass
    enabled_ns = (time.perf_counter() - started) / iterations * 1e9

    print(
        f"trace_span: disabled path {disabled_ns:.0f} ns/span, "
        f"active trace {enabled_ns:.0f} ns/span ({iterations} iterations)"
    )
    return {
        "iterations": iterations,
        "disabled_ns_per_span": disabled_ns,
        "active_ns_per_span": enabled_ns,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="fewer rounds / iterations; used as the CI smoke invocation",
    )
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"output JSON path (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    overhead = run_overhead(args.quick)
    primitives = run_primitives(args.quick)

    acceptance = {
        "overhead_threshold": OVERHEAD_THRESHOLD,
        "overhead": overhead["overhead"],
        "passed": overhead["overhead"] <= OVERHEAD_THRESHOLD,
    }

    payload = {
        "benchmark": "bench_observability",
        "mode": "quick" if args.quick else "full",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "warm_cache_overhead": overhead,
        "primitives": primitives,
        "acceptance": acceptance,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    print(
        f"acceptance: traced warm-cache p50 overhead {acceptance['overhead'] * 100:.2f}% "
        f"(threshold {OVERHEAD_THRESHOLD * 100:.0f}%, passed={acceptance['passed']})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""E7 — Validating the bottleneck cost model against simulated execution."""

from __future__ import annotations

from repro.experiments import run_e7_simulation


def test_e7_simulation(benchmark, record_experiment):
    result = benchmark.pedantic(
        lambda: run_e7_simulation(instances=3, service_count=6, tuple_count=1500),
        rounds=1,
        iterations=1,
    )
    record_experiment(result)
    for row in result.row_dicts():
        assert row["relative error"] < 0.10

"""Benchmarks of the plan-serving subsystem (acceptance demo).

Three claims are measured and asserted:

1. **Cache-hit latency** — answering a 12-service problem from the fingerprint
   cache is at least an order of magnitude faster than a cold
   branch-and-bound optimization of the same instance.
2. **Throughput under mixed traffic** — one :class:`PlanService` handles 1000+
   requests submitted concurrently from 4 worker threads over a mixed pool of
   problems, with no lost or duplicated responses, and reports its hit rate.
3. **Portfolio quality floor** — the deadline-budgeted portfolio never returns
   a plan worse than the greedy anytime seed, whatever the budget.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_serving.py -v -s``.
"""

from __future__ import annotations

import concurrent.futures
import random
import time

from repro.core import OrderingProblem, optimize
from repro.serving import PlanService, PlanServiceConfig, PortfolioOptions, run_portfolio
from repro.utils.timing import Stopwatch
from repro.workloads import default_spec, generate_problem


def _hard_problem(size: int, seed: int) -> OrderingProblem:
    """A pruning-resistant instance: near-unit selectivities keep every prefix
    product close to 1, so the branch-and-bound bounds close few subtrees and
    the search has to explore (the default workload generator's selective
    services make B&B finish in a couple of milliseconds, which is not a
    meaningful 'cold' baseline)."""
    rng = random.Random(seed)
    costs = [rng.uniform(1.0, 1.3) for _ in range(size)]
    selectivities = [rng.uniform(0.9, 1.0) for _ in range(size)]
    rows = [
        [0.0 if i == j else rng.uniform(0.5, 4.0) for j in range(size)] for i in range(size)
    ]
    return OrderingProblem.from_parameters(
        costs, selectivities, rows, name=f"hard-n{size}-seed{seed}"
    )


_PROBLEM_12 = _hard_problem(12, seed=0)
_MIXED_PROBLEMS = [
    generate_problem(default_spec(size), seed=seed)
    for size in (6, 8, 10)
    for seed in range(4)
]


def test_cached_answer_vs_cold_branch_and_bound(benchmark):
    """A warm cache answers a 12-service problem ≥ 10× faster than cold B&B."""
    with PlanService(PlanServiceConfig(budget_seconds=None)) as service:
        service.warm([_PROBLEM_12])

        # Best of three keeps a one-off scheduler hiccup from inflating "cold".
        cold_times = []
        for _ in range(3):
            cold = Stopwatch()
            with cold:
                cold_result = optimize(_PROBLEM_12, algorithm="branch_and_bound")
            cold_times.append(cold.elapsed)
        cold_elapsed = min(cold_times)

        response = benchmark(lambda: service.submit(_PROBLEM_12))
        assert response.cache_hit
        assert response.cost <= cold_result.cost + 1e-9

        warm = Stopwatch()
        with warm:
            for _ in range(50):
                service.submit(_PROBLEM_12)
        cached_latency = warm.elapsed / 50
        speedup = cold_elapsed / cached_latency
        print(
            f"\ncold branch-and-bound: {cold_elapsed * 1e3:.2f} ms, "
            f"cached: {cached_latency * 1e3:.4f} ms, speedup: {speedup:.0f}x"
        )
        assert speedup >= 10.0


def test_throughput_1000_mixed_requests_4_threads():
    """1000 mixed requests from 4 threads: no lost/duplicate answers, hits reported."""
    requests = 1000
    threads = 4
    with PlanService(
        PlanServiceConfig(budget_seconds=0.5, max_in_flight=threads, queue_depth=requests)
    ) as service:
        started = time.perf_counter()

        def worker(request_id: int):
            problem = _MIXED_PROBLEMS[request_id % len(_MIXED_PROBLEMS)]
            return request_id, service.submit(problem)

        with concurrent.futures.ThreadPoolExecutor(max_workers=threads) as pool:
            outcomes = list(pool.map(worker, range(requests)))
        elapsed = time.perf_counter() - started

        assert len(outcomes) == requests
        ids = [request_id for request_id, _ in outcomes]
        assert sorted(ids) == list(range(requests)), "lost or duplicated responses"
        for request_id, response in outcomes:
            problem = _MIXED_PROBLEMS[request_id % len(_MIXED_PROBLEMS)]
            problem.validate_plan(response.order)

        stats = service.stats()
        hit_rate = stats["cache"]["hit_rate"]
        print(
            f"\n{requests} requests / {threads} threads in {elapsed:.2f} s "
            f"({requests / elapsed:.0f} req/s), cache hit rate {hit_rate:.1%}, "
            f"p95 hit latency {stats['requests']['latency']['hit']['p95'] * 1e3:.3f} ms"
        )
        assert hit_rate > 0.9  # only the first visit of each distinct problem misses


def test_portfolio_never_worse_than_greedy():
    """The portfolio's answer is never worse than greedy's bottleneck cost."""
    for seed in range(5):
        problem = generate_problem(default_spec(10), seed=seed)
        greedy = optimize(problem, algorithm="greedy_min_term")
        for budget in (0.0, 0.01, 1.0):
            race = run_portfolio(
                problem,
                PortfolioOptions(budget_seconds=budget),
            )
            assert race.best.cost <= greedy.cost + 1e-9
    print("\nportfolio ≤ greedy on 5 instances × 3 budgets")

"""E3 — Optimization wall-clock time as the number of services grows.

Also benchmarks a single branch-and-bound run on a 10-service instance, which
is the number pytest-benchmark reports statistics for.
"""

from __future__ import annotations

from repro.core import branch_and_bound
from repro.experiments import run_e3_scaling
from repro.workloads import default_spec, generate_problem


def test_e3_scaling_sweep(benchmark, record_experiment):
    result = benchmark.pedantic(
        lambda: run_e3_scaling(sizes=(5, 6, 7, 8, 9), instances_per_size=3),
        rounds=1,
        iterations=1,
    )
    record_experiment(result)
    last_row = result.row_dicts()[-2]  # n=8, the largest size exhaustive still runs at
    assert last_row["bb ms"] < last_row["exhaustive ms"]


def test_e3_single_optimization_latency(benchmark):
    problem = generate_problem(default_spec(10), seed=33)
    result = benchmark(lambda: branch_and_bound(problem))
    assert result.optimal

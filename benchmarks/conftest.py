"""Shared infrastructure for the benchmark harness.

Each ``bench_e*.py`` regenerates one experiment of the reconstructed
evaluation (see ``DESIGN.md`` section 4).  Besides the timing that
pytest-benchmark records, every benchmark writes the experiment's table to
``benchmarks/output/<ID>.md`` so the rows the paper's evaluation would report
are available as artefacts after a run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.harness import ExperimentResult

OUTPUT_DIRECTORY = Path(__file__).parent / "output"


@pytest.fixture
def record_experiment():
    """Write an :class:`ExperimentResult` to ``benchmarks/output`` and echo it."""

    def _record(result: ExperimentResult) -> ExperimentResult:
        OUTPUT_DIRECTORY.mkdir(parents=True, exist_ok=True)
        path = OUTPUT_DIRECTORY / f"{result.experiment_id}.md"
        path.write_text(result.to_markdown() + "\n", encoding="utf-8")
        print(f"\n{result.to_markdown()}\n[written to {path}]")
        return result

    return _record

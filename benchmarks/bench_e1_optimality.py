"""E1 — Optimality of the branch-and-bound ordering.

Regenerates the optimality cross-check table (branch-and-bound vs exhaustive
enumeration vs subset DP) and times one full sweep.
"""

from __future__ import annotations

from repro.experiments import run_e1_optimality


def test_e1_optimality(benchmark, record_experiment):
    result = benchmark.pedantic(
        lambda: run_e1_optimality(sizes=(4, 5, 6, 7, 8), instances_per_size=5),
        rounds=1,
        iterations=1,
    )
    record_experiment(result)
    for row in result.row_dicts():
        assert row["bb = exhaustive"] == row["instances"]
        assert row["max relative gap"] <= 1e-9

"""Cold-optimize timings across the whole algorithm registry.

This script starts the repository's performance trajectory: it times a cold
``optimize()`` call per (algorithm, size) cell on pruning-resistant instances
(near-unit selectivities keep every prefix product close to 1, so exact
searches cannot close subtrees early and the numbers reflect raw evaluation
throughput), and writes the results — together with per-plan costs, so a
future regression in *quality* is as visible as one in speed — to a
machine-readable JSON file.

The file also embeds the pre-kernel baseline (the same harness run at the
commit before the evaluation kernel of :mod:`repro.core.evaluation` landed,
on the same class of machine) and reports the speedup per cell, so the
kernel's headline numbers (>= 3x on exhaustive n=9 and local search n=12)
stay reproducible claims rather than folklore.

Usage::

    PYTHONPATH=src python benchmarks/bench_optimizers.py           # full run
    PYTHONPATH=src python benchmarks/bench_optimizers.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/bench_optimizers.py -o out.json
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import time
from pathlib import Path

from repro.core import OrderingProblem, optimize
from repro.utils import runtime_provenance

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_optimizers.json"

# Measured at commit b470099 (the last commit before the evaluation kernel),
# with this same harness (best of 3, pruning-resistant instances) on the CI
# reference container.  Speedups below are relative to these numbers; cells
# absent here had no pre-kernel measurement.
PRE_KERNEL_BASELINE_SECONDS = {
    "exhaustive:n9": 5.6828,
    "hill_climbing:n12": 0.021554,
    "simulated_annealing:n12": 0.118003,
    "branch_and_bound:n12": 0.030515,
    "beam_search:n12": 0.017989,
    "dynamic_programming:n12": 0.079099,
    "greedy_min_term:n12": 0.00037049,
}

# (algorithm, problem size) cells; exhaustive enumerates n! plans, so its size
# is kept small.  Quick mode shrinks everything to keep the CI smoke fast.
FULL_CELLS = [
    ("exhaustive", 9),
    ("branch_and_bound", 12),
    ("dynamic_programming", 12),
    ("beam_search", 12),
    ("hill_climbing", 12),
    ("simulated_annealing", 12),
    ("greedy_min_term", 12),
    ("greedy_nearest_successor", 12),
]
QUICK_CELLS = [
    ("exhaustive", 7),
    ("branch_and_bound", 9),
    ("dynamic_programming", 9),
    ("beam_search", 9),
    ("hill_climbing", 9),
    ("simulated_annealing", 9),
    ("greedy_min_term", 9),
    ("greedy_nearest_successor", 9),
]


def hard_problem(size: int, seed: int = 0) -> OrderingProblem:
    """A pruning-resistant instance (mirrors ``bench_serving._hard_problem``)."""
    rng = random.Random(seed)
    costs = [rng.uniform(1.0, 1.3) for _ in range(size)]
    selectivities = [rng.uniform(0.9, 1.0) for _ in range(size)]
    rows = [
        [0.0 if i == j else rng.uniform(0.5, 4.0) for j in range(size)] for i in range(size)
    ]
    return OrderingProblem.from_parameters(
        costs, selectivities, rows, name=f"hard-n{size}-seed{seed}"
    )


def time_cell(algorithm: str, size: int, repeats: int) -> dict:
    """Best-of-``repeats`` cold timing of one (algorithm, size) cell."""
    best_seconds = float("inf")
    cost = None
    name = ""
    for _ in range(repeats):
        # A fresh structurally-identical problem per repeat keeps the kernel
        # construction inside the measurement: these are *cold* numbers.
        fresh = hard_problem(size)
        name = fresh.name
        started = time.perf_counter()
        result = optimize(fresh, algorithm=algorithm)
        elapsed = time.perf_counter() - started
        if elapsed < best_seconds:
            best_seconds = elapsed
        cost = result.cost
    assert cost is not None
    return {
        "algorithm": algorithm,
        "size": size,
        "seconds": best_seconds,
        "cost": cost,
        "problem": name,
        "repeats": repeats,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes / single repeat; used as the CI smoke invocation",
    )
    parser.add_argument("--repeats", type=int, default=None, help="timing repeats per cell")
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"output JSON path (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    cells = QUICK_CELLS if args.quick else FULL_CELLS
    repeats = args.repeats if args.repeats is not None else (1 if args.quick else 3)

    results = []
    for algorithm, size in cells:
        cell = time_cell(algorithm, size, repeats)
        key = f"{algorithm}:n{size}"
        baseline = PRE_KERNEL_BASELINE_SECONDS.get(key)
        if baseline is not None:
            cell["pre_kernel_seconds"] = baseline
            cell["speedup_vs_pre_kernel"] = baseline / cell["seconds"]
        results.append(cell)
        speedup = (
            f"  ({cell['speedup_vs_pre_kernel']:.2f}x vs pre-kernel)"
            if baseline is not None
            else ""
        )
        print(
            f"{algorithm:26s} n={size:<3d} {cell['seconds'] * 1e3:10.3f} ms  "
            f"cost={cell['cost']:.6g}{speedup}"
        )

    payload = {
        "benchmark": "bench_optimizers",
        "mode": "quick" if args.quick else "full",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "provenance": runtime_provenance(),
        "results": results,
        "pre_kernel_baseline_seconds": PRE_KERNEL_BASELINE_SECONDS,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Slow-client isolation of the asyncio front end vs the threaded server.

The scenario is the head-of-line regime the async front end exists for: a
warm :class:`~repro.serving.service.PlanService` (fast requests are cache
hits, sub-millisecond), **K deliberately slow clients** that connect and
trickle their request bodies over several seconds, and a handful of fast
clients measuring request latency the whole time.

* The **threaded** server is run with ``max_connections=K`` — the
  production-shaped bound (an unbounded thread-per-connection server hides
  the same cost in its thread count).  Each slow client pins one handler
  thread inside a blocking body read, so with K of them attached the accept
  loop stalls and fast clients queue behind the slow cohort: fast-client p50
  inflates from milliseconds to seconds.
* The **asyncio** server (:mod:`repro.serving.aserver`) gives the slow
  cohort exactly K parked coroutines; its bounded executor bridge only ever
  holds *complete* requests, so fast-client p50 stays at its no-slow-client
  baseline (acceptance: within 1.5x).

A second section verifies the other half of this PR's tentpole on a live
router: N process shards are served by **one** response multiplexer thread
(``shard-mux``), not N per-shard reader threads.

Usage::

    PYTHONPATH=src python benchmarks/bench_async.py           # full run
    PYTHONPATH=src python benchmarks/bench_async.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/bench_async.py -o out.json
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import platform
import socket
import statistics
import threading
import time
from pathlib import Path

from repro.serialization import problem_to_dict
from repro.serving import PlanService, PlanServiceConfig, serve, serve_async
from repro.sharding import ShardRouter, ShardRouterConfig
from repro.utils import runtime_provenance
from repro.workloads import credit_card_screening

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_async.json"

ASYNC_DEGRADATION_LIMIT = 1.5
"""Acceptance: contended/baseline fast-client p50 bound for the async server."""


def service_config() -> PlanServiceConfig:
    """Cheap, deterministic service: the benchmark measures the front end."""
    return PlanServiceConfig(
        algorithms=("greedy_min_term",),
        budget_seconds=None,
        cache_ttl=None,
        drift_threshold=None,
    )


def fast_request(address: tuple[str, int], body: bytes, timeout: float) -> float:
    """One fast client request on a fresh connection; returns its latency."""
    started = time.monotonic()
    connection = http.client.HTTPConnection(*address, timeout=timeout)
    try:
        connection.request(
            "POST", "/plan", body=body, headers={"Content-Type": "application/json"}
        )
        response = connection.getresponse()
        payload = response.read()
        assert response.status == 200, (response.status, payload[:200])
    finally:
        connection.close()
    return time.monotonic() - started


def slow_client(
    address: tuple[str, int], body: bytes, hold_seconds: float, results: list[int]
) -> None:
    """Trickle a request body over ``hold_seconds``, then finish it."""
    with socket.create_connection(address, timeout=hold_seconds + 30) as sock:
        head = (
            f"POST /plan HTTP/1.1\r\nHost: bench\r\n"
            f"Content-Type: application/json\r\nContent-Length: {len(body)}\r\n\r\n"
        ).encode()
        sock.sendall(head)
        steps = 10
        prefix = body[:steps]
        for index in range(steps):
            sock.sendall(prefix[index : index + 1])  # one byte per step: stalled
            time.sleep(hold_seconds / steps)
        sock.sendall(body[steps:])
        status_line = sock.makefile("rb").readline().decode("latin-1")
        results.append(int(status_line.split()[1]))


def fast_phase(
    address: tuple[str, int],
    body: bytes,
    duration: float,
    clients: int,
    timeout: float,
) -> list[float]:
    """``clients`` threads issuing fast requests for ``duration`` seconds."""
    latencies: list[float] = []
    lock = threading.Lock()
    deadline = time.monotonic() + duration

    def loop() -> None:
        while time.monotonic() < deadline:
            latency = fast_request(address, body, timeout)
            with lock:
                latencies.append(latency)

    threads = [threading.Thread(target=loop) for _ in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return latencies


def measure_server(
    kind: str,
    address: tuple[str, int],
    body: bytes,
    *,
    slow_clients: int,
    hold_seconds: float,
    fast_clients: int,
    baseline_seconds: float,
) -> dict:
    """Baseline then contended fast-client latency against one server."""
    request_timeout = hold_seconds + 30
    baseline = fast_phase(address, body, baseline_seconds, fast_clients, request_timeout)

    slow_statuses: list[int] = []
    slow_threads = [
        threading.Thread(
            target=slow_client, args=(address, body, hold_seconds, slow_statuses)
        )
        for _ in range(slow_clients)
    ]
    for thread in slow_threads:
        thread.start()
        time.sleep(0.02)  # stagger so each connection is accepted in turn
    time.sleep(0.3)  # the slow cohort now holds its sockets/threads
    # Measure strictly *inside* the hold window (requests started before the
    # deadline still record their full latency): sampling past the cohort's
    # departure would dilute the median with recovered-fast requests.
    contended_window = max(0.3, hold_seconds - 0.9)
    contended = fast_phase(
        address, body, contended_window, fast_clients, request_timeout
    )
    for thread in slow_threads:
        thread.join()

    baseline_p50 = statistics.median(baseline)
    contended_p50 = statistics.median(contended)
    run = {
        "server": kind,
        "baseline_requests": len(baseline),
        "baseline_p50_ms": baseline_p50 * 1e3,
        "contended_requests": len(contended),
        "contended_p50_ms": contended_p50 * 1e3,
        "contended_p90_ms": sorted(contended)[int(0.9 * (len(contended) - 1))] * 1e3,
        "degradation_ratio": contended_p50 / baseline_p50,
        "slow_client_statuses": sorted(set(slow_statuses)),
    }
    print(
        f"{kind}: baseline p50 {run['baseline_p50_ms']:.2f} ms "
        f"({run['baseline_requests']} reqs) -> contended p50 "
        f"{run['contended_p50_ms']:.2f} ms ({run['contended_requests']} reqs), "
        f"degradation {run['degradation_ratio']:.2f}x"
    )
    return run


def run_isolation(quick: bool) -> dict:
    slow = 8 if quick else 12
    hold_seconds = 1.2 if quick else 3.0
    fast_clients = 2 if quick else 4
    baseline_seconds = 0.6 if quick else 1.5

    problem = credit_card_screening()
    body = json.dumps(problem_to_dict(problem)).encode("utf-8")
    print(
        f"slow-client isolation: {slow} slow clients holding {hold_seconds:.1f} s, "
        f"{fast_clients} fast clients, warm cache"
    )

    runs = []
    for kind in ("threaded", "async"):
        with PlanService(service_config()) as service:
            service.submit(problem)  # warm: fast requests are cache hits
            if kind == "threaded":
                # The production-shaped bound: K slow clients pin every slot.
                server = serve(service, port=0, max_connections=slow)
                server.serve_in_background()
                address = server.server_address[:2]
                try:
                    runs.append(
                        measure_server(
                            kind,
                            address,
                            body,
                            slow_clients=slow,
                            hold_seconds=hold_seconds,
                            fast_clients=fast_clients,
                            baseline_seconds=baseline_seconds,
                        )
                    )
                finally:
                    server.close_gracefully(timeout=5.0)
            else:
                with serve_async(service, port=0) as handle:
                    runs.append(
                        measure_server(
                            kind,
                            handle.address,
                            body,
                            slow_clients=slow,
                            hold_seconds=hold_seconds,
                            fast_clients=fast_clients,
                            baseline_seconds=baseline_seconds,
                        )
                    )
    return {
        "workload": {
            "slow_clients": slow,
            "hold_seconds": hold_seconds,
            "fast_clients": fast_clients,
            "baseline_seconds": baseline_seconds,
            "threaded_max_connections": slow,
        },
        "runs": runs,
    }


def run_multiplexer_check(quick: bool) -> dict:
    """A live router must run one mux thread, not one reader per shard."""
    shards = 2 if quick else 4
    config = ShardRouterConfig(
        shards=shards, backend="processes", service_config=service_config()
    )
    with ShardRouter(config) as router:
        reader_threads = [
            t.name for t in threading.enumerate() if t.name.startswith("shard-reader-")
        ]
        mux_threads = [t.name for t in threading.enumerate() if t.name == "shard-mux"]
        response = router.submit(credit_card_screening())  # proof of life
        assert sorted(response.order) == list(range(credit_card_screening().size))
        registered = router.multiplexer.ports()
    result = {
        "process_shards": shards,
        "per_shard_reader_threads": len(reader_threads),
        "multiplexer_threads": len(mux_threads),
        "registered_response_pipes": registered,
    }
    print(
        f"multiplexer: {shards} process shards -> {result['multiplexer_threads']} "
        f"mux thread(s), {result['per_shard_reader_threads']} per-shard readers"
    )
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="short holds / small cohorts; used as the CI smoke invocation",
    )
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"output JSON path (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    isolation = run_isolation(args.quick)
    multiplexer = run_multiplexer_check(args.quick)

    by_kind = {run["server"]: run for run in isolation["runs"]}
    acceptance = {
        "slow_clients": isolation["workload"]["slow_clients"],
        "async_degradation_ratio": by_kind["async"]["degradation_ratio"],
        "async_within_limit": by_kind["async"]["degradation_ratio"]
        <= ASYNC_DEGRADATION_LIMIT,
        "async_degradation_limit": ASYNC_DEGRADATION_LIMIT,
        "threaded_degradation_ratio": by_kind["threaded"]["degradation_ratio"],
        "threaded_measurably_degrades": by_kind["threaded"]["degradation_ratio"]
        > 2 * ASYNC_DEGRADATION_LIMIT,
        "one_multiplexer_not_reader_threads": (
            multiplexer["multiplexer_threads"] == 1
            and multiplexer["per_shard_reader_threads"] == 0
        ),
    }

    payload = {
        "benchmark": "bench_async",
        "mode": "quick" if args.quick else "full",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "provenance": runtime_provenance(),
        "isolation": isolation,
        "multiplexer": multiplexer,
        "acceptance": acceptance,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    print(
        f"acceptance: async degradation {acceptance['async_degradation_ratio']:.2f}x "
        f"<= {ASYNC_DEGRADATION_LIMIT}x ({acceptance['async_within_limit']}), threaded "
        f"{acceptance['threaded_degradation_ratio']:.2f}x "
        f"(degrades={acceptance['threaded_measurably_degrades']}), one multiplexer: "
        f"{acceptance['one_multiplexer_not_reader_threads']}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

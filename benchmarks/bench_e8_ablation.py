"""E8 — Ablation of the pruning rules (Lemma 2, Lemma 3, expansion policy)."""

from __future__ import annotations

from repro.experiments import run_e8_ablation


def test_e8_ablation(benchmark, record_experiment):
    result = benchmark.pedantic(
        lambda: run_e8_ablation(service_count=9, instances=4),
        rounds=1,
        iterations=1,
    )
    record_experiment(result)
    rows = {row["configuration"]: row for row in result.row_dicts()}
    assert all(row["all optimal"] is True for row in rows.values())
    assert rows["full algorithm"]["mean nodes"] <= rows["bound only, index order"]["mean nodes"]

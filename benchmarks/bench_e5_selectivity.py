"""E5 — Effect of the selectivity regime on pruning and plan quality."""

from __future__ import annotations

from repro.experiments import run_e5_selectivity


def test_e5_selectivity(benchmark, record_experiment):
    result = benchmark.pedantic(
        lambda: run_e5_selectivity(service_count=7, instances_per_regime=5),
        rounds=1,
        iterations=1,
    )
    record_experiment(result)
    for row in result.row_dicts():
        assert row["optimal (vs dp)"] is True
        assert row["greedy/optimal ratio"] >= 1.0 - 1e-9

"""Batch-throughput and hard-cancellation numbers of the parallel engine.

The benchmark replays a *serving trace* — ``unique`` pruning-resistant
problems arriving ``duplication`` times each, shuffled, every occurrence its
own :class:`~repro.core.problem.OrderingProblem` instance (exactly how
repeated traffic reaches a service) — through two paths:

* **sequential** — the pre-engine path: one cold ``optimize()`` call per
  request, on the parent process;
* **engine** — :meth:`repro.parallel.pool.OptimizerPool.optimize_many` at
  several worker counts: batch single-flight collapses the trace to its
  unique problems, and the worker processes compile those concurrently with
  warm per-problem evaluator caches.

The reported batch speedup therefore compounds *deduplication* (pays off
everywhere, including single-core CI containers) with *multi-core scaling*
(pays off on real hardware); the JSON records the workload's duplication
factor, the per-worker-count runs, and a no-dedup run so the two effects can
be separated.  The second section demonstrates hard cancellation: a
portfolio race with a deliberately over-budget exhaustive member
(11 services, ~minutes of enumeration) must return within its budget on the
process backend, because stragglers are terminated — the thread backend
could only abandon them.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py           # full run
    PYTHONPATH=src python benchmarks/bench_parallel.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/bench_parallel.py -o out.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import time
from pathlib import Path

from repro.core import OrderingProblem, optimize
from repro.parallel import OptimizerPool
from repro.serving import PortfolioOptions, run_portfolio

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_parallel.json"

ALGORITHM = "branch_and_bound"
"""The cold-compile algorithm of the throughput section (the service default)."""

ACCEPTANCE_WORKERS = 4
ACCEPTANCE_SPEEDUP = 2.0
"""Acceptance: >= 2x batch throughput at 4 workers vs the sequential path."""


def hard_problem(size: int, seed: int) -> OrderingProblem:
    """A pruning-resistant instance (mirrors ``bench_optimizers.hard_problem``)."""
    rng = random.Random(seed)
    costs = [rng.uniform(1.0, 1.3) for _ in range(size)]
    selectivities = [rng.uniform(0.9, 1.0) for _ in range(size)]
    rows = [
        [0.0 if i == j else rng.uniform(0.5, 4.0) for j in range(size)] for i in range(size)
    ]
    return OrderingProblem.from_parameters(
        costs, selectivities, rows, name=f"hard-n{size}-seed{seed}"
    )


def serving_trace(
    size: int, unique: int, duplication: int, seed: int = 0
) -> list[OrderingProblem]:
    """``unique * duplication`` requests; every occurrence is a fresh instance."""
    order = [index % unique for index in range(unique * duplication)]
    random.Random(seed).shuffle(order)
    return [hard_problem(size, seed=index) for index in order]


def time_sequential(trace: list[OrderingProblem]) -> float:
    started = time.perf_counter()
    for problem in trace:
        optimize(problem, algorithm=ALGORITHM)
    return time.perf_counter() - started


def time_engine(trace: list[OrderingProblem], workers: int, dedup: bool) -> float:
    with OptimizerPool(workers=workers) as pool:
        started = time.perf_counter()
        results = pool.optimize_many(trace, algorithm=ALGORITHM, dedup=dedup)
        elapsed = time.perf_counter() - started
    assert len(results) == len(trace)
    return elapsed


def run_throughput(quick: bool) -> dict:
    size = 9 if quick else 12
    unique = 6 if quick else 24
    duplication = 3 if quick else 4
    worker_counts = (1, 2) if quick else (1, 2, ACCEPTANCE_WORKERS)

    trace = serving_trace(size, unique, duplication)
    requests = len(trace)
    sequential_seconds = time_sequential(trace)
    sequential_rps = requests / sequential_seconds
    print(
        f"sequential: {requests} requests ({unique} unique x{duplication}) "
        f"in {sequential_seconds:.3f} s -> {sequential_rps:.1f} req/s"
    )

    runs = []
    for workers in worker_counts:
        # Fresh instances per run: no evaluator cache leaks between paths.
        trace = serving_trace(size, unique, duplication)
        elapsed = time_engine(trace, workers, dedup=True)
        run = {
            "workers": workers,
            "dedup": True,
            "seconds": elapsed,
            "requests_per_second": requests / elapsed,
            "speedup_vs_sequential": sequential_seconds / elapsed,
        }
        runs.append(run)
        print(
            f"engine w={workers} dedup: {elapsed:.3f} s -> "
            f"{run['requests_per_second']:.1f} req/s "
            f"({run['speedup_vs_sequential']:.2f}x vs sequential)"
        )
    # One no-dedup run at the top worker count isolates pure process scaling
    # (every request compiled, warm caches still amortize decode + kernel).
    trace = serving_trace(size, unique, duplication)
    no_dedup_seconds = time_engine(trace, worker_counts[-1], dedup=False)
    runs.append(
        {
            "workers": worker_counts[-1],
            "dedup": False,
            "seconds": no_dedup_seconds,
            "requests_per_second": requests / no_dedup_seconds,
            "speedup_vs_sequential": sequential_seconds / no_dedup_seconds,
        }
    )
    print(
        f"engine w={worker_counts[-1]} no-dedup: {no_dedup_seconds:.3f} s "
        f"({sequential_seconds / no_dedup_seconds:.2f}x vs sequential)"
    )

    return {
        "workload": {
            "algorithm": ALGORITHM,
            "size": size,
            "unique_problems": unique,
            "duplication_factor": duplication,
            "requests": requests,
        },
        "sequential": {
            "seconds": sequential_seconds,
            "requests_per_second": sequential_rps,
        },
        "engine_runs": runs,
    }


def run_cancellation(quick: bool) -> dict:
    size = 10 if quick else 11
    budget = 0.5 if quick else 0.75
    problem = hard_problem(size, seed=0)
    options = PortfolioOptions(
        algorithms=("greedy_min_term", "branch_and_bound", "exhaustive"),
        budget_seconds=budget,
        # Lift the size guard so exhaustive genuinely chews on n! permutations
        # (minutes of work) instead of refusing the instance.
        algorithm_options={"exhaustive": {"max_size": 12}},
        backend="processes",
    )
    started = time.perf_counter()
    race = run_portfolio(problem, options)
    elapsed = time.perf_counter() - started
    grace = 2.0  # termination + reaping overhead allowance
    within_budget = elapsed <= budget + grace
    print(
        f"race n={size} budget={budget}s: returned in {elapsed:.3f} s, "
        f"best={race.best.algorithm} ({race.best.cost:.6g}), "
        f"timed out: {', '.join(race.timed_out) or '(none)'}"
    )
    return {
        "size": size,
        "budget_seconds": budget,
        "elapsed_seconds": elapsed,
        "grace_seconds": grace,
        "within_budget": within_budget,
        "timed_out": list(race.timed_out),
        "completed": sorted(race.results),
        "best_algorithm": race.best.algorithm,
        "best_cost": race.best.cost,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small trace / small sizes; used as the CI smoke invocation",
    )
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"output JSON path (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    throughput = run_throughput(args.quick)
    cancellation = run_cancellation(args.quick)

    top_run = max(
        (run for run in throughput["engine_runs"] if run["dedup"]),
        key=lambda run: run["workers"],
    )
    acceptance = {
        "batch_speedup_threshold": ACCEPTANCE_SPEEDUP,
        "batch_speedup_workers": top_run["workers"],
        "batch_speedup": top_run["speedup_vs_sequential"],
        "batch_speedup_passed": top_run["speedup_vs_sequential"] >= ACCEPTANCE_SPEEDUP,
        "race_within_budget": cancellation["within_budget"],
        "race_straggler_cancelled": "exhaustive" in cancellation["timed_out"],
    }

    payload = {
        "benchmark": "bench_parallel",
        "mode": "quick" if args.quick else "full",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "throughput": throughput,
        "cancellation": cancellation,
        "acceptance": acceptance,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    print(
        f"acceptance: batch {acceptance['batch_speedup']:.2f}x at "
        f"{acceptance['batch_speedup_workers']} workers "
        f"(threshold {ACCEPTANCE_SPEEDUP}x, passed={acceptance['batch_speedup_passed']}), "
        f"race within budget: {acceptance['race_within_budget']}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""E2 — Pruning effectiveness: explored prefixes vs the n! search space."""

from __future__ import annotations

import math

from repro.experiments import run_e2_pruning


def test_e2_pruning(benchmark, record_experiment):
    result = benchmark.pedantic(
        lambda: run_e2_pruning(sizes=(5, 6, 7, 8, 9, 10), instances_per_size=5),
        rounds=1,
        iterations=1,
    )
    record_experiment(result)
    rows = result.row_dicts()
    # The explored fraction of the factorial search space falls with n.
    fractions = [row["explored fraction"] for row in rows]
    assert fractions[-1] < fractions[0]
    for row in rows:
        assert row["bb nodes"] < math.factorial(row["n"])

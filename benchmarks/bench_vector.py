"""Scalar-vs-vector kernel microbenchmark: whole candidate sets per call.

Times the three batch shapes the vector kernel (:mod:`repro.core.vector`)
was built for, each against the equivalent scalar-kernel loop:

* ``plans``     — score a batch of complete plans (``score_orders`` vs a
  ``PlanEvaluator.cost`` loop), swept over batch sizes;
* ``beam``      — score every feasible extension of a beam front
  (``score_front`` vs ``PrefixState.extend(...).epsilon`` per child), swept
  over front widths;
* ``neighbours``— one steepest-descent step over the full swap/relocate
  neighbourhood (``best_neighbor`` vs the bounded scalar double loop).

Both kernels compute bit-identical costs in default mode (asserted here on
the ``plans`` section as a sanity check, and property-tested exhaustively in
``tests/core/test_vector.py``), so the speedups below are free.

The committed ``BENCH_vector.json`` backs the headline claim: >= 3x over
scalar for beam-front and neighbourhood scoring at n >= 16 with batches of
>= 64 candidates.  The payload embeds interpreter/numpy/BLAS provenance so
the numbers stay interpretable across machines.

Usage::

    PYTHONPATH=src python benchmarks/bench_vector.py           # full run
    PYTHONPATH=src python benchmarks/bench_vector.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/bench_vector.py -o out.json
"""

from __future__ import annotations

import argparse
import json
import random
import time
from pathlib import Path

from repro.core import OrderingProblem
from repro.core.vector import batch_evaluator, numpy_available
from repro.utils import runtime_provenance

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_vector.json"

FULL_SIZES = [8, 16, 24]
QUICK_SIZES = [8, 16]
FULL_PLAN_BATCHES = [16, 64, 256, 1024]
QUICK_PLAN_BATCHES = [16, 64]
FULL_BEAM_WIDTHS = [4, 16, 64]
QUICK_BEAM_WIDTHS = [4, 16]


def hard_problem(size: int, seed: int = 0) -> OrderingProblem:
    """A pruning-resistant instance (mirrors ``bench_optimizers.hard_problem``)."""
    rng = random.Random(seed)
    costs = [rng.uniform(1.0, 1.3) for _ in range(size)]
    selectivities = [rng.uniform(0.9, 1.0) for _ in range(size)]
    rows = [
        [0.0 if i == j else rng.uniform(0.5, 4.0) for j in range(size)] for i in range(size)
    ]
    return OrderingProblem.from_parameters(
        costs, selectivities, rows, name=f"hard-n{size}-seed{seed}"
    )


def best_seconds(fn, repeats: int, inner: int) -> float:
    """Best-of-``repeats`` timing of ``inner`` back-to-back calls of ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - started) / inner)
    return best


def bench_plans(problem, batch_size: int, repeats: int, inner: int, rng) -> dict:
    """Complete-plan batch scoring: ``score_orders`` vs an ``evaluator.cost`` loop."""
    evaluator = problem.evaluator()
    batch = batch_evaluator(evaluator)
    orders = [tuple(rng.sample(range(problem.size), problem.size)) for _ in range(batch_size)]

    vector_scores = batch.score_orders(orders)
    scalar_scores = [evaluator.cost(order) for order in orders]
    assert all(v == s for v, s in zip(vector_scores, scalar_scores)), "kernel mismatch"

    scalar = best_seconds(lambda: [evaluator.cost(order) for order in orders], repeats, inner)
    vector = best_seconds(lambda: batch.score_orders(orders), repeats, inner)
    return {
        "kind": "plans",
        "size": problem.size,
        "batch": batch_size,
        "candidates": batch_size,
        "scalar_seconds": scalar,
        "vector_seconds": vector,
        "speedup": scalar / vector,
    }


def bench_beam_front(problem, width: int, repeats: int, inner: int, rng) -> dict:
    """Beam-front scoring: ``score_front`` vs per-child ``extend().epsilon``."""
    evaluator = problem.evaluator()
    batch = batch_evaluator(evaluator)
    size = problem.size
    depth = size // 2
    root = evaluator.root()
    front = []
    for _ in range(width):
        state = root
        for service in rng.sample(range(size), depth):
            state = state.extend(service)
        front.append(state)
    candidates = width * (size - depth)

    def scalar_pass():
        return [
            state.extend(successor).epsilon
            for state in front
            for successor in state.allowed_extensions()
        ]

    scalar = best_seconds(scalar_pass, repeats, inner)
    vector = best_seconds(lambda: batch.score_front(front, False), repeats, inner)
    return {
        "kind": "beam",
        "size": size,
        "width": width,
        "candidates": candidates,
        "scalar_seconds": scalar,
        "vector_seconds": vector,
        "speedup": scalar / vector,
    }


def bench_neighbourhood(problem, repeats: int, inner: int, rng) -> dict:
    """One steepest-descent step: ``best_neighbor`` vs the scalar double loop."""
    evaluator = problem.evaluator()
    batch = batch_evaluator(evaluator)
    size = problem.size
    order = tuple(rng.sample(range(size), size))
    candidates = size * (size - 1) // 2 + size * (size - 1)

    def scalar_step():
        neighborhood = evaluator.neighborhood(order)
        best_cost = neighborhood.cost
        best = None
        for i in range(size):
            for j in range(i + 1, size):
                if not neighborhood.swap_feasible(i, j):
                    continue
                cost = neighborhood.swap_cost(i, j, best_cost)
                if cost < best_cost:
                    best_cost, best = cost, neighborhood.swapped(i, j)
        for i in range(size):
            for j in range(size):
                if i == j or not neighborhood.relocate_feasible(i, j):
                    continue
                cost = neighborhood.relocate_cost(i, j, best_cost)
                if cost < best_cost:
                    best_cost, best = cost, neighborhood.relocated(i, j)
        return best, best_cost

    base_cost = evaluator.neighborhood(order).cost
    scalar = best_seconds(scalar_step, repeats, inner)
    vector = best_seconds(lambda: batch.best_neighbor(order, base_cost), repeats, inner)
    return {
        "kind": "neighbours",
        "size": size,
        "candidates": candidates,
        "scalar_seconds": scalar,
        "vector_seconds": vector,
        "speedup": scalar / vector,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sweep / fewer repeats; used as the CI smoke invocation",
    )
    parser.add_argument("--repeats", type=int, default=None, help="timing repeats per cell")
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"output JSON path (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    if not numpy_available():
        print("bench_vector: numpy is not installed (pip install 'repro[fast]'); nothing to time")
        return 2

    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    plan_batches = QUICK_PLAN_BATCHES if args.quick else FULL_PLAN_BATCHES
    beam_widths = QUICK_BEAM_WIDTHS if args.quick else FULL_BEAM_WIDTHS
    repeats = args.repeats if args.repeats is not None else (2 if args.quick else 5)
    inner = 1 if args.quick else 3
    rng = random.Random(7)

    results = []
    for size in sizes:
        problem = hard_problem(size)
        for batch_size in plan_batches:
            results.append(bench_plans(problem, batch_size, repeats, inner, rng))
        for width in beam_widths:
            results.append(bench_beam_front(problem, width, repeats, inner, rng))
        results.append(bench_neighbourhood(problem, repeats, inner, rng))

    for cell in results:
        shape = cell.get("batch") or cell.get("width") or "-"
        print(
            f"{cell['kind']:11s} n={cell['size']:<3d} shape={shape!s:>5s} "
            f"candidates={cell['candidates']:<5d} "
            f"scalar={cell['scalar_seconds'] * 1e6:9.1f}us "
            f"vector={cell['vector_seconds'] * 1e6:9.1f}us "
            f"{cell['speedup']:6.2f}x"
        )

    # The headline claim the committed JSON backs: beam-front and
    # neighbourhood scoring at n >= 16 with >= 64 candidates per call.
    headline = [
        cell
        for cell in results
        if cell["kind"] in ("beam", "neighbours")
        and cell["size"] >= 16
        and cell["candidates"] >= 64
    ]
    claims = {
        "min_headline_speedup": min((c["speedup"] for c in headline), default=None),
        "headline_cells": len(headline),
        "threshold": 3.0,
    }
    if headline:
        print(
            f"\nheadline (beam/neighbours, n>=16, >=64 candidates): "
            f"min {claims['min_headline_speedup']:.2f}x over {len(headline)} cells"
        )

    payload = {
        "benchmark": "bench_vector",
        "mode": "quick" if args.quick else "full",
        "provenance": runtime_provenance(),
        "claims": claims,
        "results": results,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

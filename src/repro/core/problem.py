"""The ordering problem: services, transfer costs and optional constraints.

An :class:`OrderingProblem` bundles everything an optimizer needs:

* the services ``WS_0 ... WS_{N-1}`` (costs ``c_i`` and selectivities ``σ_i``),
* the pairwise per-tuple transfer costs ``t_{i,j}`` (decentralized execution:
  services ship tuples directly to each other, so the costs differ per pair),
* optional precedence constraints, and
* optional per-service transfer costs to the query consumer ("sink").

The problem object is immutable; "what if" variations are created through the
``with_*`` copy helpers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.evaluation import PlanEvaluator

from repro.core.cost_model import (
    CommunicationCostMatrix,
    StageCost,
    bottleneck_cost,
    bottleneck_stage,
    stage_costs,
)
from repro.core.plan import Plan
from repro.core.precedence import PrecedenceGraph
from repro.core.service import Service
from repro.exceptions import InvalidPlanError, InvalidProblemError
from repro.utils.validation import require_non_negative

__all__ = ["OrderingProblem"]


class OrderingProblem:
    """An instance of the optimal service-ordering problem of the paper."""

    def __init__(
        self,
        services: Iterable[Service],
        transfer: CommunicationCostMatrix,
        precedence: PrecedenceGraph | None = None,
        sink_transfer: Sequence[float] | None = None,
        name: str = "",
    ) -> None:
        self._services = tuple(services)
        if not self._services:
            raise InvalidProblemError("an ordering problem needs at least one service")
        names = [service.name for service in self._services]
        if len(set(names)) != len(names):
            raise InvalidProblemError(f"service names must be unique, got {names!r}")
        if transfer.size != len(self._services):
            raise InvalidProblemError(
                f"transfer matrix covers {transfer.size} services but {len(self._services)} were given"
            )
        if precedence is not None and precedence.size != len(self._services):
            raise InvalidProblemError(
                f"precedence graph covers {precedence.size} services but {len(self._services)} were given"
            )
        if sink_transfer is not None:
            if len(sink_transfer) != len(self._services):
                raise InvalidProblemError(
                    f"sink_transfer has {len(sink_transfer)} entries but there are {len(self._services)} services"
                )
            sink_transfer = tuple(
                require_non_negative(value, f"sink_transfer[{i}]", InvalidProblemError)
                for i, value in enumerate(sink_transfer)
            )
        self._transfer = transfer
        self._precedence = precedence
        self._sink_transfer = sink_transfer
        self._name = name
        self._costs = tuple(service.cost for service in self._services)
        self._selectivities = tuple(service.selectivity for service in self._services)
        self._name_to_index = {service.name: index for index, service in enumerate(self._services)}
        self._evaluator: "PlanEvaluator | None" = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_parameters(
        cls,
        costs: Sequence[float],
        selectivities: Sequence[float],
        transfer: CommunicationCostMatrix | Sequence[Sequence[float]],
        names: Sequence[str] | None = None,
        precedence: PrecedenceGraph | None = None,
        sink_transfer: Sequence[float] | None = None,
        name: str = "",
    ) -> "OrderingProblem":
        """Build a problem directly from numeric parameters.

        This is the most convenient constructor for experiments and tests:
        service names default to ``WS0, WS1, ...``.
        """
        if len(costs) != len(selectivities):
            raise InvalidProblemError(
                f"{len(costs)} costs but {len(selectivities)} selectivities were given"
            )
        if names is None:
            names = [f"WS{i}" for i in range(len(costs))]
        if len(names) != len(costs):
            raise InvalidProblemError(f"{len(names)} names but {len(costs)} costs were given")
        services = [
            Service(name=names[i], cost=costs[i], selectivity=selectivities[i])
            for i in range(len(costs))
        ]
        if not isinstance(transfer, CommunicationCostMatrix):
            transfer = CommunicationCostMatrix(transfer)
        return cls(
            services,
            transfer,
            precedence=precedence,
            sink_transfer=sink_transfer,
            name=name,
        )

    # -- basic accessors ---------------------------------------------------

    @property
    def name(self) -> str:
        """Optional human-readable name of the instance."""
        return self._name

    @property
    def services(self) -> tuple[Service, ...]:
        """The services, in index order."""
        return self._services

    @property
    def size(self) -> int:
        """Number of services ``N``."""
        return len(self._services)

    @property
    def costs(self) -> tuple[float, ...]:
        """Per-tuple processing costs ``c_i`` in index order."""
        return self._costs

    @property
    def selectivities(self) -> tuple[float, ...]:
        """Selectivities ``σ_i`` in index order."""
        return self._selectivities

    @property
    def transfer(self) -> CommunicationCostMatrix:
        """The pairwise per-tuple transfer-cost matrix ``t``."""
        return self._transfer

    @property
    def precedence(self) -> PrecedenceGraph | None:
        """The precedence constraints, if any."""
        return self._precedence

    @property
    def sink_transfer(self) -> tuple[float, ...] | None:
        """Per-service transfer cost to the query consumer, if modelled."""
        return self._sink_transfer

    def service_index(self, name: str) -> int:
        """Index of the service named ``name``."""
        try:
            return self._name_to_index[name]
        except KeyError:
            raise InvalidProblemError(f"unknown service {name!r}") from None

    def service(self, index: int) -> Service:
        """The service at ``index``."""
        return self._services[index]

    def transfer_cost(self, source: int, destination: int) -> float:
        """Per-tuple transfer cost from ``source`` to ``destination``."""
        return self._transfer.cost(source, destination)

    def sink_cost(self, index: int) -> float:
        """Per-tuple transfer cost from ``index`` to the consumer (0 when unmodelled)."""
        if self._sink_transfer is None:
            return 0.0
        return self._sink_transfer[index]

    # -- structural predicates ----------------------------------------------

    @property
    def all_selective(self) -> bool:
        """Whether every service has ``σ <= 1`` (the paper's restricted setting)."""
        return all(sigma <= 1.0 for sigma in self._selectivities)

    @property
    def has_uniform_transfer(self) -> bool:
        """Whether the communication costs are uniform (the centralized special case)."""
        return self._transfer.is_uniform()

    @property
    def has_precedence_constraints(self) -> bool:
        """Whether any precedence constraint is present."""
        return self._precedence is not None and self._precedence.has_constraints

    # -- plan construction and evaluation ------------------------------------

    def plan(self, order: Sequence[int]) -> Plan:
        """Build (and validate) a complete plan from a sequence of service indices."""
        plan = Plan(self, tuple(order))
        self.validate_plan(plan.order)
        return plan

    def plan_from_names(self, names: Sequence[str]) -> Plan:
        """Build a plan from service names instead of indices."""
        return self.plan([self.service_index(name) for name in names])

    def validate_plan(self, order: Sequence[int]) -> None:
        """Validate ``order`` as a complete plan (permutation + precedence)."""
        if len(order) != self.size:
            raise InvalidPlanError(
                f"a complete plan must contain all {self.size} services, got {len(order)}"
            )
        if sorted(order) != list(range(self.size)):
            raise InvalidPlanError(f"plan {order!r} is not a permutation of the services")
        if self._precedence is not None:
            self._precedence.check_order(order)

    def cost(self, order: Sequence[int]) -> float:
        """The bottleneck cost metric (Eq. 1) of the complete plan ``order``."""
        return bottleneck_cost(
            self._costs, self._selectivities, self._transfer, order, self._sink_transfer
        )

    def evaluator(self) -> "PlanEvaluator":
        """The incremental evaluation kernel bound to this problem (cached).

        The kernel (:mod:`repro.core.evaluation`) pre-extracts the cost,
        selectivity, transfer and sink arrays once; every optimizer shares the
        same instance through this accessor.  Safe to call concurrently: the
        problem is immutable, so a rare duplicate build is harmless.
        """
        cached = self._evaluator
        if cached is None:
            from repro.core.evaluation import PlanEvaluator

            cached = PlanEvaluator(self)
            self._evaluator = cached
        return cached

    def stage_costs(self, order: Sequence[int]) -> list[StageCost]:
        """Per-stage cost breakdown of the complete plan ``order``."""
        return stage_costs(
            self._costs, self._selectivities, self._transfer, order, self._sink_transfer
        )

    def bottleneck_stage(self, order: Sequence[int]) -> StageCost:
        """The stage attaining the bottleneck cost of ``order``."""
        return bottleneck_stage(
            self._costs, self._selectivities, self._transfer, order, self._sink_transfer
        )

    # -- copy helpers --------------------------------------------------------

    def with_transfer(self, transfer: CommunicationCostMatrix) -> "OrderingProblem":
        """Copy of this problem with a different transfer matrix."""
        return OrderingProblem(
            self._services,
            transfer,
            precedence=self._precedence,
            sink_transfer=self._sink_transfer,
            name=self._name,
        )

    def with_uniform_transfer(self, value: float | None = None) -> "OrderingProblem":
        """Copy of this problem with uniform communication costs.

        ``value`` defaults to the mean of the current off-diagonal entries,
        which is how a communication-oblivious (centralized) optimizer would
        see the network.
        """
        if value is None:
            value = self._transfer.mean_cost()
        return self.with_transfer(CommunicationCostMatrix.uniform(self.size, value))

    def with_precedence(self, precedence: PrecedenceGraph | None) -> "OrderingProblem":
        """Copy of this problem with different precedence constraints."""
        return OrderingProblem(
            self._services,
            self._transfer,
            precedence=precedence,
            sink_transfer=self._sink_transfer,
            name=self._name,
        )

    def with_sink_transfer(self, sink_transfer: Sequence[float] | None) -> "OrderingProblem":
        """Copy of this problem with different sink-transfer costs."""
        return OrderingProblem(
            self._services,
            self._transfer,
            precedence=self._precedence,
            sink_transfer=sink_transfer,
            name=self._name,
        )

    def with_threads_folded(self) -> "OrderingProblem":
        """The single-threaded problem equivalent to this one under Eq. 1.

        The paper's restricted setting assumes single-threaded services; the
        relaxation to ``k``-threaded services divides each service's sustained
        busy time per input tuple — ``c_i + σ_i · t_{i,next}`` — by ``k``.
        That is exactly the bottleneck term of a single-threaded service with
        cost ``c_i / k`` and outgoing transfer costs scaled by ``1 / k``, so
        the optimizers can handle multi-threaded services by optimizing this
        folded problem instead.  Services already declared single-threaded are
        unchanged.
        """
        if all(service.threads == 1 for service in self._services):
            return self
        folded_services = [
            Service(
                name=service.name,
                cost=service.cost / service.threads,
                selectivity=service.selectivity,
                host=service.host,
                threads=1,
            )
            for service in self._services
        ]
        size = self.size
        rows = [
            [
                0.0
                if i == j
                else self._transfer.cost(i, j) / self._services[i].threads
                for j in range(size)
            ]
            for i in range(size)
        ]
        sink_transfer = None
        if self._sink_transfer is not None:
            sink_transfer = [
                self._sink_transfer[i] / self._services[i].threads for i in range(size)
            ]
        return OrderingProblem(
            folded_services,
            CommunicationCostMatrix(rows),
            precedence=self._precedence,
            sink_transfer=sink_transfer,
            name=f"{self._name}-threads-folded" if self._name else "threads-folded",
        )

    # -- reporting -----------------------------------------------------------

    def describe(self) -> str:
        """Multi-line human-readable description used by examples."""
        lines = [
            f"OrderingProblem {self._name or '(unnamed)'}: {self.size} services",
            f"  transfer: mean={self._transfer.mean_cost():.4g}, "
            f"heterogeneity={self._transfer.heterogeneity():.3f}, "
            f"uniform={self.has_uniform_transfer}",
        ]
        for service in self._services:
            lines.append("  " + service.describe())
        if self.has_precedence_constraints:
            assert self._precedence is not None
            lines.append(f"  precedence: {list(self._precedence.edges())}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"OrderingProblem(name={self._name!r}, size={self.size})"

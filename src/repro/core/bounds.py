"""The two guide measures of the branch-and-bound algorithm.

The algorithm of the paper steers its search with two quantities per partial
plan ``C``:

* ``ε`` — the bottleneck cost of ``C`` itself (maintained incrementally by
  :class:`repro.core.plan.PartialPlan`); Lemma 1 states it never decreases when
  the prefix is extended, so it is a valid lower bound for every completion.
* ``ε̄`` — the **maximum possible cost** any service not yet included in ``C``
  may still incur, whatever the remaining ordering.  Lemma 2 states that if
  ``ε >= ε̄`` the bottleneck of every completion of ``C`` equals ``ε``.

For purely selective services (``σ <= 1``) the number of tuples reaching a
remaining service is at most the output rate of ``C``.  For proliferative
services (``σ > 1``) the bound must account for the possible inflation caused
by remaining proliferative services placed in between — this is the "slight
modification" the paper mentions; it is implemented here as the product of the
remaining ``σ > 1`` values, excluding the bounded service itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.plan import PartialPlan
from repro.core.problem import OrderingProblem

__all__ = ["ResidualBound", "epsilon_bar", "max_residual_cost", "initial_upper_bound"]


@dataclass(frozen=True)
class ResidualBound:
    """The value of ``ε̄`` for a partial plan, with attribution for diagnostics.

    Attributes
    ----------
    value:
        The bound ``ε̄`` itself.
    critical_service:
        Index of the service whose worst-case term attains the bound
        (``None`` when the bound is attained by completing the term of the
        prefix's last service).
    last_service_bound:
        Worst-case *settled* term of the prefix's current last service, i.e.
        the largest value its term can take once its successor becomes known.
    """

    value: float
    critical_service: int | None
    last_service_bound: float


def _worst_outgoing_transfer(
    problem: OrderingProblem, source: int, candidates: list[int]
) -> float:
    """Largest per-tuple transfer cost from ``source`` to any of ``candidates`` or the sink."""
    worst = problem.sink_cost(source)
    for destination in candidates:
        if destination == source:
            continue
        cost = problem.transfer_cost(source, destination)
        if cost > worst:
            worst = cost
    return worst


def max_residual_cost(partial: PartialPlan) -> ResidualBound:
    """Compute ``ε̄`` for ``partial`` (see module docstring).

    The bound is the maximum of

    * the worst-case completed term of the prefix's last service (its outgoing
      transfer is not settled yet), and
    * for every remaining service ``j``: the worst-case number of tuples that
      can reach ``j`` times ``(c_j + σ_j * worst outgoing transfer of j)``.
    """
    problem = partial.problem
    remaining = partial.remaining()

    # Worst-case completion of the current last service's term.
    last_bound = 0.0
    last = partial.last
    if last is not None and not partial.is_complete:
        last_rate = partial.prefix_products[-1]
        worst_out = _worst_outgoing_transfer(problem, last, remaining)
        last_bound = last_rate * (
            problem.costs[last] + problem.selectivities[last] * worst_out
        )

    # Worst-case inflation from remaining proliferative services.
    proliferation = 1.0
    for index in remaining:
        sigma = problem.selectivities[index]
        if sigma > 1.0:
            proliferation *= sigma

    best_value = last_bound
    critical: int | None = None
    for index in remaining:
        sigma = problem.selectivities[index]
        inflation = proliferation / sigma if sigma > 1.0 else proliferation
        rate_bound = partial.output_rate * inflation
        others = [other for other in remaining if other != index]
        worst_out = _worst_outgoing_transfer(problem, index, others)
        term_bound = rate_bound * (problem.costs[index] + sigma * worst_out)
        if term_bound > best_value:
            best_value = term_bound
            critical = index

    return ResidualBound(value=best_value, critical_service=critical, last_service_bound=last_bound)


def epsilon_bar(partial: PartialPlan) -> float:
    """Shorthand returning only the value of ``ε̄``."""
    return max_residual_cost(partial).value


def initial_upper_bound(problem: OrderingProblem) -> float:
    """A trivially valid upper bound on the optimal bottleneck cost.

    Used by optimizers before any plan has been completed: the bound of the
    empty prefix (every service processed at full input rate with its worst
    outgoing transfer, inflated by every proliferative service) is an upper
    bound on the cost of *any* plan, hence also on the optimum.
    """
    return epsilon_bar(PartialPlan.empty(problem))

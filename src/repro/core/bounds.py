"""The two guide measures of the branch-and-bound algorithm.

The algorithm of the paper steers its search with two quantities per partial
plan ``C``:

* ``ε`` — the bottleneck cost of ``C`` itself (maintained incrementally by
  :class:`repro.core.plan.PartialPlan` and the kernel's
  :class:`repro.core.evaluation.PrefixState`); Lemma 1 states it never
  decreases when the prefix is extended, so it is a valid lower bound for
  every completion.
* ``ε̄`` — the **maximum possible cost** any service not yet included in ``C``
  may still incur, whatever the remaining ordering.  Lemma 2 states that if
  ``ε >= ε̄`` the bottleneck of every completion of ``C`` equals ``ε``.

For purely selective services (``σ <= 1``) the number of tuples reaching a
remaining service is at most the output rate of ``C``.  For proliferative
services (``σ > 1``) the bound must account for the possible inflation caused
by remaining proliferative services placed in between — this is the "slight
modification" the paper mentions; it is implemented as the product of the
remaining ``σ > 1`` values, excluding the bounded service itself.

The arithmetic itself lives in
:meth:`repro.core.evaluation.PlanEvaluator.residual_parts`, which operates on
the kernel's pre-extracted arrays; this module is the public face, accepting
either a validated :class:`~repro.core.plan.PartialPlan` or a kernel
:class:`~repro.core.evaluation.PrefixState`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.evaluation import PrefixState
from repro.core.plan import PartialPlan
from repro.core.problem import OrderingProblem

__all__ = ["ResidualBound", "epsilon_bar", "max_residual_cost", "initial_upper_bound"]


@dataclass(frozen=True)
class ResidualBound:
    """The value of ``ε̄`` for a partial plan, with attribution for diagnostics.

    Attributes
    ----------
    value:
        The bound ``ε̄`` itself.
    critical_service:
        Index of the service whose worst-case term attains the bound
        (``None`` when the bound is attained by completing the term of the
        prefix's last service).
    last_service_bound:
        Worst-case *settled* term of the prefix's current last service, i.e.
        the largest value its term can take once its successor becomes known.
    """

    value: float
    critical_service: int | None
    last_service_bound: float


def max_residual_cost(partial: PartialPlan | PrefixState) -> ResidualBound:
    """Compute ``ε̄`` for ``partial`` (see module docstring).

    The bound is the maximum of

    * the worst-case completed term of the prefix's last service (its outgoing
      transfer is not settled yet), and
    * for every remaining service ``j``: the worst-case number of tuples that
      can reach ``j`` times ``(c_j + σ_j * worst outgoing transfer of j)``.
    """
    if isinstance(partial, PrefixState):
        value, critical, last_bound = partial.evaluator.residual(partial)
    else:
        evaluator = partial.problem.evaluator()
        placed_mask = 0
        for index in partial.placed:
            placed_mask |= 1 << index
        last_rate = partial.prefix_products[-1] if partial.order else 1.0
        value, critical, last_bound = evaluator.residual_parts(
            placed_mask, partial.last, last_rate, partial.output_rate
        )
    return ResidualBound(value=value, critical_service=critical, last_service_bound=last_bound)


def epsilon_bar(partial: PartialPlan | PrefixState) -> float:
    """Shorthand returning only the value of ``ε̄``."""
    return max_residual_cost(partial).value


def initial_upper_bound(problem: OrderingProblem) -> float:
    """A trivially valid upper bound on the optimal bottleneck cost.

    Used by optimizers before any plan has been completed: the bound of the
    empty prefix (every service processed at full input rate with its worst
    outgoing transfer, inflated by every proliferative service) is an upper
    bound on the cost of *any* plan, hence also on the optimum.
    """
    return epsilon_bar(problem.evaluator().root())

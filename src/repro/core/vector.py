"""The vectorized batch-evaluation kernel (optional numpy fast path).

The incremental kernel (:mod:`repro.core.evaluation`) made every optimizer
fast by sharing state between candidates, but it still scores candidates one
at a time in pure-Python loops over flat arrays — exactly the shape numpy
eats.  This module scores an entire candidate *set* in one call:

* :meth:`BatchEvaluator.score_orders` — a matrix of complete plans
  (``candidates x services``) evaluated as a handful of array operations,
* :meth:`BatchEvaluator.score_front` — every feasible one-service extension
  of a whole beam front of :class:`~repro.core.evaluation.PrefixState`
  objects (the per-level work of beam search),
* :meth:`BatchEvaluator.best_neighbor` — the full swap/relocate
  neighbourhood of a base plan, generated *and* scored without a Python
  loop over moves (the per-step work of hill climbing),
* :meth:`BatchEvaluator.transition_terms` — the settled-term matrix of a
  batch of ``(mask, last)`` dynamic-programming states (the per-layer work
  of the subset DP).

Bit-identity with the scalar kernel
-----------------------------------

numpy's elementwise double arithmetic applies the same IEEE-754 operations
as Python floats, one rounding per operation and no fused multiply-adds, and
``np.cumprod`` accumulates strictly left to right — so every expression here
keeps the scalar kernel's exact shapes (``rate * c + (rate * sigma) * t``,
rates as a left-to-right multiplication chain) and returns *the same float,
bit for bit*, as the scalar kernel and hence as
:func:`repro.core.cost_model.bottleneck_cost`.  The property-based tests
assert this with ``==``.  The one exception is :attr:`BatchEvaluator.fast_math`
(off by default), which permits the factored form ``rate * (c + sigma * t)``
— one multiplication fewer per term, but a reassociation whose result is
only approximately equal.

Kernel selection
----------------

numpy is an **optional** dependency (``pip install repro[fast]``): every
consumer falls back to the scalar kernel when it is missing.  Which kernel
runs is resolved by :func:`resolve_kernel` from, in order of precedence: an
explicit per-call/per-optimizer request, :func:`set_default_kernel` (which
also exports ``REPRO_KERNEL`` so optimizer-pool and portfolio worker
processes inherit the choice), the ``REPRO_KERNEL`` environment variable,
and finally ``auto`` — the vector kernel when numpy is importable *and* the
instance is big enough to win (``size >= AUTO_MIN_SIZE``; below that, numpy
call overhead dominates and the scalar kernel is faster).  Requesting
``vector`` without numpy raises a clean :class:`~repro.exceptions.KernelError`.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Sequence

try:  # numpy is optional: the scalar kernel is the always-available fallback.
    import numpy as np
except ImportError:  # pragma: no cover - exercised via the no-numpy tests
    np = None  # type: ignore[assignment]

from repro.exceptions import KernelError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.evaluation import PlanEvaluator, PrefixState
    from repro.core.problem import OrderingProblem

__all__ = [
    "KERNELS",
    "AUTO_MIN_SIZE",
    "MAX_VECTOR_SIZE",
    "BatchEvaluator",
    "batch_evaluator",
    "numpy_available",
    "default_kernel",
    "set_default_kernel",
    "resolve_kernel",
    "prepare_kernel",
]

KERNELS = ("auto", "scalar", "vector")
"""Accepted kernel names: ``auto`` resolves to one of the other two."""

AUTO_MIN_SIZE = 10
"""Smallest problem size at which ``auto`` picks the vector kernel.  Below
this the candidate sets are so small that numpy call overhead exceeds the
loop it replaces; the crossover was measured in ``benchmarks/bench_vector.py``."""

MAX_VECTOR_SIZE = 62
"""Largest problem the vector kernel accepts: placed/predecessor bitmasks
are held in int64 arrays (the scalar kernel's Python ints are unbounded)."""

_ENV_VAR = "REPRO_KERNEL"

_default_kernel: str | None = None
"""In-process override set by :func:`set_default_kernel` (wins over the env var)."""


# -- kernel selection -------------------------------------------------------


def numpy_available() -> bool:
    """Whether numpy imported, i.e. whether the vector kernel can run at all."""
    return np is not None


def _validate(name: str) -> str:
    if name not in KERNELS:
        raise KernelError(
            f"unknown evaluation kernel {name!r}; available: {', '.join(KERNELS)}"
        )
    return name


def default_kernel() -> str:
    """The configured process-wide default kernel name (may be ``auto``).

    Precedence: :func:`set_default_kernel` > the ``REPRO_KERNEL`` environment
    variable > ``auto``.  A malformed environment value raises, so a typo in a
    deployment manifest fails loudly instead of silently running scalar.
    """
    if _default_kernel is not None:
        return _default_kernel
    env = os.environ.get(_ENV_VAR, "").strip().lower()
    if env:
        return _validate(env)
    return "auto"


def set_default_kernel(name: str | None) -> str:
    """Set the process-wide default kernel; returns the stored name.

    ``None`` clears the override (back to env var / ``auto``).  The choice is
    also exported as ``REPRO_KERNEL``, so worker processes started afterwards
    (optimizer pool, process portfolio, process shards — fork or spawn alike)
    inherit it transparently.
    """
    global _default_kernel
    if name is None:
        _default_kernel = None
        os.environ.pop(_ENV_VAR, None)
        return "auto"
    name = _validate(name.strip().lower())
    _default_kernel = name
    os.environ[_ENV_VAR] = name
    return name


def resolve_kernel(name: str | None = None, size: int | None = None) -> str:
    """Resolve a kernel request to ``"scalar"`` or ``"vector"``.

    ``name=None`` consults :func:`default_kernel`.  ``auto`` picks the vector
    kernel only when numpy is available and the instance is big enough to win
    (``size`` is the problem size; ``None`` means "assume big").  An explicit
    ``"vector"`` request without numpy — or beyond :data:`MAX_VECTOR_SIZE` —
    raises :class:`~repro.exceptions.KernelError` instead of silently
    degrading.
    """
    requested = _validate(name.strip().lower()) if name is not None else default_kernel()
    if requested == "scalar":
        return "scalar"
    if requested == "vector":
        if np is None:
            raise KernelError(
                "the vector kernel requires numpy, which is not installed; "
                "install the optional extra (pip install repro-service-ordering[fast]) "
                "or select the scalar kernel"
            )
        if size is not None and size > MAX_VECTOR_SIZE:
            raise KernelError(
                f"the vector kernel supports at most {MAX_VECTOR_SIZE} services "
                f"(int64 feasibility bitmasks), the problem has {size}"
            )
        return "vector"
    # auto: pick whichever kernel is expected to win.
    if np is None:
        return "scalar"
    if size is not None and (size < AUTO_MIN_SIZE or size > MAX_VECTOR_SIZE):
        return "scalar"
    return "vector"


def prepare_kernel(problem: "OrderingProblem") -> str:
    """Warm the kernel a problem will be scored with; returns its name.

    Builds the problem's (cached) scalar evaluator, plus the shared
    :class:`BatchEvaluator` when the resolved kernel is ``vector`` — so a
    long-lived holder of the problem (an optimizer-pool worker's warm cache,
    a portfolio about to race several members over one instance) pays the
    array extraction once, and every subsequent batch call on the instance
    shares the same vectorized scorer.
    """
    evaluator = problem.evaluator()
    kernel = resolve_kernel(size=problem.size)
    if kernel == "vector":
        batch_evaluator(evaluator)
    return kernel


def batch_evaluator(evaluator: "PlanEvaluator", fast_math: bool = False) -> "BatchEvaluator":
    """The (cached) :class:`BatchEvaluator` bound to ``evaluator``.

    One instance per ``(evaluator, fast_math)`` is shared by every consumer —
    beam fronts, neighbourhoods and DP layers of the same problem all score
    through the same pre-extracted arrays and precomputed move tables.
    """
    cache = evaluator.batch_cache
    if cache is None:
        cache = evaluator.batch_cache = {}
    batch = cache.get(fast_math)
    if batch is None:
        batch = cache[fast_math] = BatchEvaluator(evaluator, fast_math=fast_math)
    return batch


def _count_batch(amount: int) -> None:
    """Profile hook: one counter bump of ``amount`` per batch call, so
    observability overhead does not scale with the batch size."""
    from repro.core import evaluation

    profile = evaluation.kernel_profile()
    if profile is not None:
        profile.batch_evaluations += amount


# -- the batch evaluator ----------------------------------------------------


class BatchEvaluator:
    """Vectorized candidate-set scoring bound to one scalar evaluator.

    Like :class:`~repro.core.evaluation.PlanEvaluator` it never validates:
    callers feed candidate sets their search structure guarantees to be
    permutations (feasibility *is* checked where the method generates the
    candidates itself).  Construction requires numpy; use
    :func:`resolve_kernel` first and keep scalar fallbacks.
    """

    __slots__ = (
        "evaluator",
        "size",
        "fast_math",
        "costs",
        "selectivities",
        "rows",
        "sink",
        "predecessor_masks",
        "has_precedence",
        "_move_gather",
        "_move_list",
        "_swap_count",
        "_rows_flat",
        "_service_bits",
        "_order_ws",
        "_front_ws",
    )

    def __init__(self, evaluator: "PlanEvaluator", fast_math: bool = False) -> None:
        if np is None:
            raise KernelError(
                "the vector kernel requires numpy, which is not installed; "
                "install the optional extra (pip install repro-service-ordering[fast])"
            )
        if evaluator.size > MAX_VECTOR_SIZE:
            raise KernelError(
                f"the vector kernel supports at most {MAX_VECTOR_SIZE} services "
                f"(int64 feasibility bitmasks), the problem has {evaluator.size}"
            )
        self.evaluator = evaluator
        self.size = evaluator.size
        self.fast_math = fast_math
        self.costs = np.array(evaluator.costs, dtype=np.float64)
        self.selectivities = np.array(evaluator.selectivities, dtype=np.float64)
        self.rows = np.array(evaluator.rows, dtype=np.float64)
        self.sink = np.array(evaluator.sink, dtype=np.float64)
        self.has_precedence = evaluator.predecessor_masks is not None
        masks = evaluator.predecessor_masks if self.has_precedence else (0,) * self.size
        self.predecessor_masks = np.array(masks, dtype=np.int64)
        self._move_gather = None
        self._move_list: list[tuple[int, int]] | None = None
        self._swap_count = 0
        self._rows_flat = np.ascontiguousarray(self.rows).reshape(-1)
        self._service_bits = np.int64(1) << np.arange(self.size, dtype=np.int64)
        # Single-slot workspaces: batch scoring is dominated by allocating
        # (batch, size) temporaries (fresh pages each call), and real callers
        # reuse one batch shape over and over — a hill climb always scores the
        # same move count, a beam search the same front width.
        self._order_ws: "tuple[int, tuple[np.ndarray, ...]] | None" = None
        self._front_ws: "tuple[int, tuple[np.ndarray, ...]] | None" = None

    def _order_workspace(self, batch: int) -> "tuple[np.ndarray, ...]":
        cached = self._order_ws
        if cached is not None and cached[0] == batch:
            return cached[1]
        shape = (batch, self.size)
        arrays = (
            np.empty(shape, dtype=np.float64),  # cost_seq
            np.empty(shape, dtype=np.float64),  # sel_seq
            np.empty(shape, dtype=np.float64),  # rates
            np.empty(shape, dtype=np.float64),  # outgoing
            np.empty((batch, max(self.size - 1, 1)), dtype=np.intp),  # flat transfer idx
        )
        self._order_ws = (batch, arrays)
        return arrays

    def _front_workspace(self, count: int) -> "tuple[np.ndarray, ...]":
        cached = self._front_ws
        if cached is not None and cached[0] == count:
            return cached[1]
        shape = (count, self.size)
        arrays = (
            np.empty(shape, dtype=np.float64),  # settled/epsilon terms
            np.empty(shape, dtype=np.float64),  # partial terms
            np.empty(shape, dtype=np.float64),  # rows gather
            np.empty(shape, dtype=bool),  # feasibility
            np.empty(shape, dtype=np.int64),  # placed-bit scratch
        )
        self._front_ws = (count, arrays)
        return arrays

    # -- complete-plan batches ---------------------------------------------

    def score_orders(self, orders) -> "np.ndarray":
        """Bottleneck costs of a ``(batch, size)`` matrix of complete plans.

        Bit-identical, per row, to :meth:`PlanEvaluator.cost` on the same
        order: rates come from a strictly sequential ``cumprod`` (the same
        left-to-right multiplication chain) and terms keep the scalar
        expression shapes.
        """
        orders = np.asarray(orders, dtype=np.intp)
        if orders.ndim == 1:
            orders = orders[None, :]
        batch, size = orders.shape
        _count_batch(batch)
        # All temporaries come from a reusable workspace: search loops score
        # the same batch shape over and over, and in-place ufuncs keep every
        # value bit-identical to the freshly-allocated expression.
        cost_seq, sel_seq, rates, outgoing, flat_idx = self._order_workspace(batch)
        np.take(self.costs, orders, out=cost_seq)
        np.take(self.selectivities, orders, out=sel_seq)
        rates[:, 0] = 1.0
        if size > 1:
            np.cumprod(sel_seq[:, :-1], axis=1, out=rates[:, 1:])
            np.multiply(orders[:, :-1], size, out=flat_idx)
            np.add(flat_idx, orders[:, 1:], out=flat_idx)
            np.take(self._rows_flat, flat_idx, out=outgoing[:, :-1])
        np.take(self.sink, orders[:, -1], out=outgoing[:, -1])
        if self.fast_math:
            # Factored: one multiplication fewer per element, but reassociated
            # — only approximately equal to the scalar kernel.
            np.multiply(sel_seq, outgoing, out=sel_seq)
            np.add(cost_seq, sel_seq, out=cost_seq)
            np.multiply(rates, cost_seq, out=cost_seq)
        else:
            np.multiply(rates, cost_seq, out=cost_seq)
            np.multiply(rates, sel_seq, out=sel_seq)
            np.multiply(sel_seq, outgoing, out=sel_seq)
            np.add(cost_seq, sel_seq, out=cost_seq)
        return cost_seq.max(axis=1)

    def feasible_orders(self, orders) -> "np.ndarray":
        """Boolean mask: which rows of ``orders`` satisfy the precedence DAG."""
        orders = np.asarray(orders, dtype=np.intp)
        if orders.ndim == 1:
            orders = orders[None, :]
        batch, size = orders.shape
        if not self.has_precedence:
            return np.ones(batch, dtype=bool)
        bits = np.int64(1) << orders.astype(np.int64)
        placed_before = np.zeros((batch, size), dtype=np.int64)
        if size > 1:
            np.bitwise_or.accumulate(bits[:, :-1], axis=1, out=placed_before[:, 1:])
        required = self.predecessor_masks[orders]
        return ((required & ~placed_before) == 0).all(axis=1)

    # -- beam fronts --------------------------------------------------------

    def score_front(
        self, front: Sequence["PrefixState"], final: bool
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Score every feasible one-service extension of a prefix front.

        All states must share one length (a beam level); ``final`` says the
        extensions complete the plan (their term then includes the sink
        transfer).  Returns ``(parents, extensions, epsilons)`` — flat arrays
        over the feasible children in generation order (parent-major,
        extension index ascending), exactly the order the scalar double loop
        produces them in.  Each epsilon is bit-identical to
        ``front[parent].extend(extension).epsilon``.
        """
        size = self.size
        count = len(front)
        last = np.fromiter((state.last for state in front), dtype=np.intp, count=count)
        rate = np.fromiter((state.rate for state in front), dtype=np.float64, count=count)
        output_rate = np.fromiter(
            (state.output_rate for state in front), dtype=np.float64, count=count
        )
        settled_max = np.fromiter(
            (state.settled_max for state in front), dtype=np.float64, count=count
        )
        placed = np.fromiter((state.placed for state in front), dtype=np.int64, count=count)
        terms, partial, gathered, feasible, bit_scratch = self._front_workspace(count)

        np.bitwise_and(placed[:, None], self._service_bits, out=bit_scratch)
        np.equal(bit_scratch, 0, out=feasible)
        if self.has_precedence:
            feasible &= (self.predecessor_masks[None, :] & ~placed[:, None]) == 0
        _count_batch(int(feasible.sum()))

        # The parent's last term settles: rate * c_last + (rate * sigma_last) * t.
        # Every in-place ufunc keeps the scalar expression's association, so
        # the workspace buys speed, not drift.
        if last.min(initial=0) >= 0:
            np.take(self.rows, last, axis=0, out=gathered)
            if self.fast_math:
                np.multiply(self.selectivities[last][:, None], gathered, out=terms)
                np.add(self.costs[last][:, None], terms, out=terms)
                np.multiply(rate[:, None], terms, out=terms)
            else:
                np.multiply((rate * self.selectivities[last])[:, None], gathered, out=terms)
                np.add((rate * self.costs[last])[:, None], terms, out=terms)
            np.maximum(settled_max[:, None], terms, out=terms)
        else:
            # Roots have no last service: nothing settles, the running max
            # carries.  Only the first beam level lands here; stay simple.
            has_last = last >= 0
            anchor = np.where(has_last, last, 0)
            if self.fast_math:
                settled = rate[:, None] * (
                    self.costs[anchor][:, None]
                    + self.selectivities[anchor][:, None] * self.rows[anchor]
                )
            else:
                settled = (rate * self.costs[anchor])[:, None] + (
                    rate * self.selectivities[anchor]
                )[:, None] * self.rows[anchor]
            np.maximum(settled_max[:, None], settled, out=terms)
            terms[~has_last] = settled_max[~has_last, None]

        # The new service's partial term (full term, with sink, when final).
        if final:
            if self.fast_math:
                partial[:] = output_rate[:, None] * (
                    self.costs[None, :] + self.selectivities[None, :] * self.sink[None, :]
                )
            else:
                np.multiply(output_rate[:, None], self.selectivities[None, :], out=partial)
                np.multiply(partial, self.sink[None, :], out=partial)
                np.multiply(output_rate[:, None], self.costs[None, :], out=gathered)
                np.add(gathered, partial, out=partial)
        else:
            np.multiply(output_rate[:, None], self.costs[None, :], out=partial)
        np.maximum(terms, partial, out=terms)

        parents, extensions = np.nonzero(feasible)
        return parents, extensions, terms[parents, extensions]

    # -- swap/relocate neighbourhoods ---------------------------------------

    def _moves(self) -> "tuple[np.ndarray, list[tuple[int, int]], int]":
        """The neighbourhood's gather table, built once per evaluator.

        Row ``m`` maps candidate positions to base positions: applying move
        ``m`` to a base order is one fancy-indexing ``base[gather[m]]``.
        Moves are enumerated exactly like the scalar hill climber: swaps
        ``(i, j)`` with ``i < j`` first, then relocates ``(i, j)`` with
        ``i != j`` — so "first index attaining the minimum" means the same
        move in both kernels.
        """
        if self._move_gather is None:
            size = self.size
            identity = list(range(size))
            gathers: list[list[int]] = []
            moves: list[tuple[int, int]] = []
            for i in range(size):
                for j in range(i + 1, size):
                    row = identity.copy()
                    row[i], row[j] = row[j], row[i]
                    gathers.append(row)
                    moves.append((i, j))
            swap_count = len(moves)
            for i in range(size):
                for j in range(size):
                    if i == j:
                        continue
                    row = identity.copy()
                    row.insert(j, row.pop(i))
                    gathers.append(row)
                    moves.append((i, j))
            self._move_gather = np.array(gathers, dtype=np.intp)
            self._move_list = moves
            self._swap_count = swap_count
        assert self._move_list is not None
        return self._move_gather, self._move_list, self._swap_count

    def neighborhood_orders(self, order: Sequence[int]) -> "np.ndarray":
        """All swap/relocate candidates of ``order`` as a ``(moves, size)`` matrix."""
        gather, _, _ = self._moves()
        base = np.asarray(order, dtype=np.intp)
        return base[gather]

    def best_neighbor(
        self, order: Sequence[int], bound: float
    ) -> tuple[tuple[int, ...] | None, float, int]:
        """The steepest feasible move from ``order``, if any beats ``bound``.

        Returns ``(best order or None, its cost, feasible-move count)``.
        Matches the scalar hill-climbing step bit for bit: same enumeration
        order, same costs, and ties broken towards the first move attaining
        the minimum (``argmin`` returns the first occurrence, the scalar loop
        only replaces on strict improvement).
        """
        if self.size < 2:
            return None, bound, 0
        candidates = self.neighborhood_orders(order)
        feasible = self.feasible_orders(candidates)
        evaluated = int(feasible.sum())
        if not evaluated:
            return None, bound, 0
        costs = self.score_orders(candidates)
        costs[~feasible] = np.inf
        winner = int(costs.argmin())
        best_cost = float(costs[winner])
        if not best_cost < bound:
            return None, bound, evaluated
        return tuple(int(index) for index in candidates[winner]), best_cost, evaluated

    # -- dynamic-programming layers ------------------------------------------

    def transition_terms(self, rates_before, lasts) -> "np.ndarray":
        """Settled-term matrix of a batch of ``(mask, last)`` DP states.

        Entry ``[s, next]`` is the term the state's last service settles to
        when ``next`` is appended: ``rate * c_last + (rate * sigma_last) *
        t[last, next]`` — the exact expression shape of the scalar DP
        transition loop, for every successor of every state at once.
        """
        rates_before = np.asarray(rates_before, dtype=np.float64)
        lasts = np.asarray(lasts, dtype=np.intp)
        _count_batch(len(lasts))
        if self.fast_math:
            return rates_before[:, None] * (
                self.costs[lasts][:, None] + self.selectivities[lasts][:, None] * self.rows[lasts]
            )
        return (rates_before * self.costs[lasts])[:, None] + (
            rates_before * self.selectivities[lasts]
        )[:, None] * self.rows[lasts]

    def completion_terms(self, rates_before) -> "np.ndarray":
        """Final-stage terms ``rate * c_i + (rate * sigma_i) * sink_i`` per service."""
        rates_before = np.asarray(rates_before, dtype=np.float64)
        _count_batch(len(rates_before))
        if self.fast_math:
            return rates_before * (self.costs + self.selectivities * self.sink)
        return rates_before * self.costs + (rates_before * self.selectivities) * self.sink

    def __repr__(self) -> str:
        return f"BatchEvaluator(size={self.size}, fast_math={self.fast_math})"

"""Beam search: a bounded-width variant of the branch-and-bound search.

For very large service sets an exact search may not be affordable even with
the paper's pruning rules (the problem is NP-hard).  Beam search keeps only the
``width`` most promising prefixes per level — promise being the same two guide
measures the exact algorithm uses (``ε`` as the incurred cost, ``ε̄`` as the
residual risk) — so its cost is polynomial (``O(width · n²)`` prefix
extensions) at the price of losing the optimality guarantee.  With
``width >= n!`` it degenerates to exhaustive search; with ``width = 1`` it is
the greedy min-term heuristic.

It serves two roles in the reproduction:

* a scalable heuristic for instances beyond exact reach, and
* a quality baseline whose gap to the exact optimum quantifies what the
  guarantee of the paper's algorithm is worth.

Prefixes are the kernel's O(1)-extend
:class:`~repro.core.evaluation.PrefixState`; both score components come
straight from the kernel (``ε`` is maintained incrementally and is
bit-identical to the from-scratch cost model, ``ε̄`` is
:meth:`~repro.core.evaluation.PlanEvaluator.residual_value` over the
pre-extracted arrays), and candidate generation order and the stable sort
are unchanged, so ties keep breaking the same way.

On the vector kernel (:mod:`repro.core.vector`) each level scores *every*
feasible child of the whole front in one batch call, sorts by ``ε`` with a
stable argsort, and computes the ``ε̄`` tie-break lazily — only for groups of
candidates with exactly equal ``ε`` that reach the beam cut.  Because the
scalar sort key is ``(ε, ε̄)`` with a stable sort over generation order, and
the lazy pass reorders precisely those tie groups by ``ε̄`` (stable again),
the surviving beam — content *and* order — is identical to the scalar path's,
so the two kernels return the same plan and the same cost, bit for bit.
"""

from __future__ import annotations

from repro.core.evaluation import PrefixState
from repro.core.problem import OrderingProblem
from repro.core.result import OptimizationResult, SearchStatistics
from repro.core.vector import batch_evaluator, resolve_kernel
from repro.exceptions import OptimizationError
from repro.utils.timing import Stopwatch

__all__ = ["BeamSearchOptimizer", "beam_search"]


class BeamSearchOptimizer:
    """Level-by-level search keeping the ``width`` best prefixes per level."""

    name = "beam_search"

    def __init__(
        self,
        width: int = 16,
        use_residual_bound: bool = True,
        kernel: str | None = None,
        fast_math: bool = False,
    ) -> None:
        if width < 1:
            raise ValueError("width must be at least 1")
        self.width = width
        self.use_residual_bound = use_residual_bound
        self.kernel = kernel
        self.fast_math = fast_math

    def optimize(self, problem: OrderingProblem) -> OptimizationResult:
        """Construct a plan by beam search; optimal only if the beam never overflowed."""
        stopwatch = Stopwatch().start()
        stats = SearchStatistics()
        evaluator = problem.evaluator()
        kernel = resolve_kernel(self.kernel, problem.size)
        beam: list[PrefixState] = [evaluator.root()]
        overflowed = False

        if kernel == "vector":
            batch = batch_evaluator(evaluator, self.fast_math)
            for level in range(problem.size):
                beam, level_overflowed = self._vector_level(
                    batch, beam, final=level + 1 == problem.size, stats=stats
                )
                overflowed = overflowed or level_overflowed
        else:
            for _ in range(problem.size):
                candidates: list[PrefixState] = []
                for state in beam:
                    for successor in state.allowed_extensions():
                        candidates.append(state.extend(successor))
                        stats.nodes_expanded += 1
                if not candidates:
                    raise OptimizationError(
                        "no service can legally be appended; "
                        "precedence constraints are unsatisfiable"
                    )
                candidates.sort(key=self._score)
                if len(candidates) > self.width:
                    overflowed = True
                    candidates = candidates[: self.width]
                beam = candidates

        best = min(beam, key=lambda state: state.epsilon)
        stats.plans_evaluated = len(beam)
        stats.extra["beam_width"] = self.width
        stats.extra["beam_overflowed"] = overflowed
        stats.extra["kernel"] = kernel
        stats.elapsed_seconds = stopwatch.stop()
        plan = problem.plan(best.order)
        return OptimizationResult(
            plan=plan,
            cost=plan.cost,
            algorithm=self.name,
            # Without overflow every prefix was kept, so the search was exhaustive.
            optimal=not overflowed,
            statistics=stats,
        )

    def _vector_level(
        self, batch, beam: list[PrefixState], final: bool, stats: SearchStatistics
    ) -> tuple[list[PrefixState], bool]:
        """One beam level on the vector kernel: batch-score, sort, survive."""
        import numpy as np  # repro-lint: disable=RL004 — vector-only path; resolve_kernel proved numpy importable

        parents, extensions, epsilons = batch.score_front(beam, final)
        total = len(parents)
        stats.nodes_expanded += total
        if not total:
            raise OptimizationError(
                "no service can legally be appended; precedence constraints are unsatisfiable"
            )
        # Stable sort by ε keeps generation order inside equal-ε groups —
        # exactly where the scalar sort consults ε̄ — so only those groups
        # (and only when they reach the cut) need the O(n²) residual.
        ranking = list(np.argsort(epsilons, kind="stable"))
        if self.use_residual_bound and not final and total > 1:
            self._residual_tiebreak(batch, beam, parents, extensions, epsilons, ranking)
        survivors = ranking[: self.width]
        next_beam = [
            beam[parents[position]].extend(int(extensions[position])) for position in survivors
        ]
        return next_beam, total > self.width

    def _residual_tiebreak(
        self, batch, beam, parents, extensions, epsilons, ranking: list
    ) -> None:
        """Reorder equal-``ε`` groups that reach the beam cut by ``ε̄``, in place.

        Residuals are computed from the parent's O(1) fields without
        materializing the child state; groups entirely past the cut can never
        enter the beam, so their internal order is irrelevant and skipped.
        """
        evaluator = batch.evaluator
        selectivities = evaluator.selectivities

        def residual(position: int) -> float:
            parent = beam[parents[position]]
            extension = int(extensions[position])
            return evaluator.residual_parts(
                parent.placed | (1 << extension),
                extension,
                parent.output_rate,
                parent.output_rate * selectivities[extension],
            )[0]

        total = len(ranking)
        start = 0
        while start < min(self.width, total):
            value = epsilons[ranking[start]]
            stop = start + 1
            while stop < total and epsilons[ranking[stop]] == value:
                stop += 1
            if stop - start > 1:
                # Python's sort is stable, so equal-ε̄ members keep generation
                # order — the same tie-break the scalar (ε, ε̄) sort applies.
                ranking[start:stop] = sorted(ranking[start:stop], key=residual)
            start = stop

    def _score(self, state: PrefixState) -> tuple[float, float]:
        """Order prefixes by incurred cost, breaking ties by residual risk."""
        if self.use_residual_bound and not state.is_complete:
            return (state.epsilon, state.evaluator.residual_value(state))
        return (state.epsilon, 0.0)


def beam_search(problem: OrderingProblem, width: int = 16) -> OptimizationResult:
    """Convenience wrapper around :class:`BeamSearchOptimizer`."""
    return BeamSearchOptimizer(width=width).optimize(problem)

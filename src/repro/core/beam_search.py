"""Beam search: a bounded-width variant of the branch-and-bound search.

For very large service sets an exact search may not be affordable even with
the paper's pruning rules (the problem is NP-hard).  Beam search keeps only the
``width`` most promising prefixes per level — promise being the same two guide
measures the exact algorithm uses (``ε`` as the incurred cost, ``ε̄`` as the
residual risk) — so its cost is polynomial (``O(width · n²)`` prefix
extensions) at the price of losing the optimality guarantee.  With
``width >= n!`` it degenerates to exhaustive search; with ``width = 1`` it is
the greedy min-term heuristic.

It serves two roles in the reproduction:

* a scalable heuristic for instances beyond exact reach, and
* a quality baseline whose gap to the exact optimum quantifies what the
  guarantee of the paper's algorithm is worth.

Prefixes are the kernel's O(1)-extend
:class:`~repro.core.evaluation.PrefixState`; both score components come
straight from the kernel (``ε`` is maintained incrementally and is
bit-identical to the from-scratch cost model, ``ε̄`` is
:meth:`~repro.core.evaluation.PlanEvaluator.residual_value` over the
pre-extracted arrays), and candidate generation order and the stable sort
are unchanged, so ties keep breaking the same way.
"""

from __future__ import annotations

from repro.core.evaluation import PrefixState
from repro.core.problem import OrderingProblem
from repro.core.result import OptimizationResult, SearchStatistics
from repro.exceptions import OptimizationError
from repro.utils.timing import Stopwatch

__all__ = ["BeamSearchOptimizer", "beam_search"]


class BeamSearchOptimizer:
    """Level-by-level search keeping the ``width`` best prefixes per level."""

    name = "beam_search"

    def __init__(self, width: int = 16, use_residual_bound: bool = True) -> None:
        if width < 1:
            raise ValueError("width must be at least 1")
        self.width = width
        self.use_residual_bound = use_residual_bound

    def optimize(self, problem: OrderingProblem) -> OptimizationResult:
        """Construct a plan by beam search; optimal only if the beam never overflowed."""
        stopwatch = Stopwatch().start()
        stats = SearchStatistics()
        evaluator = problem.evaluator()
        beam: list[PrefixState] = [evaluator.root()]
        overflowed = False

        for _ in range(problem.size):
            candidates: list[PrefixState] = []
            for state in beam:
                for successor in state.allowed_extensions():
                    candidates.append(state.extend(successor))
                    stats.nodes_expanded += 1
            if not candidates:
                raise OptimizationError(
                    "no service can legally be appended; precedence constraints are unsatisfiable"
                )
            candidates.sort(key=self._score)
            if len(candidates) > self.width:
                overflowed = True
                candidates = candidates[: self.width]
            beam = candidates

        best = min(beam, key=lambda state: state.epsilon)
        stats.plans_evaluated = len(beam)
        stats.extra["beam_width"] = self.width
        stats.extra["beam_overflowed"] = overflowed
        stats.elapsed_seconds = stopwatch.stop()
        plan = problem.plan(best.order)
        return OptimizationResult(
            plan=plan,
            cost=plan.cost,
            algorithm=self.name,
            # Without overflow every prefix was kept, so the search was exhaustive.
            optimal=not overflowed,
            statistics=stats,
        )

    def _score(self, state: PrefixState) -> tuple[float, float]:
        """Order prefixes by incurred cost, breaking ties by residual risk."""
        if self.use_residual_bound and not state.is_complete:
            return (state.epsilon, state.evaluator.residual_value(state))
        return (state.epsilon, 0.0)


def beam_search(problem: OrderingProblem, width: int = 16) -> OptimizationResult:
    """Convenience wrapper around :class:`BeamSearchOptimizer`."""
    return BeamSearchOptimizer(width=width).optimize(problem)

"""Plan representations: complete linear plans and partial plans.

A *plan* is a linear ordering of all services; its quality is the bottleneck
cost metric of Eq. 1.  A *partial plan* is a validated prefix of a plan; it
carries the incremental quantities the paper's two guide measures (``ε`` and
``ε̄``) are computed from:

* the prefix selectivity products,
* the bottleneck cost ``ε`` of the prefix (Lemma 1's lower bound), and
* the position of the prefix's bottleneck service (needed for Lemma 3).

``PartialPlan`` is the *public, validated* prefix API (it checks indices and
duplicates, and exposes the full prefix-product tuple).  The optimizers' hot
loops use the unvalidated, O(1)-extend
:class:`repro.core.evaluation.PrefixState` instead; ``PartialPlan.extend``
delegates its term arithmetic to the same kernel expression shapes, so a
complete ``PartialPlan``'s ``epsilon`` is bit-identical to
:func:`repro.core.cost_model.bottleneck_cost` of its order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.exceptions import InvalidPlanError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cost_model import StageCost
    from repro.core.problem import OrderingProblem

__all__ = ["Plan", "PartialPlan"]


@dataclass(frozen=True)
class Plan:
    """A complete linear ordering of the services of a problem.

    Instances are normally created through
    :meth:`repro.core.problem.OrderingProblem.plan`, which also validates the
    ordering (permutation + precedence constraints).
    """

    problem: "OrderingProblem"
    order: tuple[int, ...]

    @property
    def size(self) -> int:
        """Number of services in the plan."""
        return len(self.order)

    @property
    def cost(self) -> float:
        """The bottleneck cost metric (Eq. 1) of the plan."""
        return self.problem.cost(self.order)

    @property
    def service_names(self) -> tuple[str, ...]:
        """Names of the services in plan order."""
        return tuple(self.problem.service(index).name for index in self.order)

    def stage_costs(self) -> list["StageCost"]:
        """Per-stage cost breakdown."""
        return self.problem.stage_costs(self.order)

    def bottleneck_stage(self) -> "StageCost":
        """The stage attaining the bottleneck cost."""
        return self.problem.bottleneck_stage(self.order)

    def position_of(self, service_index: int) -> int:
        """Position of ``service_index`` within the plan."""
        try:
            return self.order.index(service_index)
        except ValueError:
            raise InvalidPlanError(f"service {service_index} is not part of the plan") from None

    def describe(self) -> str:
        """Multi-line human readable description used by examples and reports."""
        lines = [f"Plan (bottleneck cost {self.cost:.6g}):"]
        bottleneck = self.bottleneck_stage()
        for stage in self.stage_costs():
            marker = "  <-- bottleneck" if stage.position == bottleneck.position else ""
            name = self.problem.service(stage.service_index).name
            lines.append(
                f"  {stage.position}: {name:<16} rate={stage.input_rate:.4g} "
                f"proc={stage.processing:.4g} xfer={stage.transfer:.4g} "
                f"term={stage.total:.4g}{marker}"
            )
        return "\n".join(lines)

    def __iter__(self) -> Iterator[int]:
        return iter(self.order)

    def __len__(self) -> int:
        return len(self.order)

    def __str__(self) -> str:
        return " -> ".join(self.service_names)


@dataclass(frozen=True)
class PartialPlan:
    """A prefix of a plan together with the incremental state of the search.

    Attributes
    ----------
    order:
        The service indices of the prefix, in execution order.
    placed:
        The same indices as a frozenset, for O(1) membership tests.
    prefix_products:
        ``prefix_products[i]`` is the average number of tuples reaching
        position ``i`` per source tuple (``prod_{k<i} σ``).
    output_rate:
        Average number of tuples leaving the prefix per source tuple
        (``prod_{k in order} σ``).
    epsilon:
        The bottleneck cost ``ε`` of the prefix.  Terms of all positions except
        the last are *settled* (they include the transfer to their successor);
        the last position contributes only its processing part because its
        successor is not yet known.  This makes ``ε`` monotonically
        non-decreasing under extension (Lemma 1).
    bottleneck_position:
        Position (0-based) of the prefix's current bottleneck service.
    settled_epsilon / settled_position:
        The maximum over settled terms only; used internally to extend the plan
        incrementally.
    """

    problem: "OrderingProblem"
    order: tuple[int, ...]
    placed: frozenset[int]
    prefix_products: tuple[float, ...]
    output_rate: float
    epsilon: float
    bottleneck_position: int
    settled_epsilon: float = field(default=float("-inf"))
    settled_position: int = field(default=-1)

    # -- constructors ------------------------------------------------------

    @classmethod
    def empty(cls, problem: "OrderingProblem") -> "PartialPlan":
        """The empty prefix of ``problem``."""
        return cls(
            problem=problem,
            order=(),
            placed=frozenset(),
            prefix_products=(),
            output_rate=1.0,
            epsilon=0.0,
            bottleneck_position=-1,
            settled_epsilon=float("-inf"),
            settled_position=-1,
        )

    @classmethod
    def from_order(cls, problem: "OrderingProblem", order: Sequence[int]) -> "PartialPlan":
        """Build a partial plan for an existing prefix (validating it)."""
        partial = cls.empty(problem)
        for index in order:
            partial = partial.extend(index)
        return partial

    # -- queries -----------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of services placed so far."""
        return len(self.order)

    @property
    def is_empty(self) -> bool:
        """Whether no service has been placed yet."""
        return not self.order

    @property
    def is_complete(self) -> bool:
        """Whether every service of the problem has been placed."""
        return len(self.order) == self.problem.size

    @property
    def last(self) -> int | None:
        """Index of the most recently placed service, or ``None`` if empty."""
        return self.order[-1] if self.order else None

    def remaining(self) -> list[int]:
        """Indices of the services not yet placed, in index order."""
        return [index for index in range(self.problem.size) if index not in self.placed]

    def allowed_extensions(self) -> list[int]:
        """Remaining services that may legally come next (honouring precedence)."""
        remaining = self.remaining()
        precedence = self.problem.precedence
        if precedence is None:
            return remaining
        return precedence.allowed_extensions(self.placed, remaining)

    # -- extension ---------------------------------------------------------

    def extend(self, service_index: int) -> "PartialPlan":
        """Return the partial plan obtained by appending ``service_index``.

        The bottleneck cost ``ε`` is updated incrementally: appending a service
        *settles* the term of the previously last service (its outgoing
        transfer cost is now known) and adds the processing-only term of the
        new service.
        """
        if service_index in self.placed:
            raise InvalidPlanError(f"service {service_index} is already part of the prefix")
        if not 0 <= service_index < self.problem.size:
            raise InvalidPlanError(
                f"service index {service_index} out of range [0, {self.problem.size})"
            )
        problem = self.problem
        evaluator = problem.evaluator()
        costs = evaluator.costs
        selectivities = evaluator.selectivities

        # Same expression shapes as the evaluation kernel (and therefore as
        # cost_model.stage_costs): rate*c + rate*sigma*t, left to right.
        settled_epsilon = self.settled_epsilon
        settled_position = self.settled_position
        if self.order:
            previous_last = self.order[-1]
            previous_rate = self.prefix_products[-1]
            settled_term = (
                previous_rate * costs[previous_last]
                + previous_rate
                * selectivities[previous_last]
                * evaluator.rows[previous_last][service_index]
            )
            if settled_term > settled_epsilon:
                settled_epsilon = settled_term
                settled_position = len(self.order) - 1

        new_rate = self.output_rate
        if self.is_complete_after_append():
            partial_term = (
                new_rate * costs[service_index]
                + new_rate * selectivities[service_index] * evaluator.sink[service_index]
            )
        else:
            partial_term = new_rate * costs[service_index]

        if settled_epsilon >= partial_term:
            epsilon = settled_epsilon
            bottleneck_position = settled_position
        else:
            epsilon = partial_term
            bottleneck_position = len(self.order)

        return PartialPlan(
            problem=problem,
            order=self.order + (service_index,),
            placed=self.placed | {service_index},
            prefix_products=self.prefix_products + (new_rate,),
            output_rate=new_rate * selectivities[service_index],
            epsilon=epsilon,
            bottleneck_position=bottleneck_position,
            settled_epsilon=settled_epsilon,
            settled_position=settled_position,
        )

    def is_complete_after_append(self) -> bool:
        """Whether appending one more service would complete the plan."""
        return len(self.order) + 1 == self.problem.size

    def extend_all(self, order: Sequence[int]) -> "PartialPlan":
        """Append several services in the given order."""
        partial = self
        for index in order:
            partial = partial.extend(index)
        return partial

    def to_plan(self) -> Plan:
        """Convert a complete partial plan into a :class:`Plan`."""
        if not self.is_complete:
            raise InvalidPlanError(
                f"cannot convert an incomplete prefix of size {self.size} into a plan"
            )
        return self.problem.plan(self.order)

    def __str__(self) -> str:
        names = [self.problem.service(index).name for index in self.order]
        return " -> ".join(names) if names else "(empty)"

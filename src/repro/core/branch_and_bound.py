"""The branch-and-bound optimizer of the paper.

The algorithm explores prefixes (partial plans) of the ``n!`` possible linear
orderings depth-first and prunes the search space with the three properties
stated in the paper:

* **Lemma 1 (monotone lower bound)** — the bottleneck cost ``ε`` of a prefix
  never decreases when the prefix grows, so a prefix whose ``ε`` already
  reaches the best complete plan found so far (the *incumbent*, ``ρ``) cannot
  lead to an improvement and is discarded.
* **Lemma 2 (closure)** — when ``ε >= ε̄`` (the maximum cost any not-yet-placed
  service can still incur), the ordering of the remaining services is
  irrelevant: every completion costs exactly ``ε``.  The subtree is replaced by
  a single (arbitrary, constraint-respecting) completion.
* **Lemma 3 (bottleneck-prefix pruning)** — after such a closure, every plan
  whose prefix equals the closed prefix *up to and including its bottleneck
  service* can also be discarded, because successors are appended
  cheapest-transfer-first: any alternative successor of the bottleneck service
  would only increase the bottleneck term.  The search therefore backtracks
  directly to the position of the bottleneck service instead of to the last
  appended service.

Every rule can be switched off individually (experiment E8 ablates them); with
all rules enabled the optimizer is still guaranteed to return an optimal plan,
which the test-suite checks against exhaustive search.

The search runs on the evaluation kernel (:mod:`repro.core.evaluation`):
prefixes are O(1)-extend :class:`~repro.core.evaluation.PrefixState` objects,
which carry exactly the Lemma-1 state (``ε`` and the bottleneck position)
the former ``PartialPlan``-based implementation recomputed through tuple
copies, and ``ε̄`` comes from
:meth:`~repro.core.evaluation.PlanEvaluator.residual_value` over the
pre-extracted arrays.  The kernel's ``ε`` matches the from-scratch cost
model (:func:`repro.core.cost_model.bottleneck_cost`) bit for bit, so the
pruning decisions are exactly those the paper's measures prescribe and the
returned plan is a true optimum of the reported (oracle) cost.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.evaluation import PrefixState
from repro.core.problem import OrderingProblem
from repro.core.result import OptimizationResult, SearchStatistics
from repro.core.vector import batch_evaluator, resolve_kernel
from repro.exceptions import OptimizationError, SearchLimitExceededError
from repro.utils.timing import Stopwatch

__all__ = ["SuccessorOrder", "BranchAndBoundOptions", "BranchAndBoundOptimizer", "branch_and_bound"]


class SuccessorOrder:
    """Successor-ordering policies for expanding a partial plan."""

    CHEAPEST_TRANSFER = "cheapest_transfer"
    """Append the service with the smallest transfer cost from the current last
    service first (the paper's policy; required by Lemma 3)."""

    CHEAPEST_TERM = "cheapest_term"
    """Append the service that leads to the smallest new ``ε`` first."""

    INDEX = "index"
    """Append services in index order (no heuristic; ablation baseline)."""

    ALL = (CHEAPEST_TRANSFER, CHEAPEST_TERM, INDEX)


@dataclass(frozen=True)
class BranchAndBoundOptions:
    """Configuration of :class:`BranchAndBoundOptimizer`.

    The defaults reproduce the full algorithm of the paper.
    """

    use_bound_pruning: bool = True
    """Apply the Lemma-1 lower-bound test ``ε >= ρ``."""

    use_lemma2: bool = True
    """Apply the Lemma-2 closure test ``ε >= ε̄``."""

    use_lemma3: bool = True
    """Apply the Lemma-3 bottleneck-prefix pruning after a closure."""

    successor_order: str = SuccessorOrder.CHEAPEST_TRANSFER
    """Order in which successors of a prefix are explored."""

    seed_incumbent: bool = True
    """Start with a greedy plan as the initial incumbent ``ρ``."""

    node_limit: int | None = None
    """Abort (with :class:`SearchLimitExceededError`) after this many expanded prefixes."""

    time_limit: float | None = None
    """Abort (with :class:`SearchLimitExceededError`) after this many seconds."""

    kernel: str | None = None
    """Evaluation kernel for successor scoring: ``"scalar"``, ``"vector"`` or
    ``"auto"`` (``None`` consults the process default).  On the vector kernel
    the two scalar scoring loops — cheapest-``ε``-term successor ordering and
    the best-pair ordering of first services — run as single
    :meth:`~repro.core.vector.BatchEvaluator.score_front` calls.  Exploration
    order, pruning decisions, statistics and the returned plan are identical
    bit for bit (the batch ``ε`` matches the scalar one exactly)."""

    def __post_init__(self) -> None:
        if self.successor_order not in SuccessorOrder.ALL:
            raise ValueError(
                f"unknown successor order {self.successor_order!r}; expected one of {SuccessorOrder.ALL}"
            )
        if self.use_lemma3 and not self.use_lemma2:
            raise ValueError("Lemma 3 pruning requires Lemma 2 closures to be enabled")
        if self.use_lemma3 and self.successor_order != SuccessorOrder.CHEAPEST_TRANSFER:
            raise ValueError(
                "Lemma 3 pruning is only sound with cheapest-transfer successor ordering"
            )
        if self.node_limit is not None and self.node_limit <= 0:
            raise ValueError("node_limit must be positive when set")
        if self.time_limit is not None and self.time_limit <= 0:
            raise ValueError("time_limit must be positive when set")


class BranchAndBoundOptimizer:
    """Finds the optimal linear ordering under the bottleneck cost metric."""

    name = "branch_and_bound"

    def __init__(self, options: BranchAndBoundOptions | None = None) -> None:
        self.options = options if options is not None else BranchAndBoundOptions()

    # -- public API ----------------------------------------------------------

    def optimize(self, problem: OrderingProblem) -> OptimizationResult:
        """Return an optimal plan for ``problem`` together with search statistics."""
        stopwatch = Stopwatch().start()
        stats = SearchStatistics()
        self._best_order: tuple[int, ...] | None = None
        self._best_cost = float("inf")
        self._stats = stats
        self._stopwatch = stopwatch
        self._problem = problem
        self._evaluator = problem.evaluator()
        kernel = resolve_kernel(self.options.kernel, problem.size)
        self._batch = batch_evaluator(self._evaluator) if kernel == "vector" else None
        stats.extra["kernel"] = kernel

        if self.options.seed_incumbent:
            self._seed_incumbent(problem)

        try:
            self._explore(self._evaluator.root())
        finally:
            stats.elapsed_seconds = stopwatch.stop()

        if self._best_order is None:
            raise OptimizationError(
                "branch-and-bound finished without finding any feasible plan "
                "(this indicates inconsistent precedence constraints)"
            )
        plan = problem.plan(self._best_order)
        return OptimizationResult(
            plan=plan,
            cost=plan.cost,
            algorithm=self.name,
            optimal=True,
            statistics=stats,
        )

    # -- incumbent seeding ----------------------------------------------------

    def _seed_incumbent(self, problem: OrderingProblem) -> None:
        """Initialise ``ρ`` with the paper's greedy expansion heuristic."""
        from repro.core.greedy import GreedyOptimizer, GreedyStrategy

        try:
            seed = GreedyOptimizer(GreedyStrategy.NEAREST_SUCCESSOR).optimize(problem)
        except OptimizationError:
            return
        self._best_order = seed.plan.order
        self._best_cost = seed.cost
        self._stats.extra["seed_cost"] = seed.cost

    # -- search ---------------------------------------------------------------

    def _explore(self, partial: PrefixState) -> int | None:
        """Depth-first exploration of the completions of ``partial``.

        Returns ``None`` in the normal case, or the *length of a pruned prefix*
        when a Lemma-3 closure occurred: every ancestor whose own prefix is at
        least that long must abandon its remaining successors as well.
        """
        options = self.options
        stats = self._stats
        stats.nodes_expanded += 1
        self._check_limits()

        if partial.is_complete:
            self._record_plan(partial.order, partial.epsilon)
            return None

        if (
            options.use_bound_pruning
            and not partial.is_empty
            and partial.epsilon >= self._best_cost
        ):
            stats.pruned_by_bound += 1
            return None

        if options.use_lemma2 and not partial.is_empty:
            residual = self._evaluator.residual_value(partial)
            if partial.epsilon >= residual:
                stats.lemma2_closures += 1
                completed = self._complete_cheapest(partial)
                self._record_plan(completed.order, completed.epsilon)
                if options.use_lemma3:
                    stats.lemma3_prunes += 1
                    return partial.bottleneck_position + 1
                return None

        for successor in self._ordered_successors(partial):
            child = partial.extend(successor)
            signal = self._explore(child)
            if signal is not None:
                if partial.length >= signal:
                    # This prefix is itself inside the pruned region: propagate.
                    return signal
                # The pruned prefix was the child just explored; its remaining
                # siblings are *not* pruned, so continue with the next one.
        return None

    def _record_plan(self, order: tuple[int, ...], cost: float) -> None:
        """Register a complete plan as a candidate incumbent."""
        self._stats.plans_evaluated += 1
        if cost < self._best_cost:
            self._best_cost = cost
            self._best_order = order
            self._stats.incumbent_updates += 1

    def _complete_cheapest(self, partial: PrefixState) -> PrefixState:
        """Complete ``partial`` by repeatedly appending the cheapest allowed successor.

        Used after a Lemma-2 closure, where any constraint-respecting
        completion has the same bottleneck cost.
        """
        evaluator = self._evaluator
        current = partial
        while not current.is_complete:
            candidates = current.allowed_extensions()
            if not candidates:
                raise OptimizationError(
                    "no service can legally be appended; precedence constraints are unsatisfiable"
                )
            if current.is_empty:
                successor = min(candidates, key=lambda index: (evaluator.costs[index], index))
            else:
                row = evaluator.rows[current.last]
                successor = min(candidates, key=lambda index: (row[index], index))
            current = current.extend(successor)
        return current

    def _ordered_successors(self, partial: PrefixState) -> list[int]:
        """Successors of ``partial`` in the configured exploration order."""
        candidates = partial.allowed_extensions()
        order = self.options.successor_order
        if order == SuccessorOrder.INDEX:
            return sorted(candidates)
        if order == SuccessorOrder.CHEAPEST_TERM:
            if self._batch is not None and len(candidates) > 1:
                return self._vector_cheapest_term(partial)
            return sorted(candidates, key=lambda index: (partial.extend(index).epsilon, index))
        # Cheapest-transfer policy (the paper's): for the empty prefix, order
        # first services by the cost of their best pair, which realises the
        # "append the less expensive pair of WSs" start of the algorithm.
        if partial.is_empty:
            if self._batch is not None and len(candidates) > 1:
                return self._vector_best_pairs(candidates)
            return sorted(candidates, key=lambda index: (self._best_pair_cost(index), index))
        row = self._evaluator.rows[partial.last]
        return sorted(candidates, key=lambda index: (row[index], index))

    def _vector_cheapest_term(self, partial: PrefixState) -> list[int]:
        """Batch variant of the cheapest-``ε``-term ordering (bit-identical).

        One :meth:`~repro.core.vector.BatchEvaluator.score_front` call scores
        every feasible extension; extensions arrive index-ascending, so a
        stable argsort over the (exactly scalar-equal) epsilons reproduces the
        scalar ``(ε, index)`` sort key.
        """
        import numpy as np  # repro-lint: disable=RL004 — vector-only path; resolve_kernel proved numpy importable

        final = partial.length + 1 == self._problem.size
        _, extensions, epsilons = self._batch.score_front([partial], final)
        ranking = np.argsort(epsilons, kind="stable")
        return [int(extensions[position]) for position in ranking]

    def _vector_best_pairs(self, candidates: list[int]) -> list[int]:
        """Batch variant of the best-pair first-service ordering (bit-identical).

        Scores every feasible second service of every single-service prefix in
        one call and takes the per-parent minimum — the same ``min`` over the
        same exactly-equal epsilons the scalar :meth:`_best_pair_cost` loop
        computes.  A first service whose every successor is constrained out
        keeps its own ``ε`` as cost, mirroring the scalar fallback.
        """
        import numpy as np  # repro-lint: disable=RL004 — vector-only path; resolve_kernel proved numpy importable

        root = self._evaluator.root()
        starts = [root.extend(first) for first in candidates]
        parents, _, epsilons = self._batch.score_front(starts, self._problem.size == 2)
        pair_costs = np.fromiter(
            (start.epsilon for start in starts), dtype=np.float64, count=len(starts)
        )
        if len(parents):
            minima = np.full(len(starts), np.inf)
            np.minimum.at(minima, parents, epsilons)
            children = np.bincount(parents, minlength=len(starts))
            pair_costs = np.where(children > 0, minima, pair_costs)
        return [
            candidates[position]
            for position in sorted(
                range(len(candidates)),
                key=lambda position: (pair_costs[position], candidates[position]),
            )
        ]

    def _best_pair_cost(self, first: int) -> float:
        """Bottleneck cost of the best two-service prefix starting with ``first``."""
        start = self._evaluator.root().extend(first)
        candidates = start.allowed_extensions()
        if not candidates:
            return start.epsilon
        return min(start.extend(second).epsilon for second in candidates)

    def _check_limits(self) -> None:
        options = self.options
        if options.node_limit is not None and self._stats.nodes_expanded > options.node_limit:
            raise SearchLimitExceededError(
                f"node limit of {options.node_limit} prefixes exceeded"
            )
        if options.time_limit is not None and self._stopwatch.elapsed > options.time_limit:
            raise SearchLimitExceededError(f"time limit of {options.time_limit} s exceeded")


def branch_and_bound(
    problem: OrderingProblem, options: BranchAndBoundOptions | None = None, **overrides: object
) -> OptimizationResult:
    """Convenience wrapper: run the branch-and-bound optimizer on ``problem``.

    Keyword overrides are applied on top of ``options`` (or the defaults), e.g.
    ``branch_and_bound(problem, use_lemma3=False)``.
    """
    base = options if options is not None else BranchAndBoundOptions()
    if overrides:
        base = replace(base, **overrides)  # type: ignore[arg-type]
    return BranchAndBoundOptimizer(base).optimize(problem)

"""The centralized baseline of Srivastava et al. (VLDB 2006).

The paper contrasts its decentralized setting with the *centralized* one of
Srivastava, Munagala, Widom and Motwani, "Query Optimization over Web
Services" (VLDB 2006): when all services exchange data through an intermediary
(or every pair has the same communication cost), the bottleneck-optimal
ordering can be found in polynomial time.

This module implements that baseline as a *communication-oblivious* optimizer:

* For **selective services** (``σ <= 1``) ordering by non-decreasing processing
  cost ``c_i`` is optimal when communication is free (or folded into ``c_i``,
  which is how the centralized model accounts for it); the classical adjacent
  exchange argument proves it (see :func:`selective_exchange_argument_holds`,
  which the property tests exercise).  Under Eq. 1 with a *positive* uniform
  transfer cost the ordering is no longer guaranteed optimal, because the last
  stage of a plan pays no outgoing transfer — the baseline deliberately keeps
  the centralized behaviour and ignores that interaction.
* **Proliferative services** (``σ > 1``) never benefit from preceding a
  selective service under the bottleneck metric, so they are placed after all
  selective ones, ordered by non-increasing ``c_i / σ_i`` (the exchange
  criterion between two proliferative services).
* With precedence constraints the same keys are applied greedily over the
  currently allowed services.

When this plan is *executed decentrally* — on the true heterogeneous transfer
costs — it is generally sub-optimal; quantifying that gap is experiment E4.
"""

from __future__ import annotations

from repro.core.plan import PartialPlan
from repro.core.problem import OrderingProblem
from repro.core.result import OptimizationResult, SearchStatistics
from repro.exceptions import OptimizationError
from repro.utils.timing import Stopwatch

__all__ = ["SrivastavaOptimizer", "srivastava", "selective_exchange_argument_holds"]


def _ordering_key(problem: OrderingProblem, index: int) -> tuple[int, float, int]:
    """Sort key of the centralized algorithm.

    Selective services (group 0) come first in non-decreasing cost order;
    proliferative services (group 1) follow in non-increasing ``c/σ`` order.
    """
    sigma = problem.selectivities[index]
    cost = problem.costs[index]
    if sigma <= 1.0:
        return (0, cost, index)
    return (1, -cost / sigma, index)


class SrivastavaOptimizer:
    """Communication-oblivious bottleneck ordering (the centralized baseline)."""

    name = "srivastava_centralized"

    def optimize(self, problem: OrderingProblem) -> OptimizationResult:
        """Order services by the centralized criterion, ignoring transfer costs.

        The returned plan is *evaluated* on the problem's true (possibly
        heterogeneous) transfer costs, exactly like a centralized optimizer's
        plan would behave once deployed decentrally.
        """
        stopwatch = Stopwatch().start()
        stats = SearchStatistics()
        partial = PartialPlan.empty(problem)
        while not partial.is_complete:
            candidates = partial.allowed_extensions()
            if not candidates:
                raise OptimizationError(
                    "no service can legally be appended; precedence constraints are unsatisfiable"
                )
            successor = min(candidates, key=lambda index: _ordering_key(problem, index))
            partial = partial.extend(successor)
            stats.nodes_expanded += 1
        stats.plans_evaluated = 1
        stats.elapsed_seconds = stopwatch.stop()
        plan = problem.plan(partial.order)
        return OptimizationResult(
            plan=plan, cost=plan.cost, algorithm=self.name, optimal=False, statistics=stats
        )

    def is_provably_optimal_for(self, problem: OrderingProblem) -> bool:
        """Whether the centralized criterion is provably optimal for ``problem``.

        That is the case when communication is free (all transfer costs zero —
        the classical centralized setting, where any uniform per-call overhead
        is folded into ``c_i``), every service is selective, no sink transfer
        is modelled and there are no precedence constraints.
        """
        return (
            problem.transfer.max_cost() == 0.0
            and problem.all_selective
            and not problem.has_precedence_constraints
            and problem.sink_transfer is None
        )


def srivastava(problem: OrderingProblem) -> OptimizationResult:
    """Convenience wrapper around :class:`SrivastavaOptimizer`."""
    return SrivastavaOptimizer().optimize(problem)


def selective_exchange_argument_holds(
    cost_x: float, cost_y: float, sigma_x: float, sigma_y: float, rate: float = 1.0
) -> bool:
    """Check the adjacent-exchange inequality behind the centralized algorithm.

    For two adjacent selective services with ``c_x <= c_y`` placed at input
    rate ``rate`` under uniform communication, running ``x`` first can never
    increase the bottleneck of the pair:

    ``max(rate*c_x, rate*σ_x*c_y) <= max(rate*c_y, rate*σ_y*c_x)``

    The function evaluates both sides and returns whether the inequality holds;
    the hypothesis test-suite uses it to validate the theory on random inputs.
    """
    if cost_x > cost_y:
        cost_x, cost_y = cost_y, cost_x
        sigma_x, sigma_y = sigma_y, sigma_x
    left = max(rate * cost_x, rate * sigma_x * cost_y)
    right = max(rate * cost_y, rate * sigma_y * cost_x)
    return left <= right + 1e-12 * max(1.0, abs(right))

"""A single entry point over every optimizer in the library.

``optimize(problem, algorithm="branch_and_bound")`` hides the individual
optimizer classes behind one function, which the examples, the query planner
and the experiment harness use.  The registry also powers the comparison
helper :func:`compare`, which runs several algorithms on the same problem and
returns their results side by side (the core of experiment E4).
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.core.beam_search import BeamSearchOptimizer
from repro.core.branch_and_bound import BranchAndBoundOptimizer, BranchAndBoundOptions
from repro.core.dynamic_programming import DynamicProgrammingOptimizer
from repro.core.exhaustive import ExhaustiveOptimizer
from repro.core.greedy import GreedyOptimizer, GreedyStrategy
from repro.core.local_search import (
    HillClimbingOptimizer,
    SimulatedAnnealingOptimizer,
    SimulatedAnnealingOptions,
)
from repro.core.problem import OrderingProblem
from repro.core.result import OptimizationResult
from repro.core.srivastava import SrivastavaOptimizer
from repro.exceptions import OptimizationError

__all__ = ["ALGORITHMS", "optimize", "compare", "available_algorithms"]


def _run_branch_and_bound(problem: OrderingProblem, **options: object) -> OptimizationResult:
    configured = BranchAndBoundOptions(**options) if options else BranchAndBoundOptions()
    return BranchAndBoundOptimizer(configured).optimize(problem)


def _run_exhaustive(problem: OrderingProblem, **options: object) -> OptimizationResult:
    return ExhaustiveOptimizer(**options).optimize(problem)


def _run_dynamic_programming(problem: OrderingProblem, **options: object) -> OptimizationResult:
    return DynamicProgrammingOptimizer(**options).optimize(problem)


def _run_greedy(strategy: str) -> Callable[..., OptimizationResult]:
    def runner(problem: OrderingProblem, **options: object) -> OptimizationResult:
        return GreedyOptimizer(strategy, **options).optimize(problem)

    return runner


def _run_beam_search(problem: OrderingProblem, **options: object) -> OptimizationResult:
    return BeamSearchOptimizer(**options).optimize(problem)


def _run_hill_climbing(problem: OrderingProblem, **options: object) -> OptimizationResult:
    return HillClimbingOptimizer(**options).optimize(problem)


def _run_simulated_annealing(problem: OrderingProblem, **options: object) -> OptimizationResult:
    configured = SimulatedAnnealingOptions(**options) if options else SimulatedAnnealingOptions()
    return SimulatedAnnealingOptimizer(configured).optimize(problem)


def _run_srivastava(problem: OrderingProblem, **options: object) -> OptimizationResult:
    if options:
        raise OptimizationError(f"the centralized baseline takes no options, got {options!r}")
    return SrivastavaOptimizer().optimize(problem)


ALGORITHMS: Mapping[str, Callable[..., OptimizationResult]] = {
    "branch_and_bound": _run_branch_and_bound,
    "exhaustive": _run_exhaustive,
    "dynamic_programming": _run_dynamic_programming,
    "greedy_nearest_successor": _run_greedy(GreedyStrategy.NEAREST_SUCCESSOR),
    "greedy_cheapest_cost": _run_greedy(GreedyStrategy.CHEAPEST_COST),
    "greedy_most_selective": _run_greedy(GreedyStrategy.MOST_SELECTIVE),
    "greedy_min_term": _run_greedy(GreedyStrategy.MIN_TERM),
    "random": _run_greedy(GreedyStrategy.RANDOM),
    "beam_search": _run_beam_search,
    "hill_climbing": _run_hill_climbing,
    "simulated_annealing": _run_simulated_annealing,
    "srivastava_centralized": _run_srivastava,
}
"""Registry mapping algorithm names to runner callables."""


def available_algorithms() -> list[str]:
    """Names accepted by :func:`optimize`, in a stable order."""
    return list(ALGORITHMS)


def optimize(
    problem: OrderingProblem, algorithm: str = "branch_and_bound", **options: object
) -> OptimizationResult:
    """Optimize ``problem`` with the named algorithm.

    Parameters
    ----------
    problem:
        The ordering problem to solve.
    algorithm:
        One of :func:`available_algorithms`; defaults to the paper's
        branch-and-bound optimizer.
    options:
        Forwarded to the selected optimizer (e.g. ``use_lemma3=False`` for
        branch-and-bound, ``seed=3`` for the randomized heuristics).
    """
    try:
        runner = ALGORITHMS[algorithm]
    except KeyError:
        raise OptimizationError(
            f"unknown algorithm {algorithm!r}; available: {', '.join(ALGORITHMS)}"
        ) from None
    return runner(problem, **options)


def compare(
    problem: OrderingProblem,
    algorithms: list[str] | None = None,
    **shared_options: object,
) -> dict[str, OptimizationResult | OptimizationError]:
    """Run several algorithms on the same problem and collect their results.

    ``shared_options`` are passed to every algorithm that accepts them;
    algorithms rejecting an option (or failing outright) are reported as
    :class:`~repro.exceptions.OptimizationError` values in the mapping rather
    than aborting the whole comparison, so one bad option never hides the
    results of the algorithms that did run.
    """
    selected = algorithms if algorithms is not None else list(ALGORITHMS)
    results: dict[str, OptimizationResult | OptimizationError] = {}
    for name in selected:
        try:
            results[name] = optimize(problem, algorithm=name, **shared_options)
        except OptimizationError as error:
            results[name] = error
        except TypeError as error:
            results[name] = OptimizationError(f"{name} rejected the options: {error}")
    return results

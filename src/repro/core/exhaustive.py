"""Exhaustive enumeration of all feasible linear orderings.

The brute-force optimizer is the ground truth against which the
branch-and-bound algorithm is validated (experiment E1 and the property-based
tests).  It is intentionally guarded by a size limit: enumerating ``n!`` plans
beyond a dozen services is pointless.

The enumeration runs on the evaluation kernel
(:mod:`repro.core.evaluation`): a depth-first recursion over
:class:`~repro.core.evaluation.PrefixState` objects shares each prefix's
bottleneck state between the up-to ``(n-k)!`` plans that start with it, so a
plan costs O(1) amortized instead of the O(n) a from-scratch
``problem.cost`` call pays — and precedence constraints prune the recursion
at the *first* violating position instead of generating and discarding all
``n!`` permutations.  No cost-based pruning is applied: every feasible plan
is enumerated, which is exactly what a ground-truth baseline must do, and
the kernel's arithmetic makes the minimum bit-identical to evaluating every
feasible permutation with :func:`repro.core.cost_model.bottleneck_cost`.

``nodes_expanded`` counts the feasible prefixes visited (including complete
plans); ``plans_evaluated`` counts the complete feasible plans.
"""

from __future__ import annotations

from repro.core.evaluation import PrefixState
from repro.core.problem import OrderingProblem
from repro.core.result import OptimizationResult, SearchStatistics
from repro.exceptions import OptimizationError, ProblemTooLargeError
from repro.utils.timing import Stopwatch

__all__ = ["ExhaustiveOptimizer", "exhaustive_search"]


class ExhaustiveOptimizer:
    """Evaluates every feasible permutation and keeps the cheapest one."""

    name = "exhaustive"

    def __init__(self, max_size: int = 10) -> None:
        if max_size < 1:
            raise ValueError("max_size must be positive")
        self.max_size = max_size

    def optimize(self, problem: OrderingProblem) -> OptimizationResult:
        """Return the optimal plan by enumerating all feasible orderings."""
        if problem.size > self.max_size:
            raise ProblemTooLargeError(
                f"exhaustive search is limited to {self.max_size} services, "
                f"the problem has {problem.size} (raise max_size explicitly if you really want this)"
            )
        stopwatch = Stopwatch().start()
        stats = SearchStatistics()
        evaluator = problem.evaluator()
        # All search state lives in this call frame (not on self), so one
        # optimizer instance can run concurrent/re-entrant optimize() calls.
        best_cost = float("inf")
        best_order: tuple[int, ...] | None = None
        size = evaluator.size
        costs = evaluator.costs
        selectivities = evaluator.selectivities
        rows = evaluator.rows
        sink = evaluator.sink

        def visit(state: PrefixState) -> None:
            nonlocal best_cost, best_order
            stats.nodes_expanded += 1
            if state.length == size:
                stats.plans_evaluated += 1
                if state.epsilon < best_cost:
                    best_cost = state.epsilon
                    best_order = state.order
                    stats.incumbent_updates += 1
                return
            if state.length == size - 1:
                # One service left: score the completion arithmetically instead
                # of allocating a child state per leaf (the bulk of all nodes).
                for successor in state.allowed_extensions():
                    stats.nodes_expanded += 1
                    stats.plans_evaluated += 1
                    last = state.last
                    rate = state.rate
                    settled = (
                        rate * costs[last]
                        + rate * selectivities[last] * rows[last][successor]
                    )
                    settled_max = state.settled_max
                    if settled < settled_max:
                        settled = settled_max
                    out_rate = state.output_rate
                    final = (
                        out_rate * costs[successor]
                        + out_rate * selectivities[successor] * sink[successor]
                    )
                    epsilon = settled if settled >= final else final
                    if epsilon < best_cost:
                        best_cost = epsilon
                        best_order = state.order + (successor,)
                        stats.incumbent_updates += 1
                return
            for successor in state.allowed_extensions():
                visit(state.extend(successor))

        root = evaluator.root()
        for first in root.allowed_extensions():
            visit(root.extend(first))

        stats.elapsed_seconds = stopwatch.stop()
        if best_order is None:
            raise OptimizationError("no feasible ordering satisfies the precedence constraints")
        plan = problem.plan(best_order)
        return OptimizationResult(
            plan=plan, cost=plan.cost, algorithm=self.name, optimal=True, statistics=stats
        )


def exhaustive_search(problem: OrderingProblem, max_size: int = 10) -> OptimizationResult:
    """Convenience wrapper around :class:`ExhaustiveOptimizer`."""
    return ExhaustiveOptimizer(max_size=max_size).optimize(problem)

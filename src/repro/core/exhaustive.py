"""Exhaustive enumeration of all linear orderings.

The brute-force optimizer is the ground truth against which the
branch-and-bound algorithm is validated (experiment E1 and the property-based
tests).  It is intentionally guarded by a size limit: enumerating ``n!`` plans
beyond a dozen services is pointless.
"""

from __future__ import annotations

from itertools import permutations

from repro.core.problem import OrderingProblem
from repro.core.result import OptimizationResult, SearchStatistics
from repro.exceptions import OptimizationError, ProblemTooLargeError
from repro.utils.timing import Stopwatch

__all__ = ["ExhaustiveOptimizer", "exhaustive_search"]


class ExhaustiveOptimizer:
    """Evaluates every feasible permutation and keeps the cheapest one."""

    name = "exhaustive"

    def __init__(self, max_size: int = 10) -> None:
        if max_size < 1:
            raise ValueError("max_size must be positive")
        self.max_size = max_size

    def optimize(self, problem: OrderingProblem) -> OptimizationResult:
        """Return the optimal plan by enumerating all feasible orderings."""
        if problem.size > self.max_size:
            raise ProblemTooLargeError(
                f"exhaustive search is limited to {self.max_size} services, "
                f"the problem has {problem.size} (raise max_size explicitly if you really want this)"
            )
        stopwatch = Stopwatch().start()
        stats = SearchStatistics()
        precedence = problem.precedence
        best_order: tuple[int, ...] | None = None
        best_cost = float("inf")
        for order in permutations(range(problem.size)):
            stats.nodes_expanded += 1
            if precedence is not None and not precedence.is_valid_order(order):
                continue
            cost = problem.cost(order)
            stats.plans_evaluated += 1
            if cost < best_cost:
                best_cost = cost
                best_order = order
                stats.incumbent_updates += 1
        stats.elapsed_seconds = stopwatch.stop()
        if best_order is None:
            raise OptimizationError("no feasible ordering satisfies the precedence constraints")
        plan = problem.plan(best_order)
        return OptimizationResult(
            plan=plan, cost=plan.cost, algorithm=self.name, optimal=True, statistics=stats
        )


def exhaustive_search(problem: OrderingProblem, max_size: int = 10) -> OptimizationResult:
    """Convenience wrapper around :class:`ExhaustiveOptimizer`."""
    return ExhaustiveOptimizer(max_size=max_size).optimize(problem)

"""Precedence constraints between services.

The paper's restricted setting assumes *no* precedence constraints, but notes
that the approach extends to them with minor modifications.  A precedence
constraint ``a -> b`` states that service ``a`` must appear before service
``b`` in every valid plan (e.g. a decryption service must run before the
services that inspect the decrypted payload).

:class:`PrecedenceGraph` is a small DAG utility over service *indices*; the
optimizers consult it when enumerating successors, and
:meth:`repro.core.problem.OrderingProblem.validate_plan` uses it to reject
invalid plans.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.exceptions import PrecedenceCycleError, PrecedenceViolationError

__all__ = ["PrecedenceGraph"]


class PrecedenceGraph:
    """A directed acyclic graph of ``before -> after`` constraints over ``size`` services."""

    def __init__(self, size: int, edges: Iterable[tuple[int, int]] = ()) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        self._size = size
        self._successors: list[set[int]] = [set() for _ in range(size)]
        self._predecessors: list[set[int]] = [set() for _ in range(size)]
        for before, after in edges:
            self.add(before, after)

    # -- construction ------------------------------------------------------

    @classmethod
    def chain(cls, indices: Sequence[int], size: int | None = None) -> "PrecedenceGraph":
        """A graph forcing ``indices`` to appear in the given relative order."""
        size = size if size is not None else (max(indices) + 1 if indices else 1)
        graph = cls(size)
        for before, after in zip(indices, indices[1:]):
            graph.add(before, after)
        return graph

    @classmethod
    def empty(cls, size: int) -> "PrecedenceGraph":
        """A graph with no constraints."""
        return cls(size)

    def add(self, before: int, after: int) -> None:
        """Add the constraint ``before -> after``; rejects self-loops and cycles."""
        self._check_index(before)
        self._check_index(after)
        if before == after:
            raise PrecedenceCycleError(f"service {before} cannot precede itself")
        if self._reachable(after, before):
            raise PrecedenceCycleError(
                f"adding constraint {before} -> {after} would create a cycle"
            )
        self._successors[before].add(after)
        self._predecessors[after].add(before)

    # -- queries -----------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of services the graph covers."""
        return self._size

    @property
    def has_constraints(self) -> bool:
        """Whether any constraint has been added."""
        return any(self._successors)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over all ``(before, after)`` constraints."""
        for before in range(self._size):
            for after in sorted(self._successors[before]):
                yield (before, after)

    def predecessors(self, index: int) -> frozenset[int]:
        """Direct predecessors of ``index``."""
        self._check_index(index)
        return frozenset(self._predecessors[index])

    def successors(self, index: int) -> frozenset[int]:
        """Direct successors of ``index``."""
        self._check_index(index)
        return frozenset(self._successors[index])

    def is_allowed_next(self, placed: frozenset[int] | set[int], candidate: int) -> bool:
        """Whether ``candidate`` may be appended after the services in ``placed``."""
        self._check_index(candidate)
        return self._predecessors[candidate].issubset(placed)

    def allowed_extensions(self, placed: frozenset[int] | set[int], remaining: Iterable[int]) -> list[int]:
        """Filter ``remaining`` down to the services allowed to come next."""
        return [index for index in remaining if self.is_allowed_next(placed, index)]

    def check_order(self, order: Sequence[int]) -> None:
        """Raise :class:`PrecedenceViolationError` if ``order`` violates any constraint."""
        position = {index: pos for pos, index in enumerate(order)}
        for before, after in self.edges():
            if before in position and after in position and position[before] > position[after]:
                raise PrecedenceViolationError(
                    f"plan places service {after} before its predecessor {before}"
                )

    def is_valid_order(self, order: Sequence[int]) -> bool:
        """Whether ``order`` satisfies every constraint among the services it contains."""
        try:
            self.check_order(order)
        except PrecedenceViolationError:
            return False
        return True

    def topological_order(self) -> list[int]:
        """Any ordering of all services consistent with the constraints (Kahn's algorithm)."""
        in_degree = [len(self._predecessors[index]) for index in range(self._size)]
        ready = sorted(index for index in range(self._size) if in_degree[index] == 0)
        result: list[int] = []
        while ready:
            index = ready.pop(0)
            result.append(index)
            for successor in sorted(self._successors[index]):
                in_degree[successor] -= 1
                if in_degree[successor] == 0:
                    ready.append(successor)
        if len(result) != self._size:
            # Unreachable through the public API because ``add`` rejects cycles,
            # but kept as a safety net for subclasses.
            raise PrecedenceCycleError("precedence constraints contain a cycle")
        return result

    # -- internals ---------------------------------------------------------

    def _check_index(self, index: int) -> None:
        if not isinstance(index, int) or isinstance(index, bool) or not 0 <= index < self._size:
            raise ValueError(f"service index {index!r} out of range [0, {self._size})")

    def _reachable(self, source: int, target: int) -> bool:
        """Whether ``target`` is reachable from ``source`` along constraints."""
        stack = [source]
        visited: set[int] = set()
        while stack:
            node = stack.pop()
            if node == target:
                return True
            if node in visited:
                continue
            visited.add(node)
            stack.extend(self._successors[node])
        return False

    def __repr__(self) -> str:
        return f"PrecedenceGraph(size={self._size}, edges={list(self.edges())!r})"

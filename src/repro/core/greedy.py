"""Greedy construction heuristics.

These are the cheap baselines the evaluation compares the branch-and-bound
optimizer against (experiment E4) and the source of the initial incumbent the
branch-and-bound search starts from.  None of them is optimal in general; all
of them respect precedence constraints.

Plans are grown through the evaluation kernel's O(1)-extend
:class:`~repro.core.evaluation.PrefixState` — the one-step-lookahead
``min_term`` strategy in particular scores every candidate extension in O(1)
instead of copying prefix tuples.  The kernel's ``epsilon`` arithmetic is
bit-identical to the from-scratch cost model
(:func:`repro.core.cost_model.bottleneck_cost`), and candidates are still
ranked with the same ``(score, index)`` tie-breaking as before the kernel.
"""

from __future__ import annotations

import random

from repro.core.evaluation import PlanEvaluator, PrefixState
from repro.core.problem import OrderingProblem
from repro.core.result import OptimizationResult, SearchStatistics
from repro.exceptions import OptimizationError
from repro.utils.timing import Stopwatch

__all__ = ["GreedyStrategy", "GreedyOptimizer", "greedy", "random_plan"]


class GreedyStrategy:
    """Available greedy construction strategies."""

    NEAREST_SUCCESSOR = "nearest_successor"
    """Start with the cheapest two-service prefix, then repeatedly append the
    service with the smallest transfer cost from the current last service.
    This is the expansion heuristic of the paper's algorithm run without
    backtracking."""

    CHEAPEST_COST = "cheapest_cost"
    """Repeatedly append the allowed service with the smallest processing cost
    ``c_i`` (optimal for σ<=1 under *uniform* communication costs)."""

    MOST_SELECTIVE = "most_selective"
    """Repeatedly append the allowed service with the smallest selectivity, so
    that downstream services see as few tuples as possible."""

    MIN_TERM = "min_term"
    """One-step lookahead: repeatedly append the allowed service that minimises
    the bottleneck cost ``ε`` of the resulting prefix."""

    RANDOM = "random"
    """A uniformly random feasible ordering (seeded)."""

    ALL = (NEAREST_SUCCESSOR, CHEAPEST_COST, MOST_SELECTIVE, MIN_TERM, RANDOM)


class GreedyOptimizer:
    """Builds one plan with a greedy strategy; never backtracks."""

    def __init__(self, strategy: str = GreedyStrategy.NEAREST_SUCCESSOR, seed: int = 0) -> None:
        if strategy not in GreedyStrategy.ALL:
            raise ValueError(
                f"unknown greedy strategy {strategy!r}; expected one of {GreedyStrategy.ALL}"
            )
        self.strategy = strategy
        self.seed = seed

    @property
    def name(self) -> str:
        """Algorithm name used in result reports."""
        return f"greedy_{self.strategy}"

    def optimize(self, problem: OrderingProblem) -> OptimizationResult:
        """Construct a plan for ``problem`` with the configured strategy."""
        stopwatch = Stopwatch().start()
        stats = SearchStatistics()
        rng = random.Random(self.seed)
        evaluator = problem.evaluator()
        state = evaluator.root()
        while not state.is_complete:
            candidates = state.allowed_extensions()
            if not candidates:
                raise OptimizationError(
                    "no service can legally be appended; precedence constraints are unsatisfiable"
                )
            successor = self._pick(evaluator, state, candidates, rng)
            state = state.extend(successor)
            stats.nodes_expanded += 1
        stats.plans_evaluated = 1
        stats.elapsed_seconds = stopwatch.stop()
        plan = problem.plan(state.order)
        return OptimizationResult(
            plan=plan, cost=plan.cost, algorithm=self.name, optimal=False, statistics=stats
        )

    # -- strategy implementations ---------------------------------------------

    def _pick(
        self,
        evaluator: PlanEvaluator,
        state: PrefixState,
        candidates: list[int],
        rng: random.Random,
    ) -> int:
        if self.strategy == GreedyStrategy.RANDOM:
            return rng.choice(candidates)
        if self.strategy == GreedyStrategy.CHEAPEST_COST:
            return min(candidates, key=lambda index: (evaluator.costs[index], index))
        if self.strategy == GreedyStrategy.MOST_SELECTIVE:
            return min(candidates, key=lambda index: (evaluator.selectivities[index], index))
        if self.strategy == GreedyStrategy.MIN_TERM:
            return min(candidates, key=lambda index: (state.extend(index).epsilon, index))
        # NEAREST_SUCCESSOR
        if state.is_empty:
            return min(
                candidates, key=lambda index: (_best_pair_cost(evaluator, index), index)
            )
        last = state.last
        return min(candidates, key=lambda index: (evaluator.rows[last][index], index))


def _best_pair_cost(evaluator: PlanEvaluator, first: int) -> float:
    """Bottleneck cost of the cheapest two-service prefix starting with ``first``."""
    start = evaluator.root().extend(first)
    candidates = start.allowed_extensions()
    if not candidates:
        return start.epsilon
    return min(start.extend(second).epsilon for second in candidates)


def greedy(
    problem: OrderingProblem, strategy: str = GreedyStrategy.NEAREST_SUCCESSOR, seed: int = 0
) -> OptimizationResult:
    """Convenience wrapper around :class:`GreedyOptimizer`."""
    return GreedyOptimizer(strategy, seed=seed).optimize(problem)


def random_plan(problem: OrderingProblem, seed: int = 0) -> OptimizationResult:
    """A uniformly random feasible plan (common strawman baseline)."""
    return GreedyOptimizer(GreedyStrategy.RANDOM, seed=seed).optimize(problem)

"""Local-search heuristics: hill climbing and simulated annealing.

These metaheuristics serve two purposes in the reproduction:

* additional baselines for experiment E4 (they often come close to the optimum
  but cannot certify it, unlike the branch-and-bound algorithm), and
* a quality upper bound for instances too large for any exact method.

Both operate on complete plans and explore *swap* (exchange two positions) and
*insertion* (move one service to another position) neighbourhoods, rejecting
neighbours that violate precedence constraints.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator

from repro.core.greedy import GreedyOptimizer, GreedyStrategy
from repro.core.problem import OrderingProblem
from repro.core.result import OptimizationResult, SearchStatistics
from repro.utils.timing import Stopwatch

__all__ = [
    "HillClimbingOptimizer",
    "SimulatedAnnealingOptimizer",
    "SimulatedAnnealingOptions",
    "hill_climbing",
    "simulated_annealing",
]


def _neighbours(order: tuple[int, ...]) -> Iterator[tuple[int, ...]]:
    """Yield all swap and insertion neighbours of ``order``."""
    size = len(order)
    for i in range(size):
        for j in range(i + 1, size):
            swapped = list(order)
            swapped[i], swapped[j] = swapped[j], swapped[i]
            yield tuple(swapped)
    for i in range(size):
        for j in range(size):
            if i == j:
                continue
            moved = list(order)
            service = moved.pop(i)
            moved.insert(j, service)
            candidate = tuple(moved)
            if candidate != order:
                yield candidate


def _is_feasible(problem: OrderingProblem, order: tuple[int, ...]) -> bool:
    precedence = problem.precedence
    return precedence is None or precedence.is_valid_order(order)


def _initial_order(problem: OrderingProblem, seed: int) -> tuple[int, ...]:
    """A feasible starting plan: the best of the deterministic greedy strategies."""
    best_order: tuple[int, ...] | None = None
    best_cost = float("inf")
    for strategy in (
        GreedyStrategy.NEAREST_SUCCESSOR,
        GreedyStrategy.CHEAPEST_COST,
        GreedyStrategy.MIN_TERM,
    ):
        result = GreedyOptimizer(strategy, seed=seed).optimize(problem)
        if result.cost < best_cost:
            best_cost = result.cost
            best_order = result.plan.order
    assert best_order is not None
    return best_order


class HillClimbingOptimizer:
    """Steepest-descent local search over swap/insertion neighbourhoods."""

    name = "hill_climbing"

    def __init__(self, max_iterations: int = 1000, seed: int = 0) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be positive")
        self.max_iterations = max_iterations
        self.seed = seed

    def optimize(self, problem: OrderingProblem) -> OptimizationResult:
        """Improve a greedy plan until no neighbour is better (or iterations run out)."""
        stopwatch = Stopwatch().start()
        stats = SearchStatistics()
        current = _initial_order(problem, self.seed)
        current_cost = problem.cost(current)
        stats.plans_evaluated += 1
        for _ in range(self.max_iterations):
            stats.nodes_expanded += 1
            best_neighbour: tuple[int, ...] | None = None
            best_cost = current_cost
            for neighbour in _neighbours(current):
                if not _is_feasible(problem, neighbour):
                    continue
                cost = problem.cost(neighbour)
                stats.plans_evaluated += 1
                if cost < best_cost:
                    best_cost = cost
                    best_neighbour = neighbour
            if best_neighbour is None:
                break
            current = best_neighbour
            current_cost = best_cost
            stats.incumbent_updates += 1
        stats.elapsed_seconds = stopwatch.stop()
        plan = problem.plan(current)
        return OptimizationResult(
            plan=plan, cost=plan.cost, algorithm=self.name, optimal=False, statistics=stats
        )


@dataclass(frozen=True)
class SimulatedAnnealingOptions:
    """Annealing schedule parameters."""

    initial_temperature: float = 1.0
    """Starting temperature, relative to the initial plan cost."""

    cooling: float = 0.995
    """Multiplicative cooling factor per step (must lie in (0, 1))."""

    steps: int = 5000
    """Number of proposal steps."""

    seed: int = 0
    """Seed of the proposal/acceptance random stream."""

    def __post_init__(self) -> None:
        if self.initial_temperature <= 0:
            raise ValueError("initial_temperature must be positive")
        if not 0.0 < self.cooling < 1.0:
            raise ValueError("cooling must lie strictly between 0 and 1")
        if self.steps < 1:
            raise ValueError("steps must be positive")


class SimulatedAnnealingOptimizer:
    """Simulated annealing over the swap/insertion neighbourhood."""

    name = "simulated_annealing"

    def __init__(self, options: SimulatedAnnealingOptions | None = None) -> None:
        self.options = options if options is not None else SimulatedAnnealingOptions()

    def optimize(self, problem: OrderingProblem) -> OptimizationResult:
        """Anneal from a greedy plan; returns the best plan seen."""
        options = self.options
        stopwatch = Stopwatch().start()
        stats = SearchStatistics()
        rng = random.Random(options.seed)

        current = _initial_order(problem, options.seed)
        current_cost = problem.cost(current)
        best = current
        best_cost = current_cost
        stats.plans_evaluated += 1

        temperature = options.initial_temperature * max(current_cost, 1e-12)
        for _ in range(options.steps):
            stats.nodes_expanded += 1
            proposal = self._propose(current, rng)
            if not _is_feasible(problem, proposal):
                temperature *= options.cooling
                continue
            cost = problem.cost(proposal)
            stats.plans_evaluated += 1
            accept = cost <= current_cost
            if not accept and temperature > 0:
                accept = rng.random() < math.exp((current_cost - cost) / temperature)
            if accept:
                current = proposal
                current_cost = cost
                if cost < best_cost:
                    best = proposal
                    best_cost = cost
                    stats.incumbent_updates += 1
            temperature *= options.cooling

        stats.elapsed_seconds = stopwatch.stop()
        plan = problem.plan(best)
        return OptimizationResult(
            plan=plan, cost=plan.cost, algorithm=self.name, optimal=False, statistics=stats
        )

    @staticmethod
    def _propose(order: tuple[int, ...], rng: random.Random) -> tuple[int, ...]:
        """A random swap or insertion move."""
        size = len(order)
        if size < 2:
            return order
        modified = list(order)
        if rng.random() < 0.5:
            i, j = rng.sample(range(size), 2)
            modified[i], modified[j] = modified[j], modified[i]
        else:
            i, j = rng.sample(range(size), 2)
            service = modified.pop(i)
            modified.insert(j, service)
        return tuple(modified)


def hill_climbing(problem: OrderingProblem, max_iterations: int = 1000, seed: int = 0) -> OptimizationResult:
    """Convenience wrapper around :class:`HillClimbingOptimizer`."""
    return HillClimbingOptimizer(max_iterations=max_iterations, seed=seed).optimize(problem)


def simulated_annealing(
    problem: OrderingProblem, options: SimulatedAnnealingOptions | None = None
) -> OptimizationResult:
    """Convenience wrapper around :class:`SimulatedAnnealingOptimizer`."""
    return SimulatedAnnealingOptimizer(options).optimize(problem)

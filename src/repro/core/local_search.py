"""Local-search heuristics: hill climbing and simulated annealing.

These metaheuristics serve two purposes in the reproduction:

* additional baselines for experiment E4 (they often come close to the optimum
  but cannot certify it, unlike the branch-and-bound algorithm), and
* a quality upper bound for instances too large for any exact method.

Both operate on complete plans and explore *swap* (exchange two positions) and
*relocate/insert* (move one service to another position) neighbourhoods,
rejecting neighbours that violate precedence constraints.

Both run on the evaluation kernel (:mod:`repro.core.evaluation`): a
:class:`~repro.core.evaluation.NeighborhoodEvaluator` around the current plan
re-scores only the window of positions a move touches, and hill climbing
passes its running best as the incumbent bound so a worse neighbour is
abandoned the moment its partial maximum meets it.  Delta costs are
bit-identical to from-scratch :func:`repro.core.cost_model.bottleneck_cost`
evaluation and the neighbour enumeration order and random streams are
unchanged, so from a given starting plan both heuristics walk exactly the
trajectory a from-scratch-scoring implementation would — only faster.

On the vector kernel (:mod:`repro.core.vector`) each hill-climbing step
generates and scores the *entire* swap/relocate neighbourhood as one
``moves × services`` matrix (:meth:`~repro.core.vector.BatchEvaluator.best_neighbor`).
The move table enumerates swaps then relocates in the scalar loops' order and
``argmin`` returns the first move attaining the minimum — the same winner the
scalar running-strict-improvement scan keeps — so both kernels walk the
identical descent trajectory.  Simulated annealing stays on the scalar delta
path by construction: its seeded trajectory scores one sequentially-drawn
proposal at a time, which is exactly the shape batching cannot help.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.core.greedy import GreedyOptimizer, GreedyStrategy
from repro.core.problem import OrderingProblem
from repro.core.result import OptimizationResult, SearchStatistics
from repro.core.vector import batch_evaluator, resolve_kernel
from repro.utils.timing import Stopwatch

__all__ = [
    "HillClimbingOptimizer",
    "SimulatedAnnealingOptimizer",
    "SimulatedAnnealingOptions",
    "hill_climbing",
    "simulated_annealing",
]


def _initial_order(problem: OrderingProblem, seed: int) -> tuple[int, ...]:
    """A feasible starting plan: the best of the deterministic greedy strategies."""
    best_order: tuple[int, ...] | None = None
    best_cost = float("inf")
    for strategy in (
        GreedyStrategy.NEAREST_SUCCESSOR,
        GreedyStrategy.CHEAPEST_COST,
        GreedyStrategy.MIN_TERM,
    ):
        result = GreedyOptimizer(strategy, seed=seed).optimize(problem)
        if result.cost < best_cost:
            best_cost = result.cost
            best_order = result.plan.order
    assert best_order is not None
    return best_order


class HillClimbingOptimizer:
    """Steepest-descent local search over swap/relocate neighbourhoods."""

    name = "hill_climbing"

    def __init__(
        self,
        max_iterations: int = 1000,
        seed: int = 0,
        kernel: str | None = None,
        fast_math: bool = False,
    ) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be positive")
        self.max_iterations = max_iterations
        self.seed = seed
        self.kernel = kernel
        self.fast_math = fast_math

    def optimize(self, problem: OrderingProblem) -> OptimizationResult:
        """Improve a greedy plan until no neighbour is better (or iterations run out)."""
        stopwatch = Stopwatch().start()
        stats = SearchStatistics()
        evaluator = problem.evaluator()
        kernel = resolve_kernel(self.kernel, problem.size)
        current = _initial_order(problem, self.seed)

        if kernel == "vector":
            batch = batch_evaluator(evaluator, self.fast_math)
            current_cost = float(batch.score_orders([current])[0])
            stats.plans_evaluated += 1
            for _ in range(self.max_iterations):
                stats.nodes_expanded += 1
                neighbour, cost, evaluated = batch.best_neighbor(current, current_cost)
                stats.plans_evaluated += evaluated
                if neighbour is None:
                    break
                current = neighbour
                current_cost = cost
                stats.incumbent_updates += 1
        else:
            neighborhood = evaluator.neighborhood(current)
            current_cost = neighborhood.cost
            stats.plans_evaluated += 1
            size = len(current)
            for _ in range(self.max_iterations):
                stats.nodes_expanded += 1
                best_neighbour: tuple[int, ...] | None = None
                best_cost = current_cost
                # Swap moves, then relocate moves, in the fixed enumeration order
                # of the original implementation; the running best is the
                # incumbent bound, so most non-improving moves abandon early.
                for i in range(size):
                    for j in range(i + 1, size):
                        if not neighborhood.swap_feasible(i, j):
                            continue
                        cost = neighborhood.swap_cost(i, j, best_cost)
                        stats.plans_evaluated += 1
                        if cost < best_cost:
                            best_cost = cost
                            best_neighbour = neighborhood.swapped(i, j)
                for i in range(size):
                    for j in range(size):
                        if i == j:
                            continue
                        if not neighborhood.relocate_feasible(i, j):
                            continue
                        cost = neighborhood.relocate_cost(i, j, best_cost)
                        stats.plans_evaluated += 1
                        if cost < best_cost:
                            best_cost = cost
                            best_neighbour = neighborhood.relocated(i, j)
                if best_neighbour is None:
                    break
                current = best_neighbour
                current_cost = best_cost
                neighborhood = evaluator.neighborhood(current)
                stats.incumbent_updates += 1
        stats.extra["kernel"] = kernel
        stats.elapsed_seconds = stopwatch.stop()
        plan = problem.plan(current)
        return OptimizationResult(
            plan=plan, cost=plan.cost, algorithm=self.name, optimal=False, statistics=stats
        )


@dataclass(frozen=True)
class SimulatedAnnealingOptions:
    """Annealing schedule parameters."""

    initial_temperature: float = 1.0
    """Starting temperature, relative to the initial plan cost."""

    cooling: float = 0.995
    """Multiplicative cooling factor per step (must lie in (0, 1))."""

    steps: int = 5000
    """Number of proposal steps."""

    seed: int = 0
    """Seed of the proposal/acceptance random stream."""

    def __post_init__(self) -> None:
        if self.initial_temperature <= 0:
            raise ValueError("initial_temperature must be positive")
        if not 0.0 < self.cooling < 1.0:
            raise ValueError("cooling must lie strictly between 0 and 1")
        if self.steps < 1:
            raise ValueError("steps must be positive")


class SimulatedAnnealingOptimizer:
    """Simulated annealing over the swap/relocate neighbourhood.

    Proposals are scored by kernel delta evaluation (exact, so the Metropolis
    acceptance decisions — and hence the whole seeded trajectory — match a
    from-scratch implementation bit for bit); the neighbourhood tables are
    rebuilt only when a proposal is accepted.
    """

    name = "simulated_annealing"

    def __init__(self, options: SimulatedAnnealingOptions | None = None) -> None:
        self.options = options if options is not None else SimulatedAnnealingOptions()

    def optimize(self, problem: OrderingProblem) -> OptimizationResult:
        """Anneal from a greedy plan; returns the best plan seen."""
        options = self.options
        stopwatch = Stopwatch().start()
        stats = SearchStatistics()
        rng = random.Random(options.seed)
        evaluator = problem.evaluator()

        current = _initial_order(problem, options.seed)
        neighborhood = evaluator.neighborhood(current)
        current_cost = neighborhood.cost
        best = current
        best_cost = current_cost
        stats.plans_evaluated += 1
        size = len(current)

        temperature = options.initial_temperature * max(current_cost, 1e-12)
        for _ in range(options.steps):
            stats.nodes_expanded += 1
            if size < 2:
                proposal = current
                cost = current_cost
                is_swap, i, j = True, 0, 0
            else:
                is_swap = rng.random() < 0.5
                i, j = rng.sample(range(size), 2)
                feasible = (
                    neighborhood.swap_feasible(i, j)
                    if is_swap
                    else neighborhood.relocate_feasible(i, j)
                )
                if not feasible:
                    temperature *= options.cooling
                    continue
                cost = (
                    neighborhood.swap_cost(i, j)
                    if is_swap
                    else neighborhood.relocate_cost(i, j)
                )
                proposal = None  # materialized only if accepted
            stats.plans_evaluated += 1
            accept = cost <= current_cost
            if not accept and temperature > 0:
                accept = rng.random() < math.exp((current_cost - cost) / temperature)
            if accept:
                if proposal is None:
                    proposal = (
                        neighborhood.swapped(i, j) if is_swap else neighborhood.relocated(i, j)
                    )
                if proposal != current:
                    current = proposal
                    current_cost = cost
                    neighborhood = evaluator.neighborhood(current)
                if cost < best_cost:
                    best = proposal
                    best_cost = cost
                    stats.incumbent_updates += 1
            temperature *= options.cooling

        stats.elapsed_seconds = stopwatch.stop()
        plan = problem.plan(best)
        return OptimizationResult(
            plan=plan, cost=plan.cost, algorithm=self.name, optimal=False, statistics=stats
        )


def hill_climbing(problem: OrderingProblem, max_iterations: int = 1000, seed: int = 0) -> OptimizationResult:
    """Convenience wrapper around :class:`HillClimbingOptimizer`."""
    return HillClimbingOptimizer(max_iterations=max_iterations, seed=seed).optimize(problem)


def simulated_annealing(
    problem: OrderingProblem, options: SimulatedAnnealingOptions | None = None
) -> OptimizationResult:
    """Convenience wrapper around :class:`SimulatedAnnealingOptimizer`."""
    return SimulatedAnnealingOptimizer(options).optimize(problem)

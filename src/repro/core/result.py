"""Optimization results and search statistics.

Every optimizer in :mod:`repro.core` returns an :class:`OptimizationResult`,
which bundles the plan, its bottleneck cost, whether optimality is guaranteed,
and a :class:`SearchStatistics` record.  The statistics are what experiments
E2/E3/E8 report (nodes explored, pruning counts, wall-clock time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.plan import Plan

__all__ = ["SearchStatistics", "OptimizationResult"]


@dataclass
class SearchStatistics:
    """Counters describing the work an optimizer performed.

    Not every optimizer uses every counter: e.g. the greedy heuristics only
    count ``plans_evaluated``, whereas the branch-and-bound optimizer fills in
    the pruning counters that experiment E8 ablates.
    """

    nodes_expanded: int = 0
    """Partial plans popped/extended during the search."""

    plans_evaluated: int = 0
    """Complete plans whose bottleneck cost was computed."""

    pruned_by_bound: int = 0
    """Partial plans discarded because ``ε`` already reached the incumbent (Lemma 1)."""

    lemma2_closures: int = 0
    """Partial plans closed because ``ε >= ε̄`` (Lemma 2)."""

    lemma3_prunes: int = 0
    """Prefixes discarded by the bottleneck-prefix rule (Lemma 3)."""

    incumbent_updates: int = 0
    """Number of times a better plan than the current best was found."""

    elapsed_seconds: float = 0.0
    """Wall-clock time spent inside the optimizer."""

    extra: dict[str, Any] = field(default_factory=dict)
    """Optimizer-specific counters (e.g. DP states, annealing steps)."""

    def merge(self, other: "SearchStatistics") -> "SearchStatistics":
        """Return the element-wise sum of two statistics records."""
        merged_extra = dict(self.extra)
        for key, value in other.extra.items():
            if key in merged_extra and isinstance(value, (int, float)):
                merged_extra[key] = merged_extra[key] + value
            else:
                merged_extra[key] = value
        return SearchStatistics(
            nodes_expanded=self.nodes_expanded + other.nodes_expanded,
            plans_evaluated=self.plans_evaluated + other.plans_evaluated,
            pruned_by_bound=self.pruned_by_bound + other.pruned_by_bound,
            lemma2_closures=self.lemma2_closures + other.lemma2_closures,
            lemma3_prunes=self.lemma3_prunes + other.lemma3_prunes,
            incumbent_updates=self.incumbent_updates + other.incumbent_updates,
            elapsed_seconds=self.elapsed_seconds + other.elapsed_seconds,
            extra=merged_extra,
        )

    def as_dict(self) -> dict[str, Any]:
        """Flatten the statistics into a plain dictionary for tabular reports."""
        data: dict[str, Any] = {
            "nodes_expanded": self.nodes_expanded,
            "plans_evaluated": self.plans_evaluated,
            "pruned_by_bound": self.pruned_by_bound,
            "lemma2_closures": self.lemma2_closures,
            "lemma3_prunes": self.lemma3_prunes,
            "incumbent_updates": self.incumbent_updates,
            "elapsed_seconds": self.elapsed_seconds,
        }
        data.update(self.extra)
        return data


@dataclass
class OptimizationResult:
    """The outcome of running an optimizer on an :class:`OrderingProblem`."""

    plan: Plan
    """The best plan the optimizer found."""

    cost: float
    """Bottleneck cost of :attr:`plan` (Eq. 1)."""

    algorithm: str
    """Name of the algorithm that produced the result."""

    optimal: bool
    """Whether the algorithm guarantees this is a global optimum."""

    statistics: SearchStatistics = field(default_factory=SearchStatistics)
    """Work counters collected during the search."""

    def __post_init__(self) -> None:
        expected = self.plan.cost
        if abs(expected - self.cost) > 1e-9 * max(1.0, abs(expected)):
            raise ValueError(
                f"inconsistent result: reported cost {self.cost!r} but the plan costs {expected!r}"
            )

    @property
    def order(self) -> tuple[int, ...]:
        """The service indices of the best plan, in execution order."""
        return self.plan.order

    def describe(self) -> str:
        """Human-readable summary used by examples."""
        guarantee = "optimal" if self.optimal else "heuristic"
        return (
            f"{self.algorithm} ({guarantee}): cost={self.cost:.6g}, "
            f"plan={' -> '.join(self.plan.service_names)}, "
            f"nodes={self.statistics.nodes_expanded}, "
            f"time={self.statistics.elapsed_seconds * 1e3:.2f} ms"
        )

    def as_dict(self) -> dict[str, Any]:
        """Flatten the result into a dictionary for tabular reports."""
        data = {
            "algorithm": self.algorithm,
            "cost": self.cost,
            "optimal": self.optimal,
            "order": list(self.order),
        }
        data.update(self.statistics.as_dict())
        return data

"""The bottleneck-TSP special case used in the paper's hardness argument.

The paper observes that when every selectivity is 1 and every processing cost
is 0, minimising the bottleneck cost metric over linear orderings is exactly
the **bottleneck travelling-salesman path problem** (minimise the largest edge
of a Hamiltonian path), which is NP-hard.  This module provides

* the reduction in both directions
  (:func:`problem_from_distance_matrix`, :func:`distance_matrix_from_problem`),
* an exact bottleneck Hamiltonian-path solver
  (:class:`BottleneckPathSolver`) based on binary search over the distinct
  edge weights plus a backtracking feasibility test, and
* a convenience check (:func:`is_bottleneck_tsp_instance`) used by tests and
  experiment E6 to cross-validate the branch-and-bound optimizer on the
  special case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.cost_model import CommunicationCostMatrix
from repro.core.problem import OrderingProblem
from repro.exceptions import OptimizationError, ProblemTooLargeError
from repro.utils.timing import Stopwatch

__all__ = [
    "BottleneckPathResult",
    "BottleneckPathSolver",
    "bottleneck_path",
    "problem_from_distance_matrix",
    "distance_matrix_from_problem",
    "is_bottleneck_tsp_instance",
]


def problem_from_distance_matrix(
    distances: CommunicationCostMatrix | Sequence[Sequence[float]],
    names: Sequence[str] | None = None,
) -> OrderingProblem:
    """Encode a bottleneck-TSP-path instance as an ordering problem.

    All selectivities are 1 and all processing costs 0, so the bottleneck cost
    of a plan equals the largest edge weight along the corresponding path.
    """
    if not isinstance(distances, CommunicationCostMatrix):
        distances = CommunicationCostMatrix(distances)
    size = distances.size
    return OrderingProblem.from_parameters(
        costs=[0.0] * size,
        selectivities=[1.0] * size,
        transfer=distances,
        names=names,
        name="bottleneck-tsp",
    )


def distance_matrix_from_problem(problem: OrderingProblem) -> CommunicationCostMatrix:
    """Extract the edge-weight matrix of a bottleneck-TSP-shaped problem."""
    if not is_bottleneck_tsp_instance(problem):
        raise OptimizationError(
            "the problem is not a bottleneck-TSP instance "
            "(it has non-zero costs or non-unit selectivities)"
        )
    return problem.transfer


def is_bottleneck_tsp_instance(problem: OrderingProblem, tolerance: float = 1e-12) -> bool:
    """Whether ``problem`` is the paper's bottleneck-TSP special case."""
    return (
        all(abs(cost) <= tolerance for cost in problem.costs)
        and all(abs(sigma - 1.0) <= tolerance for sigma in problem.selectivities)
        and problem.sink_transfer is None
    )


@dataclass(frozen=True)
class BottleneckPathResult:
    """Outcome of the bottleneck Hamiltonian-path search."""

    path: tuple[int, ...]
    """Visiting order of the nodes."""

    bottleneck: float
    """Largest edge weight along :attr:`path`."""

    feasibility_checks: int
    """Number of threshold-feasibility searches performed."""

    nodes_expanded: int
    """Backtracking nodes expanded across all feasibility checks."""

    elapsed_seconds: float
    """Wall-clock time of the search."""


class BottleneckPathSolver:
    """Exact bottleneck Hamiltonian-path solver (binary search + backtracking).

    The solver binary-searches over the sorted distinct edge weights; for each
    candidate threshold it checks whether a Hamiltonian path using only edges
    not exceeding the threshold exists, via depth-first backtracking with a
    connectivity-based pruning test.  Exponential in the worst case (the
    problem is NP-hard) but fast on the small instances used for
    cross-validation.
    """

    def __init__(self, max_size: int = 12) -> None:
        if max_size < 2:
            raise ValueError("max_size must be at least 2")
        self.max_size = max_size

    def solve(self, distances: CommunicationCostMatrix) -> BottleneckPathResult:
        """Return a Hamiltonian path minimising the largest traversed edge."""
        size = distances.size
        if size > self.max_size:
            raise ProblemTooLargeError(
                f"bottleneck path search is limited to {self.max_size} nodes, got {size}"
            )
        stopwatch = Stopwatch().start()
        if size == 1:
            return BottleneckPathResult((0,), 0.0, 0, 0, stopwatch.stop())

        weights = sorted(
            {distances.cost(i, j) for i in range(size) for j in range(size) if i != j}
        )
        feasibility_checks = 0
        nodes_expanded = 0
        best_path: tuple[int, ...] | None = None

        low, high = 0, len(weights) - 1
        while low <= high:
            middle = (low + high) // 2
            threshold = weights[middle]
            feasibility_checks += 1
            path, expanded = self._hamiltonian_path(distances, threshold)
            nodes_expanded += expanded
            if path is not None:
                best_path = path
                high = middle - 1
            else:
                low = middle + 1

        if best_path is None:
            raise OptimizationError("no Hamiltonian path exists (unreachable for complete graphs)")
        bottleneck = max(
            distances.cost(best_path[i], best_path[i + 1]) for i in range(size - 1)
        )
        return BottleneckPathResult(
            path=best_path,
            bottleneck=bottleneck,
            feasibility_checks=feasibility_checks,
            nodes_expanded=nodes_expanded,
            elapsed_seconds=stopwatch.stop(),
        )

    # -- feasibility test ------------------------------------------------------

    def _hamiltonian_path(
        self, distances: CommunicationCostMatrix, threshold: float
    ) -> tuple[tuple[int, ...] | None, int]:
        """Find a Hamiltonian path using only edges ``<= threshold`` (or ``None``)."""
        size = distances.size
        adjacency = [
            [j for j in range(size) if j != i and distances.cost(i, j) <= threshold]
            for i in range(size)
        ]
        expanded = 0

        def backtrack(path: list[int], visited: set[int]) -> list[int] | None:
            nonlocal expanded
            expanded += 1
            if len(path) == size:
                return path
            if not self._remaining_reachable(adjacency, path[-1], visited, size):
                return None
            last = path[-1]
            for neighbour in adjacency[last]:
                if neighbour in visited:
                    continue
                path.append(neighbour)
                visited.add(neighbour)
                found = backtrack(path, visited)
                if found is not None:
                    return found
                visited.remove(neighbour)
                path.pop()
            return None

        for start in range(size):
            result = backtrack([start], {start})
            if result is not None:
                return tuple(result), expanded
        return None, expanded

    @staticmethod
    def _remaining_reachable(
        adjacency: list[list[int]], last: int, visited: set[int], size: int
    ) -> bool:
        """Pruning test: every unvisited node must be reachable from ``last``.

        Reachability is computed on the threshold graph restricted to unvisited
        nodes plus ``last``; a disconnected remainder can never be covered by a
        single continuing path.
        """
        remaining = size - len(visited)
        if remaining == 0:
            return True
        stack = [last]
        seen = {last}
        reached = 0
        while stack:
            node = stack.pop()
            for neighbour in adjacency[node]:
                if neighbour in visited or neighbour in seen:
                    continue
                seen.add(neighbour)
                reached += 1
                stack.append(neighbour)
        return reached == remaining


def bottleneck_path(
    distances: CommunicationCostMatrix | Sequence[Sequence[float]], max_size: int = 12
) -> BottleneckPathResult:
    """Convenience wrapper around :class:`BottleneckPathSolver`."""
    if not isinstance(distances, CommunicationCostMatrix):
        distances = CommunicationCostMatrix(distances)
    return BottleneckPathSolver(max_size=max_size).solve(distances)

"""Service descriptions.

A *service* (``WS_i`` in the paper) is a remote filtering/processing operator
characterised by its average per-tuple processing cost ``c_i`` and its
selectivity ``σ_i`` (average number of output tuples per input tuple).  The
paper's restricted setting has every service selective (``σ_i <= 1``) and
single-threaded; both restrictions are modelled here and relaxed elsewhere
(:mod:`repro.core.bounds` handles ``σ > 1``; the simulator supports
multi-threaded services).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.exceptions import InvalidServiceError
from repro.utils.validation import require_non_negative, require_positive

__all__ = ["Service", "ServiceRegistry"]


@dataclass(frozen=True)
class Service:
    """A single Web Service participating in a pipelined query.

    Parameters
    ----------
    name:
        Human-readable identifier; must be unique within a problem.
    cost:
        Average time ``c_i`` (in abstract time units, e.g. seconds) the service
        needs to process one input tuple.  Must be ``>= 0``.
    selectivity:
        Average ratio ``σ_i`` of output tuples to input tuples.  ``σ < 1``
        models a filter, ``σ > 1`` a proliferative service (e.g. a person →
        credit-card-numbers lookup).  Must be ``> 0``.
    host:
        Optional name of the host machine the service runs on.  Used by the
        network substrate to derive transfer costs and by the simulator for
        reporting; the optimizers only look at the cost matrix.
    threads:
        Number of worker threads the service uses.  The paper's analysis
        assumes ``1``; the simulator honours larger values.
    """

    name: str
    cost: float
    selectivity: float
    host: str | None = None
    threads: int = 1

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise InvalidServiceError(f"service name must be a non-empty string, got {self.name!r}")
        object.__setattr__(
            self, "cost", require_non_negative(self.cost, f"cost of service {self.name!r}", InvalidServiceError)
        )
        object.__setattr__(
            self,
            "selectivity",
            require_positive(self.selectivity, f"selectivity of service {self.name!r}", InvalidServiceError),
        )
        if not isinstance(self.threads, int) or self.threads < 1:
            raise InvalidServiceError(
                f"threads of service {self.name!r} must be a positive integer, got {self.threads!r}"
            )

    @property
    def is_selective(self) -> bool:
        """Whether the service filters tuples (``σ <= 1``)."""
        return self.selectivity <= 1.0

    @property
    def is_proliferative(self) -> bool:
        """Whether the service produces more tuples than it consumes (``σ > 1``)."""
        return self.selectivity > 1.0

    def with_host(self, host: str) -> "Service":
        """Return a copy of this service pinned to ``host``."""
        return Service(
            name=self.name,
            cost=self.cost,
            selectivity=self.selectivity,
            host=host,
            threads=self.threads,
        )

    def scaled(self, cost_factor: float = 1.0, selectivity_factor: float = 1.0) -> "Service":
        """Return a copy with cost and selectivity scaled by the given factors."""
        return Service(
            name=self.name,
            cost=self.cost * cost_factor,
            selectivity=self.selectivity * selectivity_factor,
            host=self.host,
            threads=self.threads,
        )

    def describe(self) -> str:
        """One-line human readable description used in reports and examples."""
        kind = "filter" if self.is_selective else "proliferative"
        host = f" @ {self.host}" if self.host else ""
        return f"{self.name}{host}: c={self.cost:.4g}, sigma={self.selectivity:.4g} ({kind})"


class ServiceRegistry:
    """An ordered, name-indexed collection of services.

    The registry guarantees unique names and stable indices, which the rest of
    the library uses to address services (plans are tuples of indices).
    """

    def __init__(self, services: Iterable[Service] = ()) -> None:
        self._services: list[Service] = []
        self._index: dict[str, int] = {}
        for service in services:
            self.add(service)

    def add(self, service: Service) -> int:
        """Add a service and return its index.  Duplicate names are rejected."""
        if not isinstance(service, Service):
            raise InvalidServiceError(f"expected a Service, got {type(service).__name__}")
        if service.name in self._index:
            raise InvalidServiceError(f"duplicate service name {service.name!r}")
        index = len(self._services)
        self._services.append(service)
        self._index[service.name] = index
        return index

    def index_of(self, name: str) -> int:
        """Return the index of the service named ``name``."""
        try:
            return self._index[name]
        except KeyError:
            raise InvalidServiceError(f"unknown service {name!r}") from None

    def get(self, name: str) -> Service:
        """Return the service named ``name``."""
        return self._services[self.index_of(name)]

    def names(self) -> list[str]:
        """Return all service names in index order."""
        return [service.name for service in self._services]

    def as_tuple(self) -> tuple[Service, ...]:
        """Return the services as an index-ordered tuple."""
        return tuple(self._services)

    def by_host(self) -> Mapping[str | None, list[Service]]:
        """Group services by host name."""
        groups: dict[str | None, list[Service]] = {}
        for service in self._services:
            groups.setdefault(service.host, []).append(service)
        return groups

    def __len__(self) -> int:
        return len(self._services)

    def __iter__(self) -> Iterator[Service]:
        return iter(self._services)

    def __getitem__(self, index: int) -> Service:
        return self._services[index]

    def __contains__(self, name: object) -> bool:
        return name in self._index

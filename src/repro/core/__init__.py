"""Core library: the paper's cost model, branch-and-bound optimizer and baselines."""

from repro.core.beam_search import BeamSearchOptimizer, beam_search
from repro.core.bounds import ResidualBound, epsilon_bar, initial_upper_bound, max_residual_cost
from repro.core.branch_and_bound import (
    BranchAndBoundOptimizer,
    BranchAndBoundOptions,
    SuccessorOrder,
    branch_and_bound,
)
from repro.core.bottleneck_tsp import (
    BottleneckPathResult,
    BottleneckPathSolver,
    bottleneck_path,
    distance_matrix_from_problem,
    is_bottleneck_tsp_instance,
    problem_from_distance_matrix,
)
from repro.core.cost_model import (
    CommunicationCostMatrix,
    StageCost,
    bottleneck_cost,
    bottleneck_stage,
    prefix_products,
    stage_costs,
)
from repro.core.dynamic_programming import DynamicProgrammingOptimizer, dynamic_programming
from repro.core.evaluation import NeighborhoodEvaluator, PlanEvaluator, PrefixState
from repro.core.exhaustive import ExhaustiveOptimizer, exhaustive_search
from repro.core.greedy import GreedyOptimizer, GreedyStrategy, greedy, random_plan
from repro.core.local_search import (
    HillClimbingOptimizer,
    SimulatedAnnealingOptimizer,
    SimulatedAnnealingOptions,
    hill_climbing,
    simulated_annealing,
)
from repro.core.optimizer import ALGORITHMS, available_algorithms, compare, optimize
from repro.core.plan import PartialPlan, Plan
from repro.core.precedence import PrecedenceGraph
from repro.core.problem import OrderingProblem
from repro.core.result import OptimizationResult, SearchStatistics
from repro.core.service import Service, ServiceRegistry
from repro.core.srivastava import SrivastavaOptimizer, srivastava
from repro.core.vector import (
    BatchEvaluator,
    batch_evaluator,
    default_kernel,
    numpy_available,
    prepare_kernel,
    resolve_kernel,
    set_default_kernel,
)

__all__ = [
    "ALGORITHMS",
    "BatchEvaluator",
    "BeamSearchOptimizer",
    "BottleneckPathResult",
    "BottleneckPathSolver",
    "BranchAndBoundOptimizer",
    "BranchAndBoundOptions",
    "CommunicationCostMatrix",
    "DynamicProgrammingOptimizer",
    "ExhaustiveOptimizer",
    "GreedyOptimizer",
    "GreedyStrategy",
    "HillClimbingOptimizer",
    "NeighborhoodEvaluator",
    "OptimizationResult",
    "OrderingProblem",
    "PartialPlan",
    "Plan",
    "PlanEvaluator",
    "PrecedenceGraph",
    "PrefixState",
    "ResidualBound",
    "SearchStatistics",
    "Service",
    "ServiceRegistry",
    "SimulatedAnnealingOptimizer",
    "SimulatedAnnealingOptions",
    "SrivastavaOptimizer",
    "StageCost",
    "SuccessorOrder",
    "available_algorithms",
    "batch_evaluator",
    "beam_search",
    "bottleneck_cost",
    "bottleneck_path",
    "bottleneck_stage",
    "branch_and_bound",
    "compare",
    "default_kernel",
    "distance_matrix_from_problem",
    "dynamic_programming",
    "epsilon_bar",
    "exhaustive_search",
    "greedy",
    "hill_climbing",
    "initial_upper_bound",
    "is_bottleneck_tsp_instance",
    "max_residual_cost",
    "numpy_available",
    "optimize",
    "prefix_products",
    "prepare_kernel",
    "problem_from_distance_matrix",
    "random_plan",
    "resolve_kernel",
    "set_default_kernel",
    "simulated_annealing",
    "srivastava",
    "stage_costs",
]

"""The incremental plan-evaluation kernel shared by every optimizer.

Every search algorithm in the library scores candidate plans under the
bottleneck cost metric (Eq. 1).  The validated, from-scratch implementation
lives in :mod:`repro.core.cost_model` and stays the public boundary (and the
oracle of the property-based tests) — but it re-validates the order and builds
one :class:`~repro.core.cost_model.StageCost` object per stage on every call,
which is far too slow for the inner loops of exhaustive enumeration, local
search or branch-and-bound.  This module provides the fast path:

* :class:`PlanEvaluator` — bound once to a problem; pre-extracts the cost,
  selectivity, transfer-row and sink-transfer arrays (plus precedence
  predecessor bitmasks) and evaluates complete plans in one tight loop with
  no validation and no intermediate objects.
* :class:`PrefixState` — an immutable, O(1)-extend prefix of a plan carrying
  the input rate, the running bottleneck maximum (``ε``) and its position,
  and the last service.  Constructive searches (greedy, beam,
  branch-and-bound, exhaustive enumeration) grow plans through it instead of
  re-scoring prefixes from scratch.
* :class:`NeighborhoodEvaluator` — delta evaluation for swap and
  relocate/insert moves around a fixed base plan.  Only the affected window
  is re-scored; the scan stops early once the running maximum can no longer
  change (rate stabilization) or once it meets a caller-supplied incumbent
  (short-circuiting).
* residual (``ε̄``) bounds over raw arrays, backing
  :func:`repro.core.bounds.max_residual_cost`.

Bit-identity with the oracle
----------------------------

All kernel arithmetic uses exactly the floating-point expression shapes of
:func:`repro.core.cost_model.stage_costs`: a stage term is computed as
``rate * c + rate * sigma * t`` (processing plus transfer, each left to
right) and rates are accumulated by the same left-to-right multiplication
chain.  A complete :class:`PrefixState`'s ``epsilon``,
:meth:`PlanEvaluator.cost`, and every delta move therefore return *the same
float, bit for bit,* as :func:`repro.core.cost_model.bottleneck_cost` on the
same order — refactored optimizers report identical costs, not merely close
ones.  Delta moves stay exact because the suffix of a move is only reused
when the recomputed input rate is bitwise equal to the base plan's rate at
that position (same remaining multiplication chain, hence identical terms).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.problem import OrderingProblem

__all__ = [
    "PlanEvaluator",
    "PrefixState",
    "NeighborhoodEvaluator",
    "KernelProfile",
    "enable_kernel_profiling",
    "disable_kernel_profiling",
    "kernel_profile",
]

_INF = float("inf")
_NEG_INF = float("-inf")


class KernelProfile:
    """Counts of kernel evaluations since profiling was enabled.

    The counters are plain attribute increments guarded by a single
    ``is not None`` check in the hot loops — cheap enough to leave on in a
    serving process, absent entirely when profiling is off.  Increments are
    not locked: under free threading concurrent updates may drop a tick,
    which is acceptable for rate estimation (counts are exact in the
    single-threaded optimizer processes where most evaluation happens).
    """

    __slots__ = (
        "full_evaluations",
        "bounded_evaluations",
        "delta_evaluations",
        "batch_evaluations",
        "started",
    )

    def __init__(self) -> None:
        self.full_evaluations = 0
        """Complete-plan scores (:meth:`PlanEvaluator.cost`)."""
        self.bounded_evaluations = 0
        """Short-circuited scores (:meth:`PlanEvaluator.cost_bounded`)."""
        self.delta_evaluations = 0
        """Neighborhood delta scans (:meth:`NeighborhoodEvaluator._scan`)."""
        self.batch_evaluations = 0
        """Candidates scored through the vector kernel
        (:class:`repro.core.vector.BatchEvaluator`) — incremented once per
        batch call by the batch size, so profiling cost stays per-call."""
        self.started = time.perf_counter()

    def counts(self) -> dict[str, int]:
        """The raw counters, keyed by kind."""
        return {
            "full": self.full_evaluations,
            "bounded": self.bounded_evaluations,
            "delta": self.delta_evaluations,
            "batch": self.batch_evaluations,
        }

    def snapshot(self) -> dict[str, float | int]:
        """Counters plus derived rates, JSON-ready for a stats endpoint."""
        elapsed = time.perf_counter() - self.started
        total = (
            self.full_evaluations
            + self.bounded_evaluations
            + self.delta_evaluations
            + self.batch_evaluations
        )
        full_or_bounded = self.full_evaluations + self.bounded_evaluations
        return {
            "full_evaluations": self.full_evaluations,
            "bounded_evaluations": self.bounded_evaluations,
            "delta_evaluations": self.delta_evaluations,
            "batch_evaluations": self.batch_evaluations,
            "evaluations_per_second": total / elapsed if elapsed > 0 else 0.0,
            # How much work delta evaluation displaced: the share of scoring
            # answered by windowed scans instead of full/bounded passes.
            "delta_share": self.delta_evaluations / total if total else 0.0,
            "delta_vs_full": (
                self.delta_evaluations / full_or_bounded if full_or_bounded else 0.0
            ),
        }


_profile: KernelProfile | None = None


def enable_kernel_profiling() -> KernelProfile:
    """Turn on kernel evaluation counting (idempotent); returns the profile."""
    global _profile
    if _profile is None:
        _profile = KernelProfile()
    return _profile


def disable_kernel_profiling() -> None:
    """Turn counting off and drop the profile."""
    global _profile
    _profile = None


def kernel_profile() -> KernelProfile | None:
    """The live profile, or ``None`` when profiling is off."""
    return _profile


class PlanEvaluator:
    """Validation-free bottleneck-cost evaluation bound to one problem.

    Build one per problem (or let :meth:`repro.core.problem.OrderingProblem.evaluator`
    cache it) and reuse it for every candidate order.  The evaluator never
    validates orders: callers are expected to feed permutations of the
    problem's services, as the optimizers' search structures guarantee by
    construction.  The validated entry points remain on
    :class:`~repro.core.problem.OrderingProblem`.
    """

    __slots__ = (
        "problem",
        "size",
        "costs",
        "selectivities",
        "rows",
        "sink",
        "predecessor_masks",
        "batch_cache",
    )

    def __init__(self, problem: "OrderingProblem") -> None:
        self.problem = problem
        self.batch_cache: dict | None = None
        """Lazily-populated :class:`repro.core.vector.BatchEvaluator` cache,
        keyed by ``fast_math`` — managed by :func:`repro.core.vector.batch_evaluator`."""
        self.size = problem.size
        self.costs: tuple[float, ...] = problem.costs
        self.selectivities: tuple[float, ...] = problem.selectivities
        self.rows: tuple[tuple[float, ...], ...] = tuple(
            problem.transfer.row(i) for i in range(problem.size)
        )
        sink = problem.sink_transfer
        self.sink: tuple[float, ...] = (
            tuple(float(value) for value in sink) if sink is not None else (0.0,) * problem.size
        )
        precedence = problem.precedence
        if precedence is not None and precedence.has_constraints:
            masks = []
            for index in range(problem.size):
                mask = 0
                for predecessor in precedence.predecessors(index):
                    mask |= 1 << predecessor
                masks.append(mask)
            self.predecessor_masks: tuple[int, ...] | None = tuple(masks)
        else:
            self.predecessor_masks = None

    # -- complete-plan evaluation -----------------------------------------

    def cost(self, order: Sequence[int]) -> float:
        """Bottleneck cost of the complete plan ``order`` (no validation).

        Bit-identical to :func:`repro.core.cost_model.bottleneck_cost`.
        """
        if _profile is not None:
            _profile.full_evaluations += 1
        costs = self.costs
        selectivities = self.selectivities
        rows = self.rows
        sink = self.sink
        last_position = len(order) - 1
        rate = 1.0
        best = _NEG_INF
        for position, service in enumerate(order):
            if position < last_position:
                outgoing = rows[service][order[position + 1]]
            else:
                outgoing = sink[service]
            term = rate * costs[service] + rate * selectivities[service] * outgoing
            if term > best:
                best = term
            rate = rate * selectivities[service]
        return best

    def cost_bounded(self, order: Sequence[int], bound: float) -> float:
        """Evaluate ``order``, abandoning it once the running maximum meets ``bound``.

        Returns the running maximum at the point the scan stopped.  A return
        value ``< bound`` is the exact bottleneck cost; a value ``>= bound``
        is a valid *lower* bound of it (the plan is certainly no better than
        ``bound``, so an incumbent-driven caller can discard it).
        """
        if _profile is not None:
            _profile.bounded_evaluations += 1
        costs = self.costs
        selectivities = self.selectivities
        rows = self.rows
        sink = self.sink
        last_position = len(order) - 1
        rate = 1.0
        best = _NEG_INF
        for position, service in enumerate(order):
            if position < last_position:
                outgoing = rows[service][order[position + 1]]
            else:
                outgoing = sink[service]
            term = rate * costs[service] + rate * selectivities[service] * outgoing
            if term > best:
                best = term
                if best >= bound:
                    return best
            rate = rate * selectivities[service]
        return best

    # -- prefix states ------------------------------------------------------

    def root(self) -> "PrefixState":
        """The empty prefix, starting point of every constructive search."""
        return PrefixState(self, None, -1, 0, 0, 1.0, 1.0, _NEG_INF, -1, 0.0, -1)

    def prefix(self, order: Sequence[int]) -> "PrefixState":
        """The prefix state reached by appending ``order`` to the empty prefix."""
        state = self.root()
        for index in order:
            state = state.extend(index)
        return state

    def neighborhood(self, order: Sequence[int]) -> "NeighborhoodEvaluator":
        """Delta evaluation of swap/relocate moves around the complete plan ``order``."""
        return NeighborhoodEvaluator(self, tuple(order))

    # -- residual (epsilon-bar) bounds --------------------------------------

    def residual_parts(
        self, placed_mask: int, last: int | None, last_rate: float, output_rate: float
    ) -> tuple[float, int | None, float]:
        """``(ε̄, critical service, last-service bound)`` for an arbitrary prefix.

        The arithmetic mirrors the formula documented in
        :mod:`repro.core.bounds` exactly (same expression shapes, same
        iteration order), operating on the pre-extracted arrays instead of the
        problem object.
        """
        size = self.size
        costs = self.costs
        selectivities = self.selectivities
        rows = self.rows
        sink = self.sink
        remaining = [index for index in range(size) if not placed_mask >> index & 1]

        last_bound = 0.0
        if last is not None and last >= 0 and remaining:
            worst = sink[last]
            row = rows[last]
            for destination in remaining:
                outgoing = row[destination]
                if outgoing > worst:
                    worst = outgoing
            last_bound = last_rate * (costs[last] + selectivities[last] * worst)

        proliferation = 1.0
        for index in remaining:
            sigma = selectivities[index]
            if sigma > 1.0:
                proliferation *= sigma

        best_value = last_bound
        critical: int | None = None
        for index in remaining:
            sigma = selectivities[index]
            inflation = proliferation / sigma if sigma > 1.0 else proliferation
            rate_bound = output_rate * inflation
            worst = sink[index]
            row = rows[index]
            for destination in remaining:
                if destination == index:
                    continue
                outgoing = row[destination]
                if outgoing > worst:
                    worst = outgoing
            term_bound = rate_bound * (costs[index] + sigma * worst)
            if term_bound > best_value:
                best_value = term_bound
                critical = index
        return best_value, critical, last_bound

    def residual(self, state: "PrefixState") -> tuple[float, int | None, float]:
        """``(ε̄, critical service, last-service bound)`` for ``state``."""
        return self.residual_parts(state.placed, state.last, state.rate, state.output_rate)

    def residual_value(self, state: "PrefixState") -> float:
        """Just the value of ``ε̄`` for ``state`` (Lemma 2's threshold)."""
        return self.residual(state)[0]

    def __repr__(self) -> str:
        return f"PlanEvaluator(size={self.size})"


class PrefixState:
    """An immutable plan prefix with O(1) extension.

    Unlike :class:`repro.core.plan.PartialPlan` (the validated public prefix
    API, which copies its order and prefix-product tuples on every extension),
    a ``PrefixState`` stores only the O(1) quantities the searches actually
    consult — the last service, its input rate, the output rate, the running
    bottleneck maximum ``ε`` and its position — plus a parent link from which
    the full order is reconstructed on demand (only when a plan is recorded).
    ``placed`` is a bitmask, so membership and precedence tests are integer
    operations.

    No validation is performed; the constructive searches guarantee
    permutations by construction.
    """

    __slots__ = (
        "evaluator",
        "parent",
        "last",
        "length",
        "placed",
        "rate",
        "output_rate",
        "settled_max",
        "settled_position",
        "epsilon",
        "bottleneck_position",
    )

    def __init__(
        self,
        evaluator: PlanEvaluator,
        parent: "PrefixState | None",
        last: int,
        length: int,
        placed: int,
        rate: float,
        output_rate: float,
        settled_max: float,
        settled_position: int,
        epsilon: float,
        bottleneck_position: int,
    ) -> None:
        self.evaluator = evaluator
        self.parent = parent
        self.last = last
        self.length = length
        self.placed = placed
        self.rate = rate
        self.output_rate = output_rate
        self.settled_max = settled_max
        self.settled_position = settled_position
        self.epsilon = epsilon
        self.bottleneck_position = bottleneck_position

    # -- queries -----------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """Whether no service has been placed yet."""
        return self.length == 0

    @property
    def is_complete(self) -> bool:
        """Whether every service of the problem has been placed."""
        return self.length == self.evaluator.size

    @property
    def order(self) -> tuple[int, ...]:
        """The prefix's service indices, reconstructed from the parent chain."""
        reversed_order = []
        state: PrefixState | None = self
        while state is not None and state.length:
            reversed_order.append(state.last)
            state = state.parent
        reversed_order.reverse()
        return tuple(reversed_order)

    def remaining(self) -> list[int]:
        """Indices of the services not yet placed, in index order."""
        placed = self.placed
        return [index for index in range(self.evaluator.size) if not placed >> index & 1]

    def allowed_extensions(self) -> list[int]:
        """Remaining services that may legally come next (honouring precedence)."""
        placed = self.placed
        size = self.evaluator.size
        masks = self.evaluator.predecessor_masks
        if masks is None:
            return [index for index in range(size) if not placed >> index & 1]
        return [
            index
            for index in range(size)
            if not placed >> index & 1 and not masks[index] & ~placed
        ]

    # -- extension ---------------------------------------------------------

    def extend(self, service_index: int) -> "PrefixState":
        """The prefix obtained by appending ``service_index`` — O(1).

        Appending settles the previous last service's term (its outgoing
        transfer is now known) and adds the new service's processing-only
        term — or its full term including the sink transfer when the
        extension completes the plan, so a complete state's ``epsilon`` *is*
        the plan's bottleneck cost.
        """
        if _profile is not None:
            _profile.delta_evaluations += 1
        evaluator = self.evaluator
        costs = evaluator.costs
        selectivities = evaluator.selectivities

        settled_max = self.settled_max
        settled_position = self.settled_position
        length = self.length
        if length:
            last = self.last
            rate = self.rate
            settled_term = (
                rate * costs[last]
                + rate * selectivities[last] * evaluator.rows[last][service_index]
            )
            if settled_term > settled_max:
                settled_max = settled_term
                settled_position = length - 1

        new_rate = self.output_rate
        if length + 1 == evaluator.size:
            partial_term = (
                new_rate * costs[service_index]
                + new_rate * selectivities[service_index] * evaluator.sink[service_index]
            )
        else:
            partial_term = new_rate * costs[service_index]

        if settled_max >= partial_term:
            epsilon = settled_max
            bottleneck_position = settled_position
        else:
            epsilon = partial_term
            bottleneck_position = length

        return PrefixState(
            evaluator,
            self,
            service_index,
            length + 1,
            self.placed | (1 << service_index),
            new_rate,
            new_rate * selectivities[service_index],
            settled_max,
            settled_position,
            epsilon,
            bottleneck_position,
        )

    def __repr__(self) -> str:
        return f"PrefixState(order={self.order!r}, epsilon={self.epsilon:.6g})"


class NeighborhoodEvaluator:
    """Delta evaluation of swap and relocate/insert moves around one base plan.

    Precomputes, for the base order, the per-position input rates, stage
    terms, and prefix/suffix running maxima.  A move's cost then only
    re-scores the window of positions whose term can change:

    * the scan starts at the position *before* the first touched index (its
      transfer target changed) and reuses the prefix maximum up to there;
    * past the last touched index the scan stops as soon as the recomputed
      input rate is bitwise equal to the base rate at that position — from
      there on every term is identical, so the precomputed suffix maximum
      finishes the evaluation (*rate stabilization*);
    * an optional ``bound`` (the incumbent) aborts the scan the moment the
      running maximum meets it.

    Unbounded move costs are bit-identical to evaluating the moved order from
    scratch; bounded calls return an exact cost when the result is below the
    bound and a valid lower bound otherwise.
    """

    __slots__ = (
        "evaluator",
        "order",
        "size",
        "rates",
        "terms",
        "prefix_max",
        "suffix_max",
        "before_masks",
        "cost",
    )

    def __init__(self, evaluator: PlanEvaluator, order: tuple[int, ...]) -> None:
        self.evaluator = evaluator
        self.order = order
        size = len(order)
        self.size = size
        costs = evaluator.costs
        selectivities = evaluator.selectivities
        rows = evaluator.rows
        sink = evaluator.sink

        rates = [1.0] * size
        terms = [0.0] * size
        rate = 1.0
        last_position = size - 1
        for position, service in enumerate(order):
            rates[position] = rate
            if position < last_position:
                outgoing = rows[service][order[position + 1]]
            else:
                outgoing = sink[service]
            terms[position] = rate * costs[service] + rate * selectivities[service] * outgoing
            rate = rate * selectivities[service]
        self.rates = rates
        self.terms = terms

        prefix_max = [_NEG_INF] * (size + 1)
        for position in range(size):
            term = terms[position]
            prefix_max[position + 1] = term if term > prefix_max[position] else prefix_max[position]
        suffix_max = [_NEG_INF] * (size + 1)
        for position in range(size - 1, -1, -1):
            term = terms[position]
            tail = suffix_max[position + 1]
            suffix_max[position] = term if term > tail else tail
        self.prefix_max = prefix_max
        self.suffix_max = suffix_max
        self.cost = prefix_max[size]

        if evaluator.predecessor_masks is not None:
            before_masks = [0] * size
            mask = 0
            for position, service in enumerate(order):
                before_masks[position] = mask
                mask |= 1 << service
            self.before_masks: list[int] | None = before_masks
        else:
            self.before_masks = None

    # -- move materialization ----------------------------------------------

    def swapped(self, i: int, j: int) -> tuple[int, ...]:
        """The base order with positions ``i`` and ``j`` exchanged."""
        moved = list(self.order)
        moved[i], moved[j] = moved[j], moved[i]
        return tuple(moved)

    def relocated(self, i: int, j: int) -> tuple[int, ...]:
        """The base order with the service at position ``i`` moved to position ``j``."""
        moved = list(self.order)
        moved.insert(j, moved.pop(i))
        return tuple(moved)

    # -- move costs ---------------------------------------------------------

    def swap_cost(self, i: int, j: int, bound: float = _INF) -> float:
        """Bottleneck cost of :meth:`swapped`\\ ``(i, j)`` by delta evaluation."""
        if i == j:
            return self.cost
        if i > j:
            i, j = j, i
        moved = list(self.order)
        moved[i], moved[j] = moved[j], moved[i]
        return self._scan(moved, i - 1 if i else 0, j, bound)

    def relocate_cost(self, i: int, j: int, bound: float = _INF) -> float:
        """Bottleneck cost of :meth:`relocated`\\ ``(i, j)`` by delta evaluation."""
        if i == j:
            return self.cost
        moved = list(self.order)
        moved.insert(j, moved.pop(i))
        low = i if i < j else j
        high = j if i < j else i
        return self._scan(moved, low - 1 if low else 0, high, bound)

    insert_cost = relocate_cost
    """Alias: an *insert* move is a relocate of one service to a new position."""

    def _scan(self, moved: list[int], start: int, high: int, bound: float) -> float:
        """Re-score ``moved`` from ``start``; positions past ``high`` match the base."""
        if _profile is not None:
            _profile.delta_evaluations += 1
        evaluator = self.evaluator
        costs = evaluator.costs
        selectivities = evaluator.selectivities
        rows = evaluator.rows
        sink = evaluator.sink
        rates = self.rates
        suffix_max = self.suffix_max
        size = self.size
        last_position = size - 1

        running = self.prefix_max[start]
        rate = rates[start]
        for position in range(start, size):
            service = moved[position]
            if position < last_position:
                outgoing = rows[service][moved[position + 1]]
            else:
                outgoing = sink[service]
            term = rate * costs[service] + rate * selectivities[service] * outgoing
            if term > running:
                running = term
                if running >= bound:
                    return running
            rate = rate * selectivities[service]
            following = position + 1
            if following > high and following < size and rate == rates[following]:
                # Rate stabilized bitwise: every remaining term equals the
                # base plan's, so the precomputed suffix maximum is exact.
                tail = suffix_max[following]
                return tail if tail > running else running
        return running

    # -- move feasibility ----------------------------------------------------

    def swap_feasible(self, i: int, j: int) -> bool:
        """Whether :meth:`swapped`\\ ``(i, j)`` satisfies the precedence constraints."""
        masks = self.evaluator.predecessor_masks
        if masks is None:
            return True
        if i > j:
            i, j = j, i
        order = self.order
        assert self.before_masks is not None
        placed = self.before_masks[i]
        for position in range(i, j + 1):
            if position == i:
                service = order[j]
            elif position == j:
                service = order[i]
            else:
                service = order[position]
            if masks[service] & ~placed:
                return False
            placed |= 1 << service
        return True

    def relocate_feasible(self, i: int, j: int) -> bool:
        """Whether :meth:`relocated`\\ ``(i, j)`` satisfies the precedence constraints."""
        masks = self.evaluator.predecessor_masks
        if masks is None:
            return True
        if i == j:
            return True
        order = self.order
        moved_service = order[i]
        low = i if i < j else j
        high = j if i < j else i
        assert self.before_masks is not None
        placed = self.before_masks[low]
        if i < j:
            for position in range(low, high + 1):
                service = moved_service if position == j else order[position + 1]
                if masks[service] & ~placed:
                    return False
                placed |= 1 << service
        else:
            for position in range(low, high + 1):
                service = moved_service if position == j else order[position - 1]
                if masks[service] & ~placed:
                    return False
                placed |= 1 << service
        return True

    def __repr__(self) -> str:
        return f"NeighborhoodEvaluator(size={self.size}, cost={self.cost:.6g})"

"""Held–Karp-style dynamic programming over service subsets.

The bottleneck objective decomposes stage-wise, so the classical
subset/last-service dynamic programme applies: for every subset ``M`` of
services and every ``last in M`` we keep the smallest achievable maximum over
the *settled* terms of the services of ``M`` placed before ``last`` (the term
of ``last`` itself is settled only when its successor becomes known).  The
programme runs in ``O(2^N * N^2)`` time, exponentially better than ``N!``
enumeration, and serves as a second independent exact baseline for the
branch-and-bound optimizer (experiments E1–E3).

The state table is laid out as *per-mask flat arrays* — ``values[mask]`` is a
plain list indexed by ``last``, allocated lazily for reachable masks only —
instead of a ``dict`` keyed by ``(mask, last)`` tuples: the inner loop then
costs two list indexings per transition rather than a tuple construction plus
two hash probes, which is where the dict-based formulation spent most of its
time.  Per-service successor tuples ``(next, bit, predecessor_mask, t)`` are
precomputed once, so the transition loop touches no accessor methods at all.
The transition arithmetic keeps the evaluation kernel's term expression
shapes (``rate * c + rate * sigma * t``), so the winning plan's reported cost
is bit-identical to the from-scratch cost model, and the iteration order
(mask ascending, last ascending, next ascending, strict improvement) is
unchanged — the flat layout returns exactly the plans the dict layout did.

On the vector kernel (:mod:`repro.core.vector`) the programme is processed
*layer by layer* (masks grouped by popcount): all reachable ``(mask, last)``
states of a layer become one ``states × services`` settled-term matrix
(:meth:`~repro.core.vector.BatchEvaluator.transition_terms`), and grouped
``minimum.reduceat`` reductions write every layer-``k+1`` cell in a handful
of array operations.  This reorders the relaxations relative to the scalar
mask-ascending sweep, but each target cell ``(mask | bit(next), next)`` has a
*unique* source mask (``mask``), so its final value is a min over one group
however the sweep is ordered — and taking the *first* row of the group
attaining the min reproduces the scalar strict-improvement parent tie-break
(last ascending).  Both kernels therefore return the identical plan with
bit-identical cost.  ``dp_states`` (cells reached) matches the scalar count
exactly; ``nodes_expanded`` counts cell writes, which on the vector path
equals ``dp_states`` rather than the scalar sweep's path-dependent
strict-improvement count.
"""

from __future__ import annotations

from repro.core.problem import OrderingProblem
from repro.core.result import OptimizationResult, SearchStatistics
from repro.core.vector import batch_evaluator, resolve_kernel
from repro.exceptions import OptimizationError, ProblemTooLargeError
from repro.utils.timing import Stopwatch

__all__ = ["DynamicProgrammingOptimizer", "dynamic_programming"]

_INF = float("inf")

_VECTOR_DP_MAX_SIZE = 20
"""Largest instance the layered vector sweep takes on: it keeps dense
``(2^n, n)`` value/parent tables, ~250 MB at n=20.  Beyond that (only
reachable with an explicit ``max_size`` override) the lazily-allocated
scalar sweep is the safer memory trade."""

_VECTOR_DP_CHUNK_MASKS = 4096
"""Masks per batched chunk of a layer, bounding the transient term/candidate
matrices to a few tens of MB at the largest supported n."""


class DynamicProgrammingOptimizer:
    """Exact optimizer based on subset dynamic programming."""

    name = "dynamic_programming"

    def __init__(
        self, max_size: int = 18, kernel: str | None = None, fast_math: bool = False
    ) -> None:
        if max_size < 1:
            raise ValueError("max_size must be positive")
        self.max_size = max_size
        self.kernel = kernel
        self.fast_math = fast_math

    def optimize(self, problem: OrderingProblem) -> OptimizationResult:
        """Return the optimal plan for ``problem`` via subset DP."""
        size = problem.size
        if size > self.max_size:
            raise ProblemTooLargeError(
                f"dynamic programming is limited to {self.max_size} services, "
                f"the problem has {size} (raise max_size explicitly if you really want this)"
            )
        stopwatch = Stopwatch().start()
        stats = SearchStatistics()
        evaluator = problem.evaluator()
        kernel = resolve_kernel(self.kernel, size)
        if kernel == "vector" and size > _VECTOR_DP_MAX_SIZE:
            kernel = "scalar"
        costs = evaluator.costs
        selectivities = evaluator.selectivities
        rows = evaluator.rows
        sink = evaluator.sink
        precedence = problem.precedence

        full_mask = (1 << size) - 1
        predecessor_masks = [0] * size
        if precedence is not None:
            for index in range(size):
                mask = 0
                for pred in precedence.predecessors(index):
                    mask |= 1 << pred
                predecessor_masks[index] = mask

        # Selectivity product of every subset, built incrementally by lowest
        # set bit.  Both kernels share this scalar build: the multiplication
        # *order* per subset is part of the bit-exactness contract, so the
        # vector path converts the finished table instead of recomputing it.
        subset_product = [1.0] * (1 << size)
        for mask in range(1, 1 << size):
            lowest = (mask & -mask).bit_length() - 1
            subset_product[mask] = subset_product[mask ^ (1 << lowest)] * selectivities[lowest]

        if kernel == "vector":
            order, dp_states, best_cost = self._sweep_vector(
                evaluator, predecessor_masks, subset_product, stats
            )
        else:
            order, dp_states, best_cost = self._sweep_scalar(
                size, costs, selectivities, rows, sink,
                predecessor_masks, subset_product, full_mask, stats,
            )

        stats.extra["dp_states"] = dp_states
        stats.extra["kernel"] = kernel
        stats.elapsed_seconds = stopwatch.stop()

        if order is None:
            raise OptimizationError("no feasible ordering satisfies the precedence constraints")

        plan = problem.plan(order)
        return OptimizationResult(
            plan=plan, cost=plan.cost, algorithm=self.name, optimal=True, statistics=stats
        )

    # -- scalar sweep --------------------------------------------------------

    def _sweep_scalar(
        self, size, costs, selectivities, rows, sink,
        predecessor_masks, subset_product, full_mask, stats,
    ) -> tuple[list[int] | None, int, float]:
        # Per-service static transition tuples: every feasible-by-identity
        # successor of `last` with its bit, precedence mask and transfer cost.
        successors: list[tuple[tuple[int, int, int, float], ...]] = [
            tuple(
                (nxt, 1 << nxt, predecessor_masks[nxt], rows[last][nxt])
                for nxt in range(size)
                if nxt != last
            )
            for last in range(size)
        ]

        # values[mask][last] is the smallest achievable maximum over the
        # settled terms of mask \ {last}; parents[mask][last] the predecessor
        # of `last` in the plan attaining it (-1 for none).  Rows are
        # allocated lazily: only reachable masks ever hold a list.
        values: list[list[float] | None] = [None] * (1 << size)
        parents: list[list[int] | None] = [None] * (1 << size)
        seeds = 0
        for index in range(size):
            if predecessor_masks[index] == 0:
                row = [_INF] * size
                row[index] = 0.0
                values[1 << index] = row
                parent_row = [-1] * size
                parents[1 << index] = parent_row
                seeds += 1
        stats.nodes_expanded = seeds
        dp_states = seeds

        for mask in range(1, full_mask + 1):
            value_row = values[mask]
            if value_row is None:
                continue
            not_mask = ~mask
            for last in range(size):
                value = value_row[last]
                if value == _INF:
                    continue
                rate_before_last = subset_product[mask ^ (1 << last)]
                settled_base = rate_before_last * costs[last]
                outgoing_rate = rate_before_last * selectivities[last]
                for nxt, bit, pred_mask, transfer in successors[last]:
                    if mask & bit:
                        continue
                    if pred_mask & not_mask:
                        continue
                    settled_term = settled_base + outgoing_rate * transfer
                    candidate = value if value >= settled_term else settled_term
                    next_mask = mask | bit
                    next_row = values[next_mask]
                    if next_row is None:
                        next_row = [_INF] * size
                        values[next_mask] = next_row
                        next_parents = [-1] * size
                        parents[next_mask] = next_parents
                    if candidate < next_row[nxt]:
                        if next_row[nxt] == _INF:
                            dp_states += 1
                        next_row[nxt] = candidate
                        parents[next_mask][nxt] = last  # type: ignore[index]
                        stats.nodes_expanded += 1

        best_cost = _INF
        best_last = -1
        final_row = values[full_mask]
        if final_row is not None:
            for last in range(size):
                value = final_row[last]
                if value == _INF:
                    continue
                rate_before_last = subset_product[full_mask ^ (1 << last)]
                final_term = (
                    rate_before_last * costs[last]
                    + rate_before_last * selectivities[last] * sink[last]
                )
                total = value if value >= final_term else final_term
                stats.plans_evaluated += 1
                if total < best_cost:
                    best_cost = total
                    best_last = last

        if best_last < 0:
            return None, dp_states, best_cost
        return self._reconstruct(parents, full_mask, best_last), dp_states, best_cost

    # -- layered vector sweep -------------------------------------------------

    def _sweep_vector(
        self, evaluator, predecessor_masks, subset_product, stats
    ) -> tuple[list[int] | None, int, float]:
        import numpy as np  # repro-lint: disable=RL004 — vector-only path; resolve_kernel proved numpy importable

        batch = batch_evaluator(evaluator, self.fast_math)
        size = evaluator.size
        full_mask = (1 << size) - 1
        products = np.asarray(subset_product, dtype=np.float64)
        pred_np = np.asarray(predecessor_masks, dtype=np.int64)
        bits = np.int64(1) << np.arange(size, dtype=np.int64)

        values = np.full(((1 << size), size), _INF, dtype=np.float64)
        parents = np.full(((1 << size), size), -1, dtype=np.int32)

        seed_services = [index for index in range(size) if predecessor_masks[index] == 0]
        for index in seed_services:
            values[1 << index, index] = 0.0
        dp_states = len(seed_services)
        stats.nodes_expanded = dp_states
        # 1 << i is increasing in i, so the seed layer is already mask-ascending.
        layer_masks = np.array([1 << index for index in seed_services], dtype=np.int64)

        for _ in range(size - 1):
            if layer_masks.size == 0:
                break
            next_masks: list[np.ndarray] = []
            for start in range(0, layer_masks.size, _VECTOR_DP_CHUNK_MASKS):
                chunk = layer_masks[start : start + _VECTOR_DP_CHUNK_MASKS]
                value_rows = values[chunk]
                # Row-major nonzero: states come out (mask ascending, last
                # ascending) — the order the parent tie-break relies on.
                group_ids, lasts = np.nonzero(np.isfinite(value_rows))
                state_values = value_rows[group_ids, lasts]
                state_masks = chunk[group_ids]
                rates_before = products[state_masks ^ (np.int64(1) << lasts)]
                terms = batch.transition_terms(rates_before, lasts)
                candidates = np.maximum(state_values[:, None], terms)

                # Every chunk mask has at least one finite state (it was
                # reached), so group g of the reduceat output is chunk[g].
                starts = np.flatnonzero(
                    np.concatenate(([True], group_ids[1:] != group_ids[:-1]))
                )
                mins = np.minimum.reduceat(candidates, starts, axis=0)
                # First state row attaining each group minimum = the scalar
                # sweep's strict-improvement winner (lasts ascend within a mask).
                row_index = np.arange(len(group_ids))
                hits = np.where(
                    candidates == mins[group_ids], row_index[:, None], len(group_ids)
                )
                first_rows = np.minimum.reduceat(hits, starts, axis=0)
                winning_last = lasts[np.minimum(first_rows, len(group_ids) - 1)]

                feasible = ((chunk[:, None] & bits[None, :]) == 0) & (
                    (pred_np[None, :] & ~chunk[:, None]) == 0
                )
                target_rows, target_cols = np.nonzero(feasible)
                if not target_rows.size:
                    continue
                target_masks = chunk[target_rows] | bits[target_cols]
                # Each target cell has a unique source mask, so these writes
                # never collide — plain scatter assignment is the full relax.
                values[target_masks, target_cols] = mins[target_rows, target_cols]
                parents[target_masks, target_cols] = winning_last[target_rows, target_cols]
                dp_states += target_rows.size
                stats.nodes_expanded += target_rows.size
                next_masks.append(target_masks)
            if not next_masks:
                layer_masks = np.array([], dtype=np.int64)
                break
            layer_masks = np.unique(np.concatenate(next_masks))

        final_row = values[full_mask]
        finite = np.isfinite(final_row)
        if not finite.any():
            return None, dp_states, _INF
        rates_before = products[np.int64(full_mask) ^ bits]
        totals = np.maximum(final_row, batch.completion_terms(rates_before))
        totals[~finite] = _INF
        stats.plans_evaluated += int(finite.sum())
        best_last = int(totals.argmin())
        best_cost = float(totals[best_last])

        order_reversed = [best_last]
        mask, last = full_mask, best_last
        while True:
            previous = int(parents[mask, last])
            if previous < 0:
                break
            mask ^= 1 << last
            last = previous
            order_reversed.append(last)
        order_reversed.reverse()
        return order_reversed, dp_states, best_cost

    @staticmethod
    def _reconstruct(parents: list[list[int] | None], mask: int, last: int) -> list[int]:
        """Walk the predecessor pointers back to the first service."""
        order_reversed = [last]
        while True:
            parent_row = parents[mask]
            assert parent_row is not None
            previous = parent_row[last]
            if previous < 0:
                break
            mask ^= 1 << last
            last = previous
            order_reversed.append(last)
        order_reversed.reverse()
        return order_reversed


def dynamic_programming(problem: OrderingProblem, max_size: int = 18) -> OptimizationResult:
    """Convenience wrapper around :class:`DynamicProgrammingOptimizer`."""
    return DynamicProgrammingOptimizer(max_size=max_size).optimize(problem)

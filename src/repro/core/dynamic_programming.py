"""Held–Karp-style dynamic programming over service subsets.

The bottleneck objective decomposes stage-wise, so the classical
subset/last-service dynamic programme applies: for every subset ``M`` of
services and every ``last in M`` we keep the smallest achievable maximum over
the *settled* terms of the services of ``M`` placed before ``last`` (the term
of ``last`` itself is settled only when its successor becomes known).  The
programme runs in ``O(2^N * N^2)`` time, exponentially better than ``N!``
enumeration, and serves as a second independent exact baseline for the
branch-and-bound optimizer (experiments E1–E3).

The inner loop reads the evaluation kernel's pre-extracted cost/selectivity,
transfer-row and sink arrays (:meth:`~repro.core.problem.OrderingProblem.evaluator`)
instead of going through per-pair accessor methods, and uses the kernel's
term expression shapes (``rate * c + rate * sigma * t``), so the winning
plan's reported cost is bit-identical to the from-scratch cost model.
"""

from __future__ import annotations

from repro.core.problem import OrderingProblem
from repro.core.result import OptimizationResult, SearchStatistics
from repro.exceptions import OptimizationError, ProblemTooLargeError
from repro.utils.timing import Stopwatch

__all__ = ["DynamicProgrammingOptimizer", "dynamic_programming"]


class DynamicProgrammingOptimizer:
    """Exact optimizer based on subset dynamic programming."""

    name = "dynamic_programming"

    def __init__(self, max_size: int = 18) -> None:
        if max_size < 1:
            raise ValueError("max_size must be positive")
        self.max_size = max_size

    def optimize(self, problem: OrderingProblem) -> OptimizationResult:
        """Return the optimal plan for ``problem`` via subset DP."""
        size = problem.size
        if size > self.max_size:
            raise ProblemTooLargeError(
                f"dynamic programming is limited to {self.max_size} services, "
                f"the problem has {size} (raise max_size explicitly if you really want this)"
            )
        stopwatch = Stopwatch().start()
        stats = SearchStatistics()
        evaluator = problem.evaluator()
        costs = evaluator.costs
        selectivities = evaluator.selectivities
        rows = evaluator.rows
        sink = evaluator.sink
        precedence = problem.precedence

        full_mask = (1 << size) - 1
        predecessor_masks = [0] * size
        if precedence is not None:
            for index in range(size):
                mask = 0
                for pred in precedence.predecessors(index):
                    mask |= 1 << pred
                predecessor_masks[index] = mask

        # Selectivity product of every subset, built incrementally by lowest set bit.
        subset_product = [1.0] * (1 << size)
        for mask in range(1, 1 << size):
            lowest = (mask & -mask).bit_length() - 1
            subset_product[mask] = subset_product[mask ^ (1 << lowest)] * selectivities[lowest]

        # best[(mask, last)] = (value, previous_last); value is the smallest
        # achievable maximum over the settled terms of mask \ {last}.
        best: dict[tuple[int, int], tuple[float, int | None]] = {}
        for index in range(size):
            if predecessor_masks[index] == 0:
                best[(1 << index, index)] = (0.0, None)
        stats.nodes_expanded = len(best)

        for mask in range(1, 1 << size):
            for last in range(size):
                if not mask & (1 << last):
                    continue
                state = best.get((mask, last))
                if state is None:
                    continue
                value = state[0]
                rate_before_last = subset_product[mask ^ (1 << last)]
                settled_base = rate_before_last * costs[last]
                outgoing_rate = rate_before_last * selectivities[last]
                row_last = rows[last]
                for nxt in range(size):
                    bit = 1 << nxt
                    if mask & bit:
                        continue
                    if predecessor_masks[nxt] & ~mask:
                        continue
                    settled_term = settled_base + outgoing_rate * row_last[nxt]
                    candidate = value if value >= settled_term else settled_term
                    key = (mask | bit, nxt)
                    existing = best.get(key)
                    if existing is None or candidate < existing[0]:
                        best[key] = (candidate, last)
                        stats.nodes_expanded += 1

        best_cost = float("inf")
        best_last: int | None = None
        for last in range(size):
            state = best.get((full_mask, last))
            if state is None:
                continue
            rate_before_last = subset_product[full_mask ^ (1 << last)]
            final_term = (
                rate_before_last * costs[last]
                + rate_before_last * selectivities[last] * sink[last]
            )
            total = state[0] if state[0] >= final_term else final_term
            stats.plans_evaluated += 1
            if total < best_cost:
                best_cost = total
                best_last = last

        stats.extra["dp_states"] = len(best)
        stats.elapsed_seconds = stopwatch.stop()

        if best_last is None:
            raise OptimizationError("no feasible ordering satisfies the precedence constraints")

        order = self._reconstruct(best, full_mask, best_last)
        plan = problem.plan(order)
        return OptimizationResult(
            plan=plan, cost=plan.cost, algorithm=self.name, optimal=True, statistics=stats
        )

    @staticmethod
    def _reconstruct(
        best: dict[tuple[int, int], tuple[float, int | None]], mask: int, last: int
    ) -> list[int]:
        """Walk the predecessor pointers back to the first service."""
        order_reversed = [last]
        while True:
            value = best[(mask, last)]
            previous = value[1]
            if previous is None:
                break
            mask ^= 1 << last
            last = previous
            order_reversed.append(last)
        order_reversed.reverse()
        return order_reversed


def dynamic_programming(problem: OrderingProblem, max_size: int = 18) -> OptimizationResult:
    """Convenience wrapper around :class:`DynamicProgrammingOptimizer`."""
    return DynamicProgrammingOptimizer(max_size=max_size).optimize(problem)

"""Held–Karp-style dynamic programming over service subsets.

The bottleneck objective decomposes stage-wise, so the classical
subset/last-service dynamic programme applies: for every subset ``M`` of
services and every ``last in M`` we keep the smallest achievable maximum over
the *settled* terms of the services of ``M`` placed before ``last`` (the term
of ``last`` itself is settled only when its successor becomes known).  The
programme runs in ``O(2^N * N^2)`` time, exponentially better than ``N!``
enumeration, and serves as a second independent exact baseline for the
branch-and-bound optimizer (experiments E1–E3).

The state table is laid out as *per-mask flat arrays* — ``values[mask]`` is a
plain list indexed by ``last``, allocated lazily for reachable masks only —
instead of a ``dict`` keyed by ``(mask, last)`` tuples: the inner loop then
costs two list indexings per transition rather than a tuple construction plus
two hash probes, which is where the dict-based formulation spent most of its
time.  Per-service successor tuples ``(next, bit, predecessor_mask, t)`` are
precomputed once, so the transition loop touches no accessor methods at all.
The transition arithmetic keeps the evaluation kernel's term expression
shapes (``rate * c + rate * sigma * t``), so the winning plan's reported cost
is bit-identical to the from-scratch cost model, and the iteration order
(mask ascending, last ascending, next ascending, strict improvement) is
unchanged — the flat layout returns exactly the plans the dict layout did.
"""

from __future__ import annotations

from repro.core.problem import OrderingProblem
from repro.core.result import OptimizationResult, SearchStatistics
from repro.exceptions import OptimizationError, ProblemTooLargeError
from repro.utils.timing import Stopwatch

__all__ = ["DynamicProgrammingOptimizer", "dynamic_programming"]

_INF = float("inf")


class DynamicProgrammingOptimizer:
    """Exact optimizer based on subset dynamic programming."""

    name = "dynamic_programming"

    def __init__(self, max_size: int = 18) -> None:
        if max_size < 1:
            raise ValueError("max_size must be positive")
        self.max_size = max_size

    def optimize(self, problem: OrderingProblem) -> OptimizationResult:
        """Return the optimal plan for ``problem`` via subset DP."""
        size = problem.size
        if size > self.max_size:
            raise ProblemTooLargeError(
                f"dynamic programming is limited to {self.max_size} services, "
                f"the problem has {size} (raise max_size explicitly if you really want this)"
            )
        stopwatch = Stopwatch().start()
        stats = SearchStatistics()
        evaluator = problem.evaluator()
        costs = evaluator.costs
        selectivities = evaluator.selectivities
        rows = evaluator.rows
        sink = evaluator.sink
        precedence = problem.precedence

        full_mask = (1 << size) - 1
        predecessor_masks = [0] * size
        if precedence is not None:
            for index in range(size):
                mask = 0
                for pred in precedence.predecessors(index):
                    mask |= 1 << pred
                predecessor_masks[index] = mask

        # Per-service static transition tuples: every feasible-by-identity
        # successor of `last` with its bit, precedence mask and transfer cost.
        successors: list[tuple[tuple[int, int, int, float], ...]] = [
            tuple(
                (nxt, 1 << nxt, predecessor_masks[nxt], rows[last][nxt])
                for nxt in range(size)
                if nxt != last
            )
            for last in range(size)
        ]

        # Selectivity product of every subset, built incrementally by lowest set bit.
        subset_product = [1.0] * (1 << size)
        for mask in range(1, 1 << size):
            lowest = (mask & -mask).bit_length() - 1
            subset_product[mask] = subset_product[mask ^ (1 << lowest)] * selectivities[lowest]

        # values[mask][last] is the smallest achievable maximum over the
        # settled terms of mask \ {last}; parents[mask][last] the predecessor
        # of `last` in the plan attaining it (-1 for none).  Rows are
        # allocated lazily: only reachable masks ever hold a list.
        values: list[list[float] | None] = [None] * (1 << size)
        parents: list[list[int] | None] = [None] * (1 << size)
        seeds = 0
        for index in range(size):
            if predecessor_masks[index] == 0:
                row = [_INF] * size
                row[index] = 0.0
                values[1 << index] = row
                parent_row = [-1] * size
                parents[1 << index] = parent_row
                seeds += 1
        stats.nodes_expanded = seeds
        dp_states = seeds

        for mask in range(1, full_mask + 1):
            value_row = values[mask]
            if value_row is None:
                continue
            not_mask = ~mask
            for last in range(size):
                value = value_row[last]
                if value == _INF:
                    continue
                rate_before_last = subset_product[mask ^ (1 << last)]
                settled_base = rate_before_last * costs[last]
                outgoing_rate = rate_before_last * selectivities[last]
                for nxt, bit, pred_mask, transfer in successors[last]:
                    if mask & bit:
                        continue
                    if pred_mask & not_mask:
                        continue
                    settled_term = settled_base + outgoing_rate * transfer
                    candidate = value if value >= settled_term else settled_term
                    next_mask = mask | bit
                    next_row = values[next_mask]
                    if next_row is None:
                        next_row = [_INF] * size
                        values[next_mask] = next_row
                        next_parents = [-1] * size
                        parents[next_mask] = next_parents
                    if candidate < next_row[nxt]:
                        if next_row[nxt] == _INF:
                            dp_states += 1
                        next_row[nxt] = candidate
                        parents[next_mask][nxt] = last  # type: ignore[index]
                        stats.nodes_expanded += 1

        best_cost = _INF
        best_last = -1
        final_row = values[full_mask]
        if final_row is not None:
            for last in range(size):
                value = final_row[last]
                if value == _INF:
                    continue
                rate_before_last = subset_product[full_mask ^ (1 << last)]
                final_term = (
                    rate_before_last * costs[last]
                    + rate_before_last * selectivities[last] * sink[last]
                )
                total = value if value >= final_term else final_term
                stats.plans_evaluated += 1
                if total < best_cost:
                    best_cost = total
                    best_last = last

        stats.extra["dp_states"] = dp_states
        stats.elapsed_seconds = stopwatch.stop()

        if best_last < 0:
            raise OptimizationError("no feasible ordering satisfies the precedence constraints")

        order = self._reconstruct(parents, full_mask, best_last)
        plan = problem.plan(order)
        return OptimizationResult(
            plan=plan, cost=plan.cost, algorithm=self.name, optimal=True, statistics=stats
        )

    @staticmethod
    def _reconstruct(parents: list[list[int] | None], mask: int, last: int) -> list[int]:
        """Walk the predecessor pointers back to the first service."""
        order_reversed = [last]
        while True:
            parent_row = parents[mask]
            assert parent_row is not None
            previous = parent_row[last]
            if previous < 0:
                break
            mask ^= 1 << last
            last = previous
            order_reversed.append(last)
        order_reversed.reverse()
        return order_reversed


def dynamic_programming(problem: OrderingProblem, max_size: int = 18) -> OptimizationResult:
    """Convenience wrapper around :class:`DynamicProgrammingOptimizer`."""
    return DynamicProgrammingOptimizer(max_size=max_size).optimize(problem)

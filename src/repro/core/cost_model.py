"""The bottleneck cost model of the paper (Eq. 1) and communication costs.

The response time of a pipelined, decentralized plan ``S = (s_0, ..., s_{n-1})``
is determined by its slowest stage:

``cost(S) = max_i  ( prod_{k < i} sigma_{s_k} ) * ( c_{s_i} + sigma_{s_i} * t_{s_i, s_{i+1}} )``

where the last service has no successor; its term is ``prod * c`` plus an
optional transfer to the consumer/sink when the problem models one.

This module provides

* :class:`CommunicationCostMatrix` — validated pairwise per-tuple transfer
  costs ``t_{i,j}`` (possibly asymmetric, zero diagonal),
* term/bottleneck computations used by every optimizer, and
* plan-level diagnostics (per-stage breakdown, bottleneck position).

These from-scratch functions are the *validated public boundary* of the cost
model and the oracle of the property-based tests.  The optimizers' inner
loops run on the incremental kernel in :mod:`repro.core.evaluation`, which
reproduces this module's floating-point arithmetic bit for bit but skips
validation and per-stage object construction; any change to the term
expressions here must be mirrored there (the kernel's property tests assert
exact agreement, so a divergence fails loudly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.exceptions import InvalidCostMatrixError, InvalidPlanError
from repro.utils.validation import require_non_negative

__all__ = [
    "CommunicationCostMatrix",
    "StageCost",
    "stage_costs",
    "bottleneck_cost",
    "bottleneck_stage",
    "prefix_products",
]


class CommunicationCostMatrix:
    """Per-tuple transfer costs ``t_{i,j}`` between the hosts of ``N`` services.

    The matrix may be asymmetric (upload vs download asymmetry, routing
    detours).  Diagonal entries must be zero: a service does not ship tuples to
    itself.  Entries are per-tuple costs; when tuples travel in blocks, divide
    the block cost by the block size before building the matrix (the network
    substrate's :class:`repro.network.latency.LinkModel` does exactly that).
    """

    __slots__ = ("_rows", "_size")

    def __init__(self, rows: Sequence[Sequence[float]]) -> None:
        size = len(rows)
        if size == 0:
            raise InvalidCostMatrixError("cost matrix must have at least one row")
        validated: list[tuple[float, ...]] = []
        for i, row in enumerate(rows):
            if len(row) != size:
                raise InvalidCostMatrixError(
                    f"cost matrix must be square: row {i} has {len(row)} entries, expected {size}"
                )
            converted = []
            for j, value in enumerate(row):
                value = require_non_negative(value, f"t[{i}][{j}]", InvalidCostMatrixError)
                if i == j and value != 0.0:
                    raise InvalidCostMatrixError(
                        f"diagonal entry t[{i}][{i}] must be zero, got {value!r}"
                    )
                converted.append(value)
            validated.append(tuple(converted))
        self._rows: tuple[tuple[float, ...], ...] = tuple(validated)
        self._size = size

    # -- constructors ------------------------------------------------------

    @classmethod
    def uniform(cls, size: int, value: float) -> "CommunicationCostMatrix":
        """A matrix in which every distinct pair costs ``value`` (the centralized model)."""
        value = require_non_negative(value, "value", InvalidCostMatrixError)
        rows = [[0.0 if i == j else value for j in range(size)] for i in range(size)]
        return cls(rows)

    @classmethod
    def zeros(cls, size: int) -> "CommunicationCostMatrix":
        """A matrix with free communication (the classical centralized setting)."""
        return cls.uniform(size, 0.0)

    @classmethod
    def from_function(cls, size: int, func: Callable[[int, int], float]) -> "CommunicationCostMatrix":
        """Build a matrix by evaluating ``func(i, j)`` for every ordered pair."""
        rows = [[0.0 if i == j else float(func(i, j)) for j in range(size)] for i in range(size)]
        return cls(rows)

    @classmethod
    def from_host_costs(
        cls,
        hosts: Sequence[str],
        host_costs: dict[tuple[str, str], float],
        default: float = 0.0,
    ) -> "CommunicationCostMatrix":
        """Build a matrix from host-pair costs for services placed on ``hosts``.

        ``host_costs`` maps ``(source_host, destination_host)`` to a per-tuple
        cost.  Pairs on the same host cost zero; missing pairs fall back to
        ``default``.
        """
        size = len(hosts)

        def lookup(i: int, j: int) -> float:
            if hosts[i] == hosts[j]:
                return 0.0
            return float(host_costs.get((hosts[i], hosts[j]), default))

        return cls.from_function(size, lookup)

    # -- accessors ---------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of services the matrix covers."""
        return self._size

    def cost(self, source: int, destination: int) -> float:
        """Per-tuple transfer cost from service ``source`` to ``destination``."""
        return self._rows[source][destination]

    def row(self, source: int) -> tuple[float, ...]:
        """All outgoing transfer costs of ``source``."""
        return self._rows[source]

    def as_lists(self) -> list[list[float]]:
        """Return a mutable copy of the matrix as nested lists."""
        return [list(row) for row in self._rows]

    def max_cost(self) -> float:
        """The largest off-diagonal entry."""
        return max(
            (self._rows[i][j] for i in range(self._size) for j in range(self._size) if i != j),
            default=0.0,
        )

    def min_cost(self) -> float:
        """The smallest off-diagonal entry."""
        return min(
            (self._rows[i][j] for i in range(self._size) for j in range(self._size) if i != j),
            default=0.0,
        )

    def mean_cost(self) -> float:
        """The average off-diagonal entry."""
        values = [self._rows[i][j] for i in range(self._size) for j in range(self._size) if i != j]
        if not values:
            return 0.0
        return sum(values) / len(values)

    def is_uniform(self, tolerance: float = 1e-12) -> bool:
        """Whether every off-diagonal entry is (numerically) identical."""
        return self.max_cost() - self.min_cost() <= tolerance

    def is_symmetric(self, tolerance: float = 1e-12) -> bool:
        """Whether ``t[i][j] == t[j][i]`` for every pair."""
        return all(
            abs(self._rows[i][j] - self._rows[j][i]) <= tolerance
            for i in range(self._size)
            for j in range(i + 1, self._size)
        )

    def heterogeneity(self) -> float:
        """Coefficient of variation of the off-diagonal entries.

        Zero for a uniform matrix; experiment E4 sweeps this quantity.
        """
        values = [self._rows[i][j] for i in range(self._size) for j in range(self._size) if i != j]
        if not values:
            return 0.0
        mean = sum(values) / len(values)
        if mean == 0.0:
            return 0.0
        variance = sum((value - mean) ** 2 for value in values) / len(values)
        return variance**0.5 / mean

    def scaled(self, factor: float) -> "CommunicationCostMatrix":
        """Return a copy with every entry multiplied by ``factor``."""
        factor = require_non_negative(factor, "factor", InvalidCostMatrixError)
        return CommunicationCostMatrix([[value * factor for value in row] for row in self._rows])

    def symmetrized(self) -> "CommunicationCostMatrix":
        """Return the symmetric matrix with ``t'[i][j] = (t[i][j] + t[j][i]) / 2``."""
        rows = [
            [
                0.0 if i == j else (self._rows[i][j] + self._rows[j][i]) / 2.0
                for j in range(self._size)
            ]
            for i in range(self._size)
        ]
        return CommunicationCostMatrix(rows)

    def submatrix(self, indices: Sequence[int]) -> "CommunicationCostMatrix":
        """Return the matrix restricted to ``indices`` (in the given order)."""
        rows = [[self._rows[i][j] for j in indices] for i in indices]
        return CommunicationCostMatrix(rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CommunicationCostMatrix):
            return NotImplemented
        return self._rows == other._rows

    def __hash__(self) -> int:
        return hash(self._rows)

    def __repr__(self) -> str:
        return f"CommunicationCostMatrix(size={self._size}, mean={self.mean_cost():.4g})"


@dataclass(frozen=True)
class StageCost:
    """The contribution of a single plan position to the bottleneck metric.

    Attributes
    ----------
    position:
        Index of the stage within the plan (0-based).
    service_index:
        Index of the service occupying the stage.
    input_rate:
        Average number of tuples reaching the stage per source tuple
        (``prod_{k<i} sigma_k``).
    processing:
        ``input_rate * c_i`` — time spent processing per source tuple.
    transfer:
        ``input_rate * sigma_i * t_{i,i+1}`` — time spent shipping output to
        the next stage (or to the sink for the last stage) per source tuple.
    """

    position: int
    service_index: int
    input_rate: float
    processing: float
    transfer: float

    @property
    def total(self) -> float:
        """The stage's full term in Eq. 1."""
        return self.processing + self.transfer


def prefix_products(selectivities: Sequence[float], order: Sequence[int]) -> list[float]:
    """Return ``prod_{k<i} sigma_{order[k]}`` for every position ``i`` of ``order``."""
    products: list[float] = []
    current = 1.0
    for index in order:
        products.append(current)
        current *= selectivities[index]
    return products


def stage_costs(
    costs: Sequence[float],
    selectivities: Sequence[float],
    transfer: CommunicationCostMatrix,
    order: Sequence[int],
    sink_transfer: Sequence[float] | None = None,
) -> list[StageCost]:
    """Per-stage cost breakdown of ``order`` under the bottleneck model.

    ``sink_transfer``, when given, holds the per-tuple cost of shipping a
    result tuple from each service to the query consumer; the paper's Eq. 1
    omits this term (equivalently, all sink transfers are zero).
    """
    _validate_order(order, transfer.size)
    stages: list[StageCost] = []
    rate = 1.0
    for position, index in enumerate(order):
        if position + 1 < len(order):
            outgoing = transfer.cost(index, order[position + 1])
        elif sink_transfer is not None:
            outgoing = float(sink_transfer[index])
        else:
            outgoing = 0.0
        stages.append(
            StageCost(
                position=position,
                service_index=index,
                input_rate=rate,
                processing=rate * costs[index],
                transfer=rate * selectivities[index] * outgoing,
            )
        )
        rate *= selectivities[index]
    return stages


def bottleneck_cost(
    costs: Sequence[float],
    selectivities: Sequence[float],
    transfer: CommunicationCostMatrix,
    order: Sequence[int],
    sink_transfer: Sequence[float] | None = None,
) -> float:
    """The bottleneck cost metric (Eq. 1) of the complete plan ``order``."""
    stages = stage_costs(costs, selectivities, transfer, order, sink_transfer)
    return max(stage.total for stage in stages)


def bottleneck_stage(
    costs: Sequence[float],
    selectivities: Sequence[float],
    transfer: CommunicationCostMatrix,
    order: Sequence[int],
    sink_transfer: Sequence[float] | None = None,
) -> StageCost:
    """The stage attaining the bottleneck cost (first one in case of ties)."""
    stages = stage_costs(costs, selectivities, transfer, order, sink_transfer)
    best = stages[0]
    for stage in stages[1:]:
        if stage.total > best.total:
            best = stage
    return best


def _validate_order(order: Sequence[int], size: int) -> None:
    if len(order) == 0:
        raise InvalidPlanError("a plan must contain at least one service")
    seen: set[int] = set()
    for index in order:
        if not isinstance(index, int) or isinstance(index, bool):
            raise InvalidPlanError(f"plan entries must be integer service indices, got {index!r}")
        if index < 0 or index >= size:
            raise InvalidPlanError(f"service index {index} out of range [0, {size})")
        if index in seen:
            raise InvalidPlanError(f"service index {index} appears more than once in the plan")
        seen.add(index)


"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library-specific failures without accidentally swallowing
built-in exceptions such as :class:`KeyboardInterrupt`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the library."""


class InvalidServiceError(ReproError):
    """A service definition is malformed (negative cost, non-positive selectivity, ...)."""


class InvalidCostMatrixError(ReproError):
    """A communication-cost matrix is malformed (not square, negative entries, ...)."""


class InvalidProblemError(ReproError):
    """An ordering problem is inconsistent (matrix size mismatch, empty service set, ...)."""


class InvalidPlanError(ReproError):
    """A plan is not a valid linear ordering for its problem."""


class PrecedenceViolationError(InvalidPlanError):
    """A plan violates a precedence constraint of its problem."""


class PrecedenceCycleError(ReproError):
    """The precedence constraints contain a cycle, so no valid ordering exists."""


class OptimizationError(ReproError):
    """An optimizer could not produce a plan."""


class SearchLimitExceededError(OptimizationError):
    """An optimizer hit a configured node or time limit before completing."""


class ProblemTooLargeError(OptimizationError):
    """An exact algorithm was asked to solve an instance beyond its configured size guard."""


class KernelError(ReproError):
    """An evaluation kernel was misconfigured or unavailable (e.g. the vector
    kernel was requested explicitly but numpy is not installed)."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class WorkloadError(ReproError):
    """A workload or scenario specification is invalid."""


class QueryError(ReproError):
    """A declarative query is malformed or references unknown services."""


class EstimationError(ReproError):
    """Parameter estimation was asked to work with insufficient or invalid observations."""


class ExperimentError(ReproError):
    """An experiment definition or harness invocation is invalid."""


class ParallelError(ReproError):
    """The parallel execution engine was misconfigured or a worker process failed."""


class ServingError(ReproError):
    """The plan-serving subsystem was misconfigured or reached an invalid state."""


class AdmissionError(ServingError):
    """A request was rejected by the plan service's admission control (overload)."""


class ShardingError(ServingError):
    """The sharded serving tier was misconfigured or a shard failed."""


class ObservabilityError(ReproError):
    """The observability subsystem (metrics/tracing) was misconfigured."""

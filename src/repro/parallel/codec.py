"""Wire codecs of the parallel execution engine.

Problems, tasks and results cross process boundaries as nested tuples of
primitives — never as pickled object graphs.  The problem side lives in
:mod:`repro.serialization` (:func:`~repro.serialization.problem_to_wire` /
:func:`~repro.serialization.problem_from_wire`); this module adds the result
direction: an :class:`~repro.core.result.OptimizationResult` collapses into
``(order, algorithm, optimal, statistics)`` and is re-attached to whichever
equivalent problem instance the *parent* process holds.  That re-attachment
is safe because the wire problem codec is lossless: the worker's and the
parent's cost arithmetic agree bit for bit, which
:meth:`~repro.core.result.OptimizationResult.__post_init__`'s consistency
check re-asserts on every decode.
"""

from __future__ import annotations

from repro.core.problem import OrderingProblem
from repro.core.result import OptimizationResult, SearchStatistics
from repro.exceptions import ParallelError

# Trace spans cross the same process boundaries as results do (shipped back
# inside worker/shard response tuples); their wire form is the flat dict of
# Span.to_dict.  Re-exported here so every parallel wire codec — results and
# spans alike — is reachable from one module.
from repro.obs.trace import span_from_dict as span_from_wire
from repro.obs.trace import Span

span_to_wire = Span.to_dict
"""Collapse a :class:`~repro.obs.trace.Span` into its flat wire dict."""

__all__ = [
    "result_to_wire",
    "result_from_wire",
    "statistics_to_wire",
    "statistics_from_wire",
    "span_to_wire",
    "span_from_wire",
]

RESULT_WIRE_VERSION = 1
"""Version tag leading every wire payload produced by :func:`result_to_wire`."""


def statistics_to_wire(statistics: SearchStatistics) -> tuple:
    """Collapse a :class:`SearchStatistics` record into a flat tuple."""
    return (
        statistics.nodes_expanded,
        statistics.plans_evaluated,
        statistics.pruned_by_bound,
        statistics.lemma2_closures,
        statistics.lemma3_prunes,
        statistics.incumbent_updates,
        statistics.elapsed_seconds,
        tuple(sorted(statistics.extra.items())),
    )


def statistics_from_wire(payload: tuple) -> SearchStatistics:
    """Rebuild a :class:`SearchStatistics` record from its wire tuple."""
    try:
        (nodes, plans, pruned, lemma2, lemma3, incumbents, elapsed, extra) = payload
    except (TypeError, ValueError):
        raise ParallelError(f"malformed statistics payload: {payload!r}") from None
    return SearchStatistics(
        nodes_expanded=nodes,
        plans_evaluated=plans,
        pruned_by_bound=pruned,
        lemma2_closures=lemma2,
        lemma3_prunes=lemma3,
        incumbent_updates=incumbents,
        elapsed_seconds=elapsed,
        extra=dict(extra),
    )


def result_to_wire(result: OptimizationResult) -> tuple:
    """Encode an optimization result for the wire (plan as bare indices)."""
    return (
        RESULT_WIRE_VERSION,
        result.order,
        result.algorithm,
        result.optimal,
        statistics_to_wire(result.statistics),
    )


def result_from_wire(payload: tuple, problem: OrderingProblem) -> OptimizationResult:
    """Re-attach a wire result to ``problem`` (the parent-side instance).

    The plan is rebuilt — and therefore re-validated — against ``problem``,
    and its cost recomputed with the parent's arithmetic; the codec being
    lossless makes that cost identical to the one the worker saw.
    """
    if not isinstance(payload, tuple) or not payload or payload[0] != RESULT_WIRE_VERSION:
        raise ParallelError(f"unsupported result wire payload: {payload!r}")
    _, order, algorithm, optimal, statistics = payload
    plan = problem.plan(order)
    return OptimizationResult(
        plan=plan,
        cost=plan.cost,
        algorithm=algorithm,
        optimal=optimal,
        statistics=statistics_from_wire(statistics),
    )

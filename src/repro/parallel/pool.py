"""A persistent multiprocessing worker pool for bulk plan compilation.

:class:`OptimizerPool` keeps ``workers`` long-lived OS processes around and
feeds them optimization tasks over queues.  Problems travel as the compact
array payloads of :func:`repro.serialization.problem_to_wire`; results come
back as the bare-index tuples of :mod:`repro.parallel.codec`.  Two properties
make the pool a genuine batch-throughput engine rather than a thin
``multiprocessing.Pool`` wrapper:

* **Warm per-problem evaluator caches** — every worker keeps a bounded
  payload-keyed cache of decoded :class:`~repro.core.problem.OrderingProblem`
  instances.  Since a problem's evaluation kernel
  (:meth:`~repro.core.problem.OrderingProblem.evaluator`) is cached on the
  instance, a worker that sees the same problem again (repeated traffic, or
  several algorithms racing over one instance) skips both the decode and the
  kernel construction.
* **Batch single-flight** — :meth:`OptimizerPool.optimize_many` deduplicates
  structurally *identical* payloads inside one batch: each unique problem is
  optimized once and the result fanned back out to every duplicate position.
  A serving trace where the same query arrives many times compiles in
  ``O(unique)`` optimizations instead of ``O(requests)``.

Batches are routed, not serialized: a dedicated *collector* thread owns the
result queue and steers each worker answer to the batch that submitted it (a
task-id → batch registry), so concurrent :meth:`~OptimizerPool.optimize_many`
calls from different threads interleave on the same workers instead of
queueing behind one long-held lock.  A small submission that arrives while a
big batch compiles gets the next free worker, not a place at the back of the
big batch's critical section.

Workers are real processes, so the pool sidesteps the GIL on multi-core
machines — and, unlike threads, its members can be killed: the deadline race
in :mod:`repro.parallel.race` builds on the same worker entry point.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
from collections import OrderedDict
from typing import Mapping, Sequence

from repro.core.problem import OrderingProblem
from repro.core.result import OptimizationResult
from repro.core.vector import prepare_kernel
from repro.exceptions import OptimizationError, ParallelError, ReproError
from repro.obs.trace import Span, current_trace, emit_spans
from repro.parallel.codec import result_from_wire, result_to_wire
from repro.serialization import problem_from_wire, problem_to_wire

__all__ = ["OptimizerPool", "optimize_many", "preferred_context", "default_worker_count"]

_SHUTDOWN = None
"""Sentinel a worker interprets as 'drain and exit'."""

_RESULT_POLL_SECONDS = 0.25
"""How often the collector wakes up while idle to check worker health."""


def preferred_context(method: str | None = None) -> multiprocessing.context.BaseContext:
    """A multiprocessing context: ``method`` when given, else the cheapest.

    ``method`` is one of :func:`multiprocessing.get_all_start_methods`
    (``fork`` / ``forkserver`` / ``spawn``); ``None`` picks ``fork`` where
    supported — the cheap default — leaving deployments that fork from
    threaded parents free to ask for ``forkserver`` or ``spawn`` instead
    (see :attr:`repro.serving.portfolio.PortfolioOptions.mp_context`).
    """
    methods = multiprocessing.get_all_start_methods()
    if method is None:
        return multiprocessing.get_context("fork" if "fork" in methods else None)
    if method not in methods:
        raise ParallelError(
            f"unsupported multiprocessing start method {method!r}; "
            f"available: {', '.join(methods)}"
        )
    return multiprocessing.get_context(method)


def default_worker_count() -> int:
    """Default pool size: one worker per visible CPU, at least one."""
    return max(1, os.cpu_count() or 1)


def _decode_cached(
    payload: tuple, cache: "OrderedDict[tuple, OrderingProblem]", capacity: int
) -> tuple[OrderingProblem, bool]:
    """Decode ``payload``, serving repeats from the worker's warm LRU cache."""
    problem = cache.get(payload)
    if problem is not None:
        cache.move_to_end(payload)
        return problem, True
    problem = problem_from_wire(payload)
    # Build the kernel once, while the problem is cold: the scalar evaluator
    # always, plus the shared vectorized scorer when the kernel (inherited
    # from the parent via REPRO_KERNEL) resolves to "vector" — so an
    # optimize_many batch of deduped problems scores every beam front,
    # neighbourhood and DP layer through one warm BatchEvaluator per problem.
    prepare_kernel(problem)
    cache[payload] = problem
    while len(cache) > capacity:
        cache.popitem(last=False)
    return problem, False


def _worker_main(tasks, results, warm_cache_size: int) -> None:
    """Worker process entry point: loop over tasks until the shutdown sentinel."""
    import signal

    # Shutdown is coordinated by the parent (sentinel, then terminate); a
    # foreground Ctrl-C must not kill workers mid-task with a traceback.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    from repro.core.optimizer import optimize  # after fork/spawn, in the child

    import time

    cache: "OrderedDict[tuple, OrderingProblem]" = OrderedDict()
    while True:
        task = tasks.get()
        if task is _SHUTDOWN or task is None:
            break
        task_id, payload, algorithm, options, trace = task
        # Traced tasks time themselves with one worker.optimize span that
        # ships back alongside the result and is stitched into the caller's
        # tree in the parent process.
        span = None
        if trace is not None:
            span = Span(trace[0], "worker.optimize", parent_id=trace[1])
            span.annotate(backend="pool", algorithm=algorithm)
            started = time.perf_counter()
        warm = False
        try:
            problem, warm = _decode_cached(payload, cache, warm_cache_size)
            result = optimize(problem, algorithm=algorithm, **dict(options))
        except ReproError as error:
            answer = (task_id, False, f"{type(error).__name__}: {error}", False)
        except TypeError as error:
            answer = (task_id, False, f"{algorithm} rejected the options: {error}", False)
        else:
            answer = (task_id, True, result_to_wire(result), warm)
        if span is not None:
            span.duration = time.perf_counter() - started
            span.annotate(ok=answer[1], warm=warm)
            results.put((*answer, [span.to_dict()]))
        else:
            results.put((*answer, []))


class _PendingBatch:
    """Parent-side bookkeeping of one in-flight :meth:`optimize_many` call."""

    __slots__ = (
        "position_of_task",
        "remaining",
        "wires",
        "errors",
        "warm_hits",
        "failure",
        "spans",
        "done",
    )

    def __init__(self, position_of_task: dict[int, int]) -> None:
        self.position_of_task = position_of_task
        self.remaining = len(position_of_task)
        self.wires: dict[int, tuple] = {}
        self.errors: dict[int, str] = {}
        self.warm_hits = 0
        self.failure: str | None = None
        self.spans: list[dict] = []
        self.done = threading.Event()


class OptimizerPool:
    """A persistent pool of optimizer worker processes.

    Parameters
    ----------
    workers:
        Number of worker processes (default: one per visible CPU).
    warm_cache_size:
        Problems each worker keeps decoded (with a built evaluation kernel).
    context:
        Multiprocessing context, or a start-method name (``"fork"`` /
        ``"forkserver"`` / ``"spawn"``); defaults to ``fork`` where available.

    The pool is thread-safe and batches run *concurrently*: each
    :meth:`optimize_many` call registers its tasks with the collector thread
    and waits only for its own answers, so callers never queue behind another
    caller's batch.  Use it as a context manager, or call :meth:`close`
    explicitly.
    """

    def __init__(
        self,
        workers: int | None = None,
        warm_cache_size: int = 64,
        context: multiprocessing.context.BaseContext | str | None = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ParallelError(f"workers must be at least 1, got {workers!r}")
        if warm_cache_size < 1:
            raise ParallelError(f"warm_cache_size must be at least 1, got {warm_cache_size!r}")
        self.workers = workers if workers is not None else default_worker_count()
        if context is None or isinstance(context, str):
            context = preferred_context(context)
        self._context = context
        self._tasks = self._context.Queue()
        self._results = self._context.Queue()
        self._processes = [
            self._context.Process(
                target=_worker_main,
                args=(self._tasks, self._results, warm_cache_size),
                daemon=True,
                name=f"optimizer-pool-{index}",
            )
            for index in range(self.workers)
        ]
        for process in self._processes:
            process.start()
        # _state_lock guards the task-id counter, the pending registry and the
        # counters — never held across queue waits or optimization work.
        self._state_lock = threading.Lock()
        self._next_task_id = 0  # guarded-by: _state_lock
        self._pending: dict[int, _PendingBatch] = {}  # guarded-by: _state_lock
        self._closed = False  # guarded-by: _state_lock
        self._tasks_submitted = 0  # guarded-by: _state_lock
        self._warm_hits = 0  # guarded-by: _state_lock
        self._collector_stop = threading.Event()
        self._collector = threading.Thread(
            target=self._collect, name="optimizer-pool-collector", daemon=True
        )
        self._collector.start()

    # -- lifecycle ---------------------------------------------------------

    def close(self, timeout: float = 2.0) -> None:
        """Shut the workers down (idempotent); stragglers are terminated."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
            orphaned = set(self._pending.values())
            self._pending.clear()
        for batch in orphaned:
            batch.failure = "the optimizer pool was closed with tasks outstanding"
            batch.done.set()
        for _ in self._processes:
            self._tasks.put(_SHUTDOWN)
        for process in self._processes:
            process.join(timeout=timeout)
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=timeout)
        self._collector_stop.set()
        self._collector.join(timeout=timeout + _RESULT_POLL_SECONDS)
        self._tasks.close()
        self._results.close()

    def __enter__(self) -> "OptimizerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- bulk optimization -------------------------------------------------

    def optimize_many(
        self,
        problems: Sequence[OrderingProblem],
        algorithm: str = "branch_and_bound",
        options: Mapping[str, object] | None = None,
        dedup: bool = True,
    ) -> list[OptimizationResult]:
        """Optimize every problem of ``problems``, preserving order.

        With ``dedup`` (the default), structurally identical problems — equal
        wire payloads — are optimized once per batch and the result shared by
        all duplicates (each re-attached to its own problem instance).  Raises
        :class:`~repro.exceptions.OptimizationError` if any member fails and
        :class:`~repro.exceptions.ParallelError` if a worker process dies.
        Concurrent calls from different threads interleave on the workers.
        """
        if not problems:
            return []
        options = dict(options or {})
        payloads = [problem_to_wire(problem) for problem in problems]
        first_position: dict[tuple, int] = {}
        unique_positions: list[int] = []
        for position, payload in enumerate(payloads):
            if not dedup or payload not in first_position:
                first_position[payload] = position
                unique_positions.append(position)

        trace = current_trace()
        tasks = []
        with self._state_lock:
            if self._closed:
                raise ParallelError("the optimizer pool has been closed")
            position_of_task: dict[int, int] = {}
            for position in unique_positions:
                task_id = self._next_task_id
                self._next_task_id += 1
                position_of_task[task_id] = position
                tasks.append(
                    (task_id, payloads[position], algorithm, tuple(options.items()), trace)
                )
            batch = _PendingBatch(position_of_task)
            for task_id in position_of_task:
                self._pending[task_id] = batch
            self._tasks_submitted += len(unique_positions)
        try:
            for task in tasks:
                self._tasks.put(task)
        except (ValueError, OSError) as error:
            # close() won the race and tore the task queue down after this
            # batch registered; surface the pool's own error type.
            raise ParallelError("the optimizer pool has been closed") from error

        while not batch.done.wait(timeout=_RESULT_POLL_SECONDS):
            if not self._collector.is_alive():  # pragma: no cover - defensive
                raise ParallelError("the optimizer pool's collector thread died")
        if batch.failure is not None:
            raise ParallelError(batch.failure)
        emit_spans(batch.spans)
        if batch.errors:
            position, message = min(batch.errors.items())
            problem = problems[position]
            raise OptimizationError(
                f"optimize_many failed on problem {position}"
                f"{f' ({problem.name!r})' if problem.name else ''}: {message}"
            )
        results = []
        for position, problem in enumerate(problems):
            source = first_position[payloads[position]] if dedup else position
            results.append(result_from_wire(batch.wires[source], problem))
        return results

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Counters: tasks actually submitted to workers, and their warm-cache hits."""
        with self._state_lock:
            return {"tasks_submitted": self._tasks_submitted, "warm_hits": self._warm_hits}

    # -- collector ---------------------------------------------------------

    def _collect(self) -> None:
        """Route worker answers to the batches that submitted them."""
        while True:
            try:
                task_id, ok, payload, warm, spans = self._results.get(
                    timeout=_RESULT_POLL_SECONDS
                )
            except queue.Empty:
                if self._collector_stop.is_set():
                    return
                self._fail_pending_on_dead_workers()
                continue
            except (EOFError, OSError, ValueError):  # pragma: no cover - shutdown race
                return
            with self._state_lock:
                batch = self._pending.pop(task_id, None)
                if batch is None:
                    # A straggler from a batch that aborted (worker death,
                    # pool close) — must not be attributed to a live batch.
                    continue
                position = batch.position_of_task[task_id]
                if spans:
                    batch.spans.extend(spans)
                if ok:
                    batch.wires[position] = payload
                    if warm:
                        batch.warm_hits += 1
                        self._warm_hits += 1
                else:
                    batch.errors[position] = payload
                batch.remaining -= 1
                finished = batch.remaining == 0
            if finished:
                batch.done.set()

    def _fail_pending_on_dead_workers(self) -> None:
        with self._state_lock:
            if not self._pending or self._closed:
                return
            dead = [process.name for process in self._processes if not process.is_alive()]
            if not dead:
                return
            # Tasks queued to a dead worker are lost; every waiting batch
            # would hang, so fail them all crisply (the pre-routing behaviour
            # raised the same error from the waiting thread itself).
            failed = set(self._pending.values())
            self._pending.clear()
        message = f"worker process(es) {', '.join(dead)} died with tasks outstanding"
        for batch in failed:
            batch.failure = message
            batch.done.set()


def optimize_many(
    problems: Sequence[OrderingProblem],
    algorithm: str = "branch_and_bound",
    workers: int | None = None,
    options: Mapping[str, object] | None = None,
    dedup: bool = True,
) -> list[OptimizationResult]:
    """One-shot convenience wrapper around :class:`OptimizerPool`."""
    with OptimizerPool(workers=workers) as pool:
        return pool.optimize_many(problems, algorithm=algorithm, options=options, dedup=dedup)

"""A persistent multiprocessing worker pool for bulk plan compilation.

:class:`OptimizerPool` keeps ``workers`` long-lived OS processes around and
feeds them optimization tasks over queues.  Problems travel as the compact
array payloads of :func:`repro.serialization.problem_to_wire`; results come
back as the bare-index tuples of :mod:`repro.parallel.codec`.  Two properties
make the pool a genuine batch-throughput engine rather than a thin
``multiprocessing.Pool`` wrapper:

* **Warm per-problem evaluator caches** — every worker keeps a bounded
  payload-keyed cache of decoded :class:`~repro.core.problem.OrderingProblem`
  instances.  Since a problem's evaluation kernel
  (:meth:`~repro.core.problem.OrderingProblem.evaluator`) is cached on the
  instance, a worker that sees the same problem again (repeated traffic, or
  several algorithms racing over one instance) skips both the decode and the
  kernel construction.
* **Batch single-flight** — :meth:`OptimizerPool.optimize_many` deduplicates
  structurally *identical* payloads inside one batch: each unique problem is
  optimized once and the result fanned back out to every duplicate position.
  A serving trace where the same query arrives many times compiles in
  ``O(unique)`` optimizations instead of ``O(requests)``.

Workers are real processes, so the pool sidesteps the GIL on multi-core
machines — and, unlike threads, its members can be killed: the deadline race
in :mod:`repro.parallel.race` builds on the same worker entry point.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import queue
import threading
from collections import OrderedDict
from typing import Mapping, Sequence

from repro.core.problem import OrderingProblem
from repro.core.result import OptimizationResult
from repro.exceptions import OptimizationError, ParallelError, ReproError
from repro.parallel.codec import result_from_wire, result_to_wire
from repro.serialization import problem_from_wire, problem_to_wire

__all__ = ["OptimizerPool", "optimize_many", "preferred_context", "default_worker_count"]

_SHUTDOWN = None
"""Sentinel a worker interprets as 'drain and exit'."""

_RESULT_POLL_SECONDS = 0.25
"""How often the parent wakes up while waiting on results to check worker health."""


def preferred_context() -> multiprocessing.context.BaseContext:
    """The cheapest available multiprocessing context (fork where supported)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def default_worker_count() -> int:
    """Default pool size: one worker per visible CPU, at least one."""
    return max(1, os.cpu_count() or 1)


def _decode_cached(
    payload: tuple, cache: "OrderedDict[tuple, OrderingProblem]", capacity: int
) -> tuple[OrderingProblem, bool]:
    """Decode ``payload``, serving repeats from the worker's warm LRU cache."""
    problem = cache.get(payload)
    if problem is not None:
        cache.move_to_end(payload)
        return problem, True
    problem = problem_from_wire(payload)
    problem.evaluator()  # build the kernel once, while the problem is cold
    cache[payload] = problem
    while len(cache) > capacity:
        cache.popitem(last=False)
    return problem, False


def _worker_main(tasks, results, warm_cache_size: int) -> None:
    """Worker process entry point: loop over tasks until the shutdown sentinel."""
    from repro.core.optimizer import optimize  # after fork/spawn, in the child

    cache: "OrderedDict[tuple, OrderingProblem]" = OrderedDict()
    while True:
        task = tasks.get()
        if task is _SHUTDOWN or task is None:
            break
        task_id, payload, algorithm, options = task
        try:
            problem, warm = _decode_cached(payload, cache, warm_cache_size)
            result = optimize(problem, algorithm=algorithm, **dict(options))
        except ReproError as error:
            results.put((task_id, False, f"{type(error).__name__}: {error}", False))
        except TypeError as error:
            results.put((task_id, False, f"{algorithm} rejected the options: {error}", False))
        else:
            results.put((task_id, True, result_to_wire(result), warm))


class OptimizerPool:
    """A persistent pool of optimizer worker processes.

    Parameters
    ----------
    workers:
        Number of worker processes (default: one per visible CPU).
    warm_cache_size:
        Problems each worker keeps decoded (with a built evaluation kernel).
    context:
        Multiprocessing context; defaults to ``fork`` where available.

    The pool is thread-safe: one internal lock serialises batch submissions,
    which is the contract the single-flighted serving layer needs.  Use it as
    a context manager, or call :meth:`close` explicitly.
    """

    def __init__(
        self,
        workers: int | None = None,
        warm_cache_size: int = 64,
        context: multiprocessing.context.BaseContext | None = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ParallelError(f"workers must be at least 1, got {workers!r}")
        if warm_cache_size < 1:
            raise ParallelError(f"warm_cache_size must be at least 1, got {warm_cache_size!r}")
        self.workers = workers if workers is not None else default_worker_count()
        self._context = context if context is not None else preferred_context()
        self._tasks = self._context.Queue()
        self._results = self._context.Queue()
        self._processes = [
            self._context.Process(
                target=_worker_main,
                args=(self._tasks, self._results, warm_cache_size),
                daemon=True,
                name=f"optimizer-pool-{index}",
            )
            for index in range(self.workers)
        ]
        for process in self._processes:
            process.start()
        self._task_ids = itertools.count()
        self._lock = threading.Lock()
        self._closed = False
        self._tasks_submitted = 0
        self._warm_hits = 0

    # -- lifecycle ---------------------------------------------------------

    def close(self, timeout: float = 2.0) -> None:
        """Shut the workers down (idempotent); stragglers are terminated."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._processes:
            self._tasks.put(_SHUTDOWN)
        for process in self._processes:
            process.join(timeout=timeout)
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=timeout)
        self._tasks.close()
        self._results.close()

    def __enter__(self) -> "OptimizerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- bulk optimization -------------------------------------------------

    def optimize_many(
        self,
        problems: Sequence[OrderingProblem],
        algorithm: str = "branch_and_bound",
        options: Mapping[str, object] | None = None,
        dedup: bool = True,
    ) -> list[OptimizationResult]:
        """Optimize every problem of ``problems``, preserving order.

        With ``dedup`` (the default), structurally identical problems — equal
        wire payloads — are optimized once per batch and the result shared by
        all duplicates (each re-attached to its own problem instance).  Raises
        :class:`~repro.exceptions.OptimizationError` if any member fails and
        :class:`~repro.exceptions.ParallelError` if a worker process dies.
        """
        if not problems:
            return []
        options = dict(options or {})
        with self._lock:
            if self._closed:
                raise ParallelError("the optimizer pool has been closed")
            payloads = [problem_to_wire(problem) for problem in problems]
            first_position: dict[tuple, int] = {}
            unique_positions: list[int] = []
            for position, payload in enumerate(payloads):
                if not dedup or payload not in first_position:
                    first_position[payload] = position
                    unique_positions.append(position)
            task_of_position = {}
            for position in unique_positions:
                task_id = next(self._task_ids)
                task_of_position[task_id] = position
                self._tasks.put((task_id, payloads[position], algorithm, tuple(options.items())))
            self._tasks_submitted += len(unique_positions)

            wires: dict[int, tuple] = {}
            errors: dict[int, str] = {}
            while len(wires) + len(errors) < len(unique_positions):
                try:
                    task_id, ok, payload, warm = self._results.get(timeout=_RESULT_POLL_SECONDS)
                except queue.Empty:
                    self._check_workers()
                    continue
                position = task_of_position.get(task_id)
                if position is None:
                    # A straggler from a batch that aborted (e.g. on a worker
                    # death) — the surviving workers' in-flight answers drain
                    # here and must not be attributed to this batch.
                    continue
                if ok:
                    wires[position] = payload
                    if warm:
                        self._warm_hits += 1
                else:
                    errors[position] = payload

        if errors:
            position, message = min(errors.items())
            problem = problems[position]
            raise OptimizationError(
                f"optimize_many failed on problem {position}"
                f"{f' ({problem.name!r})' if problem.name else ''}: {message}"
            )
        results = []
        for position, problem in enumerate(problems):
            source = first_position[payloads[position]] if dedup else position
            results.append(result_from_wire(wires[source], problem))
        return results

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Counters: tasks actually submitted to workers, and their warm-cache hits."""
        with self._lock:
            return {"tasks_submitted": self._tasks_submitted, "warm_hits": self._warm_hits}

    def _check_workers(self) -> None:
        dead = [process.name for process in self._processes if not process.is_alive()]
        if dead:
            raise ParallelError(
                f"worker process(es) {', '.join(dead)} died with tasks outstanding"
            )


def optimize_many(
    problems: Sequence[OrderingProblem],
    algorithm: str = "branch_and_bound",
    workers: int | None = None,
    options: Mapping[str, object] | None = None,
    dedup: bool = True,
) -> list[OptimizationResult]:
    """One-shot convenience wrapper around :class:`OptimizerPool`."""
    with OptimizerPool(workers=workers) as pool:
        return pool.optimize_many(problems, algorithm=algorithm, options=options, dedup=dedup)

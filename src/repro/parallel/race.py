"""Process-backed portfolio racing with hard cancellation.

The thread-backed portfolio (:mod:`repro.serving.portfolio`) has one
structural limitation it documents itself: Python threads cannot be killed,
so a member still running at the deadline keeps its worker busy until it
finishes on its own.  Exact solvers — exhaustive enumeration, deep
branch-and-bound — are precisely the members that straggle, which is why the
default ladder had to treat them with care.

This module removes the limitation by racing every non-seed member in its own
OS *process*: at the deadline, stragglers are :meth:`~multiprocessing.Process.terminate`-d
and reaped, so an over-budget exact member costs exactly the budget, never
more.  Members are started through :func:`repro.parallel.pool.preferred_context`
(``fork`` where available — member startup must stay cheap relative to
sub-second budgets); forking from a heavily multi-threaded parent carries the
usual CPython caveat about locks held by other threads at fork time, so a
service that prefers safety over startup latency sets
:attr:`~repro.serving.portfolio.PortfolioOptions.mp_context` to
``"forkserver"`` or ``"spawn"`` (plumbed from
:class:`~repro.serving.service.PlanServiceConfig` and the CLI's
``--mp-context``).  The seed member still runs synchronously in the parent (the anytime
guarantee does not survive a process failure), and the returned
:class:`~repro.serving.portfolio.PortfolioResult` is indistinguishable from
the thread backend's — same best-result semantics, same error and timeout
accounting — so callers switch backends through
:attr:`~repro.serving.portfolio.PortfolioOptions.backend` alone.
"""

from __future__ import annotations

import queue
import time
from typing import TYPE_CHECKING

from repro.core.optimizer import optimize
from repro.core.problem import OrderingProblem
from repro.core.result import OptimizationResult
from repro.exceptions import OptimizationError, ReproError
from repro.obs.trace import Span, current_trace, emit_spans
from repro.parallel.codec import result_from_wire, result_to_wire
from repro.parallel.pool import preferred_context
from repro.serialization import problem_from_wire, problem_to_wire
from repro.utils.timing import Stopwatch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.portfolio import PortfolioOptions, PortfolioResult

__all__ = ["race_processes"]

_JOIN_GRACE_SECONDS = 1.0
"""How long a terminated member may take to be reaped before it is abandoned."""

_LIVENESS_POLL_SECONDS = 0.25
"""How often the parent wakes while waiting on results to notice dead members."""


def _race_member_main(payload, name, options, results, trace=None) -> None:
    """Child entry point: run one portfolio member and report over the queue.

    ``trace`` is the caller's ``(trace_id, parent_span_id)`` when the race is
    part of a traced request; the member then times itself with one
    ``worker.optimize`` span shipped back alongside the result, so the span
    joins the request's tree in the parent process.
    """
    span = None
    if trace is not None:
        span = Span(trace[0], "worker.optimize", parent_id=trace[1])
        span.annotate(backend="race", algorithm=name)
        started = time.perf_counter()
    try:
        problem = problem_from_wire(payload)
        result = optimize(problem, algorithm=name, **dict(options))
    except ReproError as error:
        results.put((name, False, str(error), _finish(span, started if span else 0.0, ok=False)))
    except TypeError as error:
        results.put(
            (
                name,
                False,
                f"{name} rejected the options: {error}",
                _finish(span, started if span else 0.0, ok=False),
            )
        )
    else:
        results.put(
            (name, True, result_to_wire(result), _finish(span, started if span else 0.0, ok=True))
        )


def _finish(span, started: float, ok: bool) -> list:
    """Close the member's span (if traced) into its wire form."""
    if span is None:
        return []
    span.duration = time.perf_counter() - started
    span.annotate(ok=ok)
    return [span.to_dict()]


def race_processes(
    problem: OrderingProblem,
    options: "PortfolioOptions",
    budget_seconds: float | None,
) -> "PortfolioResult":
    """Race ``options.algorithms`` on ``problem`` with process-level cancellation.

    The first algorithm is the synchronous anytime seed; the rest race in
    dedicated processes until ``budget_seconds`` expires (``None`` waits for
    all), at which point still-running members are *terminated* — not merely
    abandoned — and reported in
    :attr:`~repro.serving.portfolio.PortfolioResult.timed_out`.
    """
    from repro.serving.portfolio import PortfolioResult

    stopwatch = Stopwatch().start()
    payload = problem_to_wire(problem)
    context = preferred_context(options.mp_context)
    result_queue = context.Queue()

    seed_name = options.algorithms[0]
    results: dict[str, OptimizationResult] = {}
    errors: dict[str, str] = {}
    try:
        results[seed_name] = optimize(
            problem, algorithm=seed_name, **dict(options.algorithm_options.get(seed_name, {}))
        )
    except ReproError as error:
        errors[seed_name] = str(error)
    except TypeError as error:
        errors[seed_name] = f"{seed_name} rejected the options: {error}"

    racing = options.algorithms[1:]
    trace = current_trace()
    members = {}
    for name in racing:
        member_options = tuple(dict(options.algorithm_options.get(name, {})).items())
        process = context.Process(
            target=_race_member_main,
            args=(payload, name, member_options, result_queue, trace),
            daemon=True,
            name=f"race-{name}",
        )
        process.start()
        members[name] = process

    outstanding = set(members)
    while outstanding:
        if budget_seconds is None:
            timeout = _LIVENESS_POLL_SECONDS
        else:
            timeout = budget_seconds - stopwatch.elapsed
            if timeout <= 0:
                break
            timeout = min(timeout, _LIVENESS_POLL_SECONDS)
        try:
            name, ok, payload_or_error, member_spans = result_queue.get(timeout=timeout)
        except queue.Empty:
            # A member that died without reporting (OOM kill, hard crash)
            # must not be waited on — especially with no budget, where the
            # queue would otherwise be watched forever.  A dead member
            # flushed any answer it did produce before exiting, so drain
            # once more non-blocking before declaring it lost.
            dead = [n for n in outstanding if not members[n].is_alive()]
            if dead:
                try:
                    while True:
                        name, ok, payload_or_error, member_spans = result_queue.get_nowait()
                        outstanding.discard(name)
                        emit_spans(member_spans)
                        if ok:
                            results[name] = result_from_wire(payload_or_error, problem)
                        else:
                            errors[name] = payload_or_error
                except queue.Empty:
                    pass
                for name in [n for n in dead if n in outstanding]:
                    outstanding.discard(name)
                    errors[name] = (
                        f"member process died without reporting "
                        f"(exit code {members[name].exitcode})"
                    )
            if budget_seconds is not None and stopwatch.elapsed >= budget_seconds:
                break
            continue
        outstanding.discard(name)
        emit_spans(member_spans)
        if ok:
            results[name] = result_from_wire(payload_or_error, problem)
        else:
            errors[name] = payload_or_error

    timed_out = []
    for name in outstanding:
        process = members[name]
        if process.is_alive():
            process.terminate()
        process.join(timeout=_JOIN_GRACE_SECONDS)
        timed_out.append(name)
    result_queue.close()
    result_queue.cancel_join_thread()

    if not results:
        raise OptimizationError(
            f"no portfolio member produced a plan within the budget "
            f"(errors: {errors!r}, timed out: {timed_out!r})"
        )
    best = min(results.values(), key=lambda result: (result.cost, not result.optimal))
    return PortfolioResult(
        best=best,
        results=results,
        errors=errors,
        timed_out=tuple(sorted(timed_out)),
        elapsed_seconds=stopwatch.stop(),
    )

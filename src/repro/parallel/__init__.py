"""The parallel execution engine: wire codec, worker pool, process racing.

Everything built before this subsystem runs on one core: the evaluation
kernel (:mod:`repro.core.evaluation`) made a single plan evaluation fast, and
the serving portfolio (:mod:`repro.serving.portfolio`) races algorithms on
GIL-bound threads it cannot cancel.  This package adds the multi-core layer:

* :mod:`repro.parallel.codec` (+ the wire codec in :mod:`repro.serialization`)
  — problems and results cross process boundaries as compact tuples of flat
  arrays and precedence bitmasks, never as pickled object graphs,
* :mod:`repro.parallel.pool` — :class:`OptimizerPool`, a persistent worker
  pool with warm per-problem evaluator caches and a batch-deduplicating
  :meth:`~OptimizerPool.optimize_many` for bulk plan compilation,
* :mod:`repro.parallel.race` — :func:`race_processes`, deadline racing whose
  stragglers are *terminated* at the budget, which is what lets exact solvers
  join a latency-bounded portfolio safely.

The serving layer consumes this package through
:attr:`repro.serving.portfolio.PortfolioOptions.backend` and
:meth:`repro.serving.service.PlanService.optimize_batch`; experiments and
benchmarks through :func:`repro.experiments.harness.optimize_suite`.
"""

from repro.parallel.codec import (
    result_from_wire,
    result_to_wire,
    statistics_from_wire,
    statistics_to_wire,
)
from repro.parallel.pool import (
    OptimizerPool,
    default_worker_count,
    optimize_many,
    preferred_context,
)
from repro.parallel.race import race_processes

__all__ = [
    "OptimizerPool",
    "default_worker_count",
    "optimize_many",
    "preferred_context",
    "race_processes",
    "result_from_wire",
    "result_to_wire",
    "statistics_from_wire",
    "statistics_to_wire",
]

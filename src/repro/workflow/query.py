"""Declarative queries over services.

A :class:`ServiceQuery` states *which* services must process the input stream
and which ordering constraints exist; it does not state the order — finding
the response-time-optimal order is the optimizer's job.  Constraints arise in
two ways:

* explicitly (``A BEFORE B`` clauses), and
* implicitly from attribute data-flow: if ``B`` consumes an attribute only
  ``A`` produces, ``A`` must precede ``B``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import QueryError
from repro.workflow.descriptor import ServiceCatalog

__all__ = ["ServiceQuery"]


@dataclass(frozen=True)
class ServiceQuery:
    """A query: apply a set of services to a tuple source, in any valid order."""

    source: str
    """Name of the input stream (documentation only; not optimized over)."""

    services: tuple[str, ...]
    """Names of the services that must be applied."""

    explicit_precedence: tuple[tuple[str, str], ...] = field(default_factory=tuple)
    """Explicit ``(before, after)`` constraints from the query text."""

    input_attributes: frozenset[str] = field(default_factory=frozenset)
    """Attributes present on the source tuples (available to every service)."""

    def __post_init__(self) -> None:
        if not self.source:
            raise QueryError("a query needs a source name")
        if not self.services:
            raise QueryError("a query must call at least one service")
        if len(set(self.services)) != len(self.services):
            raise QueryError(f"duplicate service references in query: {self.services!r}")
        referenced = set(self.services)
        for before, after in self.explicit_precedence:
            if before not in referenced or after not in referenced:
                raise QueryError(
                    f"precedence clause ({before!r} BEFORE {after!r}) references a service "
                    "that the query does not call"
                )
        object.__setattr__(self, "input_attributes", frozenset(self.input_attributes))

    def resolve_precedence(self, catalog: ServiceCatalog) -> list[tuple[str, str]]:
        """All ``(before, after)`` constraints: explicit plus attribute data-flow.

        An attribute constraint ``A -> B`` is added when ``B`` consumes an
        attribute that is not on the source and is produced (among the query's
        services) only by ``A`` (or by several services — then each producer
        must precede ``B``).
        """
        constraints: list[tuple[str, str]] = list(self.explicit_precedence)
        producers: dict[str, list[str]] = {}
        for name in self.services:
            descriptor = catalog.get(name)
            for attribute in descriptor.produces:
                producers.setdefault(attribute, []).append(name)
        for name in self.services:
            descriptor = catalog.get(name)
            for attribute in descriptor.consumes:
                if attribute in self.input_attributes:
                    continue
                attribute_producers = [p for p in producers.get(attribute, []) if p != name]
                if not attribute_producers:
                    raise QueryError(
                        f"service {name!r} consumes attribute {attribute!r}, which neither the "
                        "source nor any other called service provides"
                    )
                for producer in attribute_producers:
                    constraint = (producer, name)
                    if constraint not in constraints:
                        constraints.append(constraint)
        return constraints

    def describe(self) -> str:
        """One-line summary used in example output."""
        constraints = ", ".join(f"{b}<{a}" for b, a in self.explicit_precedence) or "none"
        return (
            f"Query over {self.source!r}: services={list(self.services)}, "
            f"explicit precedence: {constraints}"
        )

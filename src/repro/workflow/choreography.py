"""Choreography: turning an optimized plan into per-service routing rules.

In the decentralized execution model each service ships its output directly to
the next service of the plan — there is no central mediator at run time.  What
*is* distributed ahead of time is a small routing instruction per service:
"receive from X, process, forward survivors to Y in blocks of B".  This module
derives those instructions from an optimized plan, which is exactly what the
query planner hands to a deployment layer (or, in this reproduction, to the
simulator).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.plan import Plan

__all__ = ["RoutingInstruction", "Choreography", "build_choreography"]

CLIENT = "@client"
"""Pseudo-endpoint denoting the query client/consumer."""


@dataclass(frozen=True)
class RoutingInstruction:
    """The routing rule installed on one service before execution starts."""

    service: str
    """Name of the service the instruction is for."""

    host: str | None
    """Host the service runs on (informational)."""

    position: int
    """Position of the service in the plan (0-based)."""

    receive_from: str
    """Name of the upstream service, or :data:`CLIENT` for the first stage."""

    forward_to: str
    """Name of the downstream service, or :data:`CLIENT` for the last stage."""

    transfer_cost: float
    """Per-tuple cost of the outgoing hop (0 for the final hop unless a sink cost is modelled)."""

    block_size: int
    """Number of tuples per shipped block."""


@dataclass(frozen=True)
class Choreography:
    """The full set of routing instructions realising one plan."""

    plan: Plan
    instructions: tuple[RoutingInstruction, ...]
    block_size: int

    @property
    def expected_bottleneck_cost(self) -> float:
        """The analytic bottleneck cost of the underlying plan."""
        return self.plan.cost

    def instruction_for(self, service_name: str) -> RoutingInstruction:
        """The instruction installed on ``service_name``."""
        for instruction in self.instructions:
            if instruction.service == service_name:
                return instruction
        raise KeyError(f"service {service_name!r} is not part of the choreography")

    def describe(self) -> str:
        """Human-readable routing table (what an operator would deploy)."""
        lines = [f"Choreography for plan {self.plan} (block size {self.block_size}):"]
        for instruction in self.instructions:
            lines.append(
                f"  [{instruction.position}] {instruction.service:<20} "
                f"recv<-{instruction.receive_from:<20} send->{instruction.forward_to:<20} "
                f"t={instruction.transfer_cost:.4g}"
            )
        return "\n".join(lines)


def build_choreography(plan: Plan, block_size: int = 1) -> Choreography:
    """Derive the per-service routing instructions realising ``plan``."""
    if block_size < 1:
        raise ValueError("block_size must be at least 1")
    problem = plan.problem
    order = plan.order
    instructions: list[RoutingInstruction] = []
    for position, service_index in enumerate(order):
        service = problem.service(service_index)
        receive_from = CLIENT if position == 0 else problem.service(order[position - 1]).name
        if position + 1 < len(order):
            next_index = order[position + 1]
            forward_to = problem.service(next_index).name
            transfer_cost = problem.transfer_cost(service_index, next_index)
        else:
            forward_to = CLIENT
            transfer_cost = problem.sink_cost(service_index)
        instructions.append(
            RoutingInstruction(
                service=service.name,
                host=service.host,
                position=position,
                receive_from=receive_from,
                forward_to=forward_to,
                transfer_cost=transfer_cost,
                block_size=block_size,
            )
        )
    return Choreography(plan=plan, instructions=tuple(instructions), block_size=block_size)

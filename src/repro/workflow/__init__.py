"""Declarative query layer: descriptors, queries, parser, planner, choreography."""

from repro.workflow.choreography import CLIENT, Choreography, RoutingInstruction, build_choreography
from repro.workflow.descriptor import ServiceCatalog, ServiceDescriptor
from repro.workflow.parser import parse_query
from repro.workflow.planner import PlannedQuery, QueryPlanner
from repro.workflow.query import ServiceQuery

__all__ = [
    "CLIENT",
    "Choreography",
    "PlannedQuery",
    "QueryPlanner",
    "RoutingInstruction",
    "ServiceCatalog",
    "ServiceDescriptor",
    "ServiceQuery",
    "build_choreography",
    "parse_query",
]

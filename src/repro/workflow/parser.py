"""A tiny textual query language.

WS-management systems expose an SQL-like interface for queries over services
(the paper cites such systems as its motivation).  The reproduction ships a
deliberately small language that covers the ordering problem's needs:

.. code-block:: text

    PROCESS persons
    USING card_lookup, payment_history, fraud_score, geo_filter
    WITH card_lookup BEFORE payment_history, decrypt BEFORE pii_scrubber
    GIVEN person_id, region

* ``PROCESS <source>`` names the input stream (required).
* ``USING <s1>, <s2>, ...`` lists the services to apply (required).
* ``WITH <a> BEFORE <b>, ...`` adds explicit precedence constraints (optional).
* ``GIVEN <attr>, ...`` lists attributes already present on the source
  (optional; used to resolve data-flow constraints).

Keywords are case-insensitive; service and attribute names are
case-sensitive identifiers.
"""

from __future__ import annotations

import re

from repro.exceptions import QueryError
from repro.workflow.query import ServiceQuery

__all__ = ["parse_query"]

_IDENTIFIER = re.compile(r"^[A-Za-z_][A-Za-z0-9_\-]*$")
_CLAUSE_PATTERN = re.compile(
    r"^\s*PROCESS\s+(?P<source>\S+)"
    r"\s+USING\s+(?P<services>.+?)"
    r"(?:\s+WITH\s+(?P<precedence>.+?))?"
    r"(?:\s+GIVEN\s+(?P<attributes>.+?))?\s*$",
    re.IGNORECASE | re.DOTALL,
)


def _split_list(text: str, what: str) -> list[str]:
    items = [item.strip() for item in text.split(",")]
    items = [item for item in items if item]
    if not items:
        raise QueryError(f"empty {what} list in query")
    for item in items:
        if not _IDENTIFIER.match(item):
            raise QueryError(f"invalid {what} name {item!r}")
    return items


def _parse_precedence(text: str) -> list[tuple[str, str]]:
    constraints: list[tuple[str, str]] = []
    for clause in text.split(","):
        clause = clause.strip()
        if not clause:
            continue
        parts = re.split(r"\s+BEFORE\s+", clause, flags=re.IGNORECASE)
        if len(parts) != 2:
            raise QueryError(
                f"malformed precedence clause {clause!r}; expected '<service> BEFORE <service>'"
            )
        before, after = parts[0].strip(), parts[1].strip()
        for name in (before, after):
            if not _IDENTIFIER.match(name):
                raise QueryError(f"invalid service name {name!r} in precedence clause")
        constraints.append((before, after))
    if not constraints:
        raise QueryError("WITH clause present but no precedence constraints found")
    return constraints


def parse_query(text: str) -> ServiceQuery:
    """Parse the textual query language into a :class:`ServiceQuery`.

    Raises :class:`repro.exceptions.QueryError` with a pointed message for
    every malformed input.
    """
    if not text or not text.strip():
        raise QueryError("empty query text")
    normalized = " ".join(text.split())
    match = _CLAUSE_PATTERN.match(normalized)
    if match is None:
        raise QueryError(
            "could not parse query; expected "
            "'PROCESS <source> USING <services> [WITH <a> BEFORE <b>, ...] [GIVEN <attrs>]'"
        )
    source = match.group("source")
    if not _IDENTIFIER.match(source):
        raise QueryError(f"invalid source name {source!r}")
    services = _split_list(match.group("services"), "service")
    precedence: list[tuple[str, str]] = []
    if match.group("precedence"):
        precedence = _parse_precedence(match.group("precedence"))
    attributes: list[str] = []
    if match.group("attributes"):
        attributes = _split_list(match.group("attributes"), "attribute")
    return ServiceQuery(
        source=source,
        services=tuple(services),
        explicit_precedence=tuple(precedence),
        input_attributes=frozenset(attributes),
    )

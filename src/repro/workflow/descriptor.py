"""Service descriptors: the catalogue a query planner works from.

A :class:`ServiceDescriptor` is the planner-facing description of a deployed
Web Service: where it runs, what attributes it consumes and produces, and the
current estimates of its cost and selectivity (typically produced by
:mod:`repro.estimation`).  A :class:`ServiceCatalog` is the registry the
declarative query layer resolves service references against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.core.service import Service
from repro.exceptions import QueryError

__all__ = ["ServiceDescriptor", "ServiceCatalog"]


@dataclass(frozen=True)
class ServiceDescriptor:
    """Planner-facing description of one deployed service."""

    name: str
    host: str
    cost: float
    selectivity: float
    consumes: frozenset[str] = field(default_factory=frozenset)
    """Attributes the service needs to be present in its input tuples."""

    produces: frozenset[str] = field(default_factory=frozenset)
    """Attributes the service adds to the tuples it emits."""

    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise QueryError("a service descriptor needs a non-empty name")
        if not self.host:
            raise QueryError(f"service {self.name!r} needs a host")
        if self.cost < 0:
            raise QueryError(f"service {self.name!r} has a negative cost estimate")
        if self.selectivity <= 0:
            raise QueryError(f"service {self.name!r} has a non-positive selectivity estimate")
        object.__setattr__(self, "consumes", frozenset(self.consumes))
        object.__setattr__(self, "produces", frozenset(self.produces))

    def to_service(self) -> Service:
        """Convert into the optimizer's :class:`repro.core.service.Service`."""
        return Service(name=self.name, cost=self.cost, selectivity=self.selectivity, host=self.host)


class ServiceCatalog:
    """A name-indexed registry of service descriptors."""

    def __init__(self, descriptors: Iterable[ServiceDescriptor] = ()) -> None:
        self._descriptors: dict[str, ServiceDescriptor] = {}
        for descriptor in descriptors:
            self.register(descriptor)

    def register(self, descriptor: ServiceDescriptor) -> None:
        """Add a descriptor; duplicate names are rejected."""
        if descriptor.name in self._descriptors:
            raise QueryError(f"service {descriptor.name!r} is already registered")
        self._descriptors[descriptor.name] = descriptor

    def get(self, name: str) -> ServiceDescriptor:
        """Look up a descriptor by name."""
        try:
            return self._descriptors[name]
        except KeyError:
            raise QueryError(
                f"unknown service {name!r}; registered: {sorted(self._descriptors)}"
            ) from None

    def names(self) -> list[str]:
        """All registered names, in registration order."""
        return list(self._descriptors)

    def __contains__(self, name: object) -> bool:
        return name in self._descriptors

    def __len__(self) -> int:
        return len(self._descriptors)

    def __iter__(self) -> Iterator[ServiceDescriptor]:
        return iter(self._descriptors.values())

"""The query planner: from a declarative query to an executable choreography.

The planner glues the substrates together exactly the way a WS-management
system would:

1. resolve the query's service references against a :class:`ServiceCatalog`,
2. derive precedence constraints (explicit clauses + attribute data-flow),
3. derive the pairwise transfer-cost matrix from the network topology and the
   services' hosts,
4. hand the resulting :class:`OrderingProblem` to an optimizer
   (branch-and-bound by default), and
5. emit the :class:`Choreography` that realises the optimal plan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cost_model import CommunicationCostMatrix
from repro.core.optimizer import optimize
from repro.core.precedence import PrecedenceGraph
from repro.core.problem import OrderingProblem
from repro.core.result import OptimizationResult
from repro.network.matrix import matrix_from_topology
from repro.network.topology import NetworkTopology
from repro.workflow.choreography import Choreography, build_choreography
from repro.workflow.descriptor import ServiceCatalog
from repro.workflow.query import ServiceQuery

__all__ = ["PlannedQuery", "QueryPlanner"]


@dataclass(frozen=True)
class PlannedQuery:
    """Everything the planner produced for one query."""

    query: ServiceQuery
    problem: OrderingProblem
    result: OptimizationResult
    choreography: Choreography

    @property
    def expected_response_time_per_tuple(self) -> float:
        """The bottleneck cost of the chosen plan (Eq. 1)."""
        return self.result.cost

    def describe(self) -> str:
        """Multi-line report: query, chosen order and routing table."""
        return "\n".join(
            [
                self.query.describe(),
                self.result.describe(),
                self.choreography.describe(),
            ]
        )


class QueryPlanner:
    """Plans declarative queries over a service catalogue and a network topology."""

    def __init__(
        self,
        catalog: ServiceCatalog,
        topology: NetworkTopology,
        tuple_size: float = 1024.0,
        block_size: int = 1,
        algorithm: str = "branch_and_bound",
    ) -> None:
        if block_size < 1:
            raise ValueError("block_size must be at least 1")
        self.catalog = catalog
        self.topology = topology
        self.tuple_size = tuple_size
        self.block_size = block_size
        self.algorithm = algorithm

    # -- problem construction ---------------------------------------------------

    def build_problem(self, query: ServiceQuery) -> OrderingProblem:
        """Lower ``query`` to an :class:`OrderingProblem` (without optimizing it)."""
        descriptors = [self.catalog.get(name) for name in query.services]
        services = [descriptor.to_service() for descriptor in descriptors]
        placement = [descriptor.host for descriptor in descriptors]
        transfer: CommunicationCostMatrix = matrix_from_topology(
            self.topology, placement, tuple_size=self.tuple_size, block_size=self.block_size
        )

        name_to_index = {descriptor.name: index for index, descriptor in enumerate(descriptors)}
        constraints = query.resolve_precedence(self.catalog)
        precedence: PrecedenceGraph | None = None
        if constraints:
            precedence = PrecedenceGraph(len(services))
            for before, after in constraints:
                precedence.add(name_to_index[before], name_to_index[after])

        return OrderingProblem(
            services,
            transfer,
            precedence=precedence,
            name=f"query-{query.source}",
        )

    # -- planning -----------------------------------------------------------------

    def plan(self, query: ServiceQuery, **optimizer_options: object) -> PlannedQuery:
        """Plan ``query``: optimize the service order and emit its choreography."""
        problem = self.build_problem(query)
        result = optimize(problem, algorithm=self.algorithm, **optimizer_options)
        choreography = build_choreography(result.plan, block_size=self.block_size)
        return PlannedQuery(
            query=query, problem=problem, result=result, choreography=choreography
        )

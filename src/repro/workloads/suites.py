"""Reproducible workload suites for the experiments E1–E8.

Each function returns the list of problem instances (or the parameterised
specs) one experiment consumes.  Keeping the definitions here — rather than in
the benchmark scripts — means tests can assert properties of exactly the
workloads the benchmarks run on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.problem import OrderingProblem
from repro.network.matrix import clustered_matrix, interpolate_to_uniform
from repro.workloads.distributions import Mixture, Uniform
from repro.workloads.generator import WorkloadSpec, generate_problem, generate_suite

__all__ = [
    "SelectivityRegime",
    "default_spec",
    "scaling_suite",
    "heterogeneity_suite",
    "selectivity_suite",
    "simulation_suite",
]


def default_spec(service_count: int = 8) -> WorkloadSpec:
    """The baseline workload family used across experiments.

    Selective services only, moderate cost spread, symmetric random transfer
    costs comparable in magnitude to processing costs (so neither component
    dominates trivially and the ordering decision genuinely depends on the
    pairwise communication costs).
    """
    return WorkloadSpec(
        service_count=service_count,
        cost=Uniform(0.2, 2.0),
        selectivity=Uniform(0.4, 1.0),
        transfer=Uniform(0.1, 3.0),
        name="baseline",
    )


def scaling_suite(
    sizes: tuple[int, ...] = (5, 6, 7, 8, 9, 10), instances_per_size: int = 5, seed: int = 7
) -> dict[int, list[OrderingProblem]]:
    """Instances for the optimization-time / pruning scaling sweeps (E2, E3)."""
    return {
        size: generate_suite(default_spec(size), instances_per_size, seed=seed + size)
        for size in sizes
    }


def heterogeneity_suite(
    service_count: int = 8,
    levels: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0),
    instances_per_level: int = 5,
    seed: int = 11,
) -> dict[float, list[OrderingProblem]]:
    """Instances for the communication-heterogeneity sweep of experiment E4.

    Each level blends a clustered (LAN/WAN) transfer matrix with its uniform
    counterpart of equal mean; level 0 is the centralized special case, level 1
    the full decentralized setting.
    """
    suites: dict[float, list[OrderingProblem]] = {}
    for level in levels:
        problems = []
        for instance in range(instances_per_level):
            base = generate_problem(default_spec(service_count), seed=seed + instance)
            clustered = clustered_matrix(
                service_count,
                cluster_count=2,
                seed=seed + instance,
                intra_cost=0.1,
                inter_cost=3.0,
            )
            problems.append(base.with_transfer(interpolate_to_uniform(clustered, level)))
        suites[level] = problems
    return suites


@dataclass(frozen=True)
class SelectivityRegime:
    """A named selectivity regime of experiment E5."""

    name: str
    spec: WorkloadSpec


def selectivity_suite(service_count: int = 8) -> list[SelectivityRegime]:
    """The three selectivity regimes of experiment E5."""
    base = default_spec(service_count)
    return [
        SelectivityRegime(
            "highly-selective",
            WorkloadSpec(
                service_count=service_count,
                cost=base.cost,
                selectivity=Uniform(0.05, 0.4),
                transfer=base.transfer,
                name="highly-selective",
            ),
        ),
        SelectivityRegime(
            "weakly-selective",
            WorkloadSpec(
                service_count=service_count,
                cost=base.cost,
                selectivity=Uniform(0.6, 1.0),
                transfer=base.transfer,
                name="weakly-selective",
            ),
        ),
        SelectivityRegime(
            "mixed-proliferative",
            WorkloadSpec(
                service_count=service_count,
                cost=base.cost,
                selectivity=Mixture(Uniform(0.1, 0.8), Uniform(1.0, 2.5), first_weight=0.7),
                transfer=base.transfer,
                name="mixed-proliferative",
            ),
        ),
    ]


def simulation_suite(seed: int = 23, instances: int = 3, service_count: int = 6) -> list[OrderingProblem]:
    """Instances used by the cost-model validation experiment E7."""
    return generate_suite(default_spec(service_count), instances, seed=seed)

"""Parameter distributions for synthetic workloads.

The companion evaluation sweeps service costs, selectivities and transfer
costs over ranges; these small distribution objects keep the workload
generators declarative and the experiment configurations readable.  Every
distribution is sampled from an explicitly passed :class:`random.Random`, so
workloads are reproducible from their seed alone.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.exceptions import WorkloadError

__all__ = [
    "Distribution",
    "Constant",
    "Uniform",
    "LogUniform",
    "Exponential",
    "Normal",
    "Mixture",
    "Discrete",
]


@runtime_checkable
class Distribution(Protocol):
    """Anything that can draw one float from a random stream."""

    def sample(self, rng: random.Random) -> float:  # pragma: no cover - protocol
        """Draw one value."""
        ...


@dataclass(frozen=True)
class Constant:
    """Always returns ``value``."""

    value: float

    def sample(self, rng: random.Random) -> float:
        return self.value


@dataclass(frozen=True)
class Uniform:
    """Uniform on ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise WorkloadError(f"Uniform requires low <= high, got [{self.low}, {self.high}]")

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


@dataclass(frozen=True)
class LogUniform:
    """Log-uniform on ``[low, high]``; both bounds must be positive.

    Useful for costs and transfer times that span orders of magnitude
    (millisecond LAN hops vs hundred-millisecond WAN hops).
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low <= 0 or self.high < self.low:
            raise WorkloadError(
                f"LogUniform requires 0 < low <= high, got [{self.low}, {self.high}]"
            )

    def sample(self, rng: random.Random) -> float:
        return math.exp(rng.uniform(math.log(self.low), math.log(self.high)))


@dataclass(frozen=True)
class Exponential:
    """Exponential with the given mean (optionally shifted by ``offset``)."""

    mean: float
    offset: float = 0.0

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise WorkloadError(f"Exponential requires a positive mean, got {self.mean}")

    def sample(self, rng: random.Random) -> float:
        return self.offset + rng.expovariate(1.0 / self.mean)


@dataclass(frozen=True)
class Normal:
    """Normal distribution truncated below at ``minimum`` (re-sampled)."""

    mean: float
    stddev: float
    minimum: float = 0.0

    def __post_init__(self) -> None:
        if self.stddev < 0:
            raise WorkloadError(f"Normal requires a non-negative stddev, got {self.stddev}")

    def sample(self, rng: random.Random) -> float:
        for _ in range(1000):
            value = rng.gauss(self.mean, self.stddev)
            if value >= self.minimum:
                return value
        # Degenerate configuration (mean far below minimum): clamp instead of looping forever.
        return self.minimum


@dataclass(frozen=True)
class Mixture:
    """Draw from one of two distributions with probability ``first_weight`` / ``1 - first_weight``.

    Used e.g. for selectivity regimes mixing strong filters with proliferative
    services (experiment E5).
    """

    first: Distribution
    second: Distribution
    first_weight: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.first_weight <= 1.0:
            raise WorkloadError(f"first_weight must lie in [0, 1], got {self.first_weight}")

    def sample(self, rng: random.Random) -> float:
        chosen = self.first if rng.random() < self.first_weight else self.second
        return chosen.sample(rng)


@dataclass(frozen=True)
class Discrete:
    """Draw from an explicit list of ``(value, weight)`` pairs."""

    choices: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.choices:
            raise WorkloadError("Discrete needs at least one choice")
        if any(weight < 0 for _, weight in self.choices):
            raise WorkloadError("Discrete weights must be non-negative")
        if sum(weight for _, weight in self.choices) <= 0:
            raise WorkloadError("Discrete weights must not all be zero")

    def sample(self, rng: random.Random) -> float:
        values = [value for value, _ in self.choices]
        weights = [weight for _, weight in self.choices]
        return rng.choices(values, weights=weights, k=1)[0]

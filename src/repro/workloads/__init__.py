"""Workload substrate: parameter distributions, generators, scenarios and suites."""

from repro.workloads.distributions import (
    Constant,
    Discrete,
    Distribution,
    Exponential,
    LogUniform,
    Mixture,
    Normal,
    Uniform,
)
from repro.workloads.generator import WorkloadSpec, generate_problem, generate_suite
from repro.workloads.scenarios import (
    all_scenarios,
    credit_card_screening,
    federated_document_pipeline,
    sensor_quality_pipeline,
)
from repro.workloads.suites import (
    SelectivityRegime,
    default_spec,
    heterogeneity_suite,
    scaling_suite,
    selectivity_suite,
    simulation_suite,
)

__all__ = [
    "Constant",
    "Discrete",
    "Distribution",
    "Exponential",
    "LogUniform",
    "Mixture",
    "Normal",
    "SelectivityRegime",
    "Uniform",
    "WorkloadSpec",
    "all_scenarios",
    "credit_card_screening",
    "default_spec",
    "federated_document_pipeline",
    "generate_problem",
    "generate_suite",
    "heterogeneity_suite",
    "scaling_suite",
    "selectivity_suite",
    "sensor_quality_pipeline",
    "simulation_suite",
]

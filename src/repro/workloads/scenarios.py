"""Named scenarios used by the examples, tests and experiments.

The scenarios are modelled on the motivation of the paper (and of Srivastava
et al.): pipelines of filtering Web Services distributed over wide-area hosts,
where calling order is flexible but response time depends heavily on it.

* :func:`credit_card_screening` — the introduction's running example: person
  identifiers flow through a card-number lookup (proliferative), a payment
  -history filter, a fraud-score filter and a geographic filter, hosted in two
  data centres.
* :func:`sensor_quality_pipeline` — a sensor-network cleaning pipeline of
  cheap, highly selective filters on edge hosts plus an expensive calibration
  service in the cloud.
* :func:`federated_document_pipeline` — document enrichment across three
  providers with strongly asymmetric transfer costs and one precedence
  constraint (decryption before content inspection).
"""

from __future__ import annotations

from repro.core.cost_model import CommunicationCostMatrix
from repro.core.precedence import PrecedenceGraph
from repro.core.problem import OrderingProblem
from repro.core.service import Service

__all__ = [
    "credit_card_screening",
    "sensor_quality_pipeline",
    "federated_document_pipeline",
    "all_scenarios",
]


def credit_card_screening() -> OrderingProblem:
    """The paper's motivating example: screening potential customers.

    Services (per-tuple costs in milliseconds):

    * ``card_lookup`` — person id -> list of credit-card numbers (σ > 1),
    * ``payment_history`` — keeps only customers with a good payment history,
    * ``fraud_score`` — keeps only low-risk customers,
    * ``geo_filter`` — keeps only customers in the serviced region.

    The lookup and history services live in one data centre, the fraud and geo
    services in another; intra-DC transfers are cheap, inter-DC transfers are
    an order of magnitude more expensive.
    """
    services = [
        Service("card_lookup", cost=4.0, selectivity=1.8, host="dc-east-1"),
        Service("payment_history", cost=6.0, selectivity=0.45, host="dc-east-2"),
        Service("fraud_score", cost=9.0, selectivity=0.30, host="dc-west-1"),
        Service("geo_filter", cost=2.0, selectivity=0.55, host="dc-west-2"),
    ]
    hosts = [service.host for service in services]
    assert all(host is not None for host in hosts)
    inter_dc = 12.0
    intra_dc = 1.5

    def host_cost(i: int, j: int) -> float:
        same_dc = hosts[i].split("-")[1] == hosts[j].split("-")[1]  # type: ignore[union-attr]
        return intra_dc if same_dc else inter_dc

    transfer = CommunicationCostMatrix.from_function(len(services), host_cost)
    return OrderingProblem(services, transfer, name="credit-card-screening")


def sensor_quality_pipeline() -> OrderingProblem:
    """Edge/cloud sensor-data cleaning pipeline (all services selective)."""
    services = [
        Service("range_check", cost=0.4, selectivity=0.95, host="edge-a"),
        Service("dedup", cost=0.8, selectivity=0.70, host="edge-b"),
        Service("outlier_filter", cost=1.5, selectivity=0.60, host="edge-c"),
        Service("calibration", cost=6.0, selectivity=0.98, host="cloud-1"),
        Service("anomaly_model", cost=9.0, selectivity=0.25, host="cloud-2"),
        Service("compliance_tag", cost=0.9, selectivity=1.0, host="edge-d"),
    ]
    edge_hosts = {"edge-a", "edge-b", "edge-c", "edge-d"}

    def host_cost(i: int, j: int) -> float:
        source_edge = services[i].host in edge_hosts
        destination_edge = services[j].host in edge_hosts
        if source_edge and destination_edge:
            return 0.3
        if source_edge != destination_edge:
            return 5.0
        return 0.8  # cloud to cloud

    transfer = CommunicationCostMatrix.from_function(len(services), host_cost)
    return OrderingProblem(services, transfer, name="sensor-quality-pipeline")


def federated_document_pipeline() -> OrderingProblem:
    """Document enrichment across three providers, with one precedence constraint.

    The ``decrypt`` service must run before ``pii_scrubber`` and
    ``content_classifier`` (they need plaintext).  Upload and download
    bandwidths differ per provider, so the transfer matrix is asymmetric.
    """
    services = [
        Service("decrypt", cost=2.5, selectivity=1.0, host="provider-a"),
        Service("language_filter", cost=1.0, selectivity=0.5, host="provider-a"),
        Service("pii_scrubber", cost=5.0, selectivity=0.9, host="provider-b"),
        Service("content_classifier", cost=8.0, selectivity=0.35, host="provider-c"),
        Service("summarizer", cost=12.0, selectivity=1.0, host="provider-c"),
    ]
    # Asymmetric per-tuple transfer costs (ms): provider-b has a slow uplink.
    matrix = [
        [0.0, 0.5, 6.0, 9.0, 9.0],
        [0.5, 0.0, 6.0, 9.0, 9.0],
        [10.0, 10.0, 0.0, 14.0, 14.0],
        [8.0, 8.0, 12.0, 0.0, 0.4],
        [8.0, 8.0, 12.0, 0.4, 0.0],
    ]
    precedence = PrecedenceGraph(len(services))
    precedence.add(0, 2)  # decrypt before pii_scrubber
    precedence.add(0, 3)  # decrypt before content_classifier
    return OrderingProblem(
        services,
        CommunicationCostMatrix(matrix),
        precedence=precedence,
        name="federated-document-pipeline",
    )


def all_scenarios() -> dict[str, OrderingProblem]:
    """All named scenarios keyed by their problem name."""
    scenarios = [
        credit_card_screening(),
        sensor_quality_pipeline(),
        federated_document_pipeline(),
    ]
    return {problem.name: problem for problem in scenarios}

"""Random problem-instance generators.

A :class:`WorkloadSpec` describes a family of ordering problems (how many
services, how their costs/selectivities/transfer costs are distributed, how
much precedence structure they have); :func:`generate_problem` draws a
concrete :class:`repro.core.problem.OrderingProblem` from the family, and
:func:`generate_suite` draws a reproducible batch for an experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.cost_model import CommunicationCostMatrix
from repro.core.precedence import PrecedenceGraph
from repro.core.problem import OrderingProblem
from repro.core.service import Service
from repro.exceptions import WorkloadError
from repro.utils.rng import derive_rng
from repro.workloads.distributions import Distribution, Uniform

__all__ = ["WorkloadSpec", "generate_problem", "generate_suite"]


@dataclass(frozen=True)
class WorkloadSpec:
    """A family of random ordering problems."""

    service_count: int = 8
    """Number of services ``N``."""

    cost: Distribution = field(default_factory=lambda: Uniform(0.5, 5.0))
    """Distribution of per-tuple processing costs ``c_i``."""

    selectivity: Distribution = field(default_factory=lambda: Uniform(0.1, 1.0))
    """Distribution of selectivities ``σ_i``."""

    transfer: Distribution = field(default_factory=lambda: Uniform(0.1, 2.0))
    """Distribution of per-tuple transfer costs ``t_{i,j}``."""

    symmetric_transfer: bool = True
    """Whether ``t_{i,j} = t_{j,i}`` (links with symmetric characteristics)."""

    precedence_density: float = 0.0
    """Probability that an (i < j) service pair is constrained ``i before j``
    (0 = unconstrained, the paper's restricted setting)."""

    sink_transfer: Distribution | None = None
    """Optional distribution of per-tuple transfer costs to the consumer."""

    name: str = "random"
    """Prefix used for the generated problems' names."""

    def __post_init__(self) -> None:
        if self.service_count < 1:
            raise WorkloadError(f"service_count must be positive, got {self.service_count}")
        if not 0.0 <= self.precedence_density <= 1.0:
            raise WorkloadError(
                f"precedence_density must lie in [0, 1], got {self.precedence_density}"
            )

    def with_service_count(self, service_count: int) -> "WorkloadSpec":
        """Copy of the spec with a different number of services (scaling sweeps)."""
        return replace(self, service_count=service_count)


def generate_problem(spec: WorkloadSpec, seed: int = 0) -> OrderingProblem:
    """Draw one concrete ordering problem from ``spec``.

    The same ``(spec, seed)`` pair always produces the same problem.
    """
    size = spec.service_count
    cost_rng = derive_rng(seed, spec.name, "cost")
    selectivity_rng = derive_rng(seed, spec.name, "selectivity")
    transfer_rng = derive_rng(seed, spec.name, "transfer")
    precedence_rng = derive_rng(seed, spec.name, "precedence")
    sink_rng = derive_rng(seed, spec.name, "sink")

    services = [
        Service(
            name=f"WS{index}",
            cost=max(spec.cost.sample(cost_rng), 0.0),
            selectivity=max(spec.selectivity.sample(selectivity_rng), 1e-6),
            host=f"host{index}",
        )
        for index in range(size)
    ]

    rows = [[0.0] * size for _ in range(size)]
    for i in range(size):
        for j in range(size):
            if i == j:
                continue
            if spec.symmetric_transfer and j < i:
                rows[i][j] = rows[j][i]
            else:
                rows[i][j] = max(spec.transfer.sample(transfer_rng), 0.0)
    transfer = CommunicationCostMatrix(rows)

    precedence: PrecedenceGraph | None = None
    if spec.precedence_density > 0.0 and size > 1:
        precedence = PrecedenceGraph(size)
        for i in range(size):
            for j in range(i + 1, size):
                if precedence_rng.random() < spec.precedence_density:
                    precedence.add(i, j)
        if not precedence.has_constraints:
            precedence = None

    sink_transfer = None
    if spec.sink_transfer is not None:
        sink_transfer = [max(spec.sink_transfer.sample(sink_rng), 0.0) for _ in range(size)]

    return OrderingProblem(
        services,
        transfer,
        precedence=precedence,
        sink_transfer=sink_transfer,
        name=f"{spec.name}-n{size}-seed{seed}",
    )


def generate_suite(spec: WorkloadSpec, count: int, seed: int = 0) -> list[OrderingProblem]:
    """Draw ``count`` independent problems from ``spec`` (seeds derived from ``seed``)."""
    if count < 0:
        raise WorkloadError(f"count must be non-negative, got {count}")
    return [generate_problem(spec, seed=seed * 10_000 + index) for index in range(count)]

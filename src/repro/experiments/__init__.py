"""The reconstructed evaluation: experiments E1–E8 and their registry.

The brief announcement contains no tables or figures of its own; the suite
below reconstructs the evaluation its text and companion technical report
describe (see ``DESIGN.md`` for the mapping).  Each experiment can be run
directly::

    from repro.experiments import REGISTRY
    result = REGISTRY.run("E2", sizes=(5, 6, 7))
    print(result.to_markdown())

and each has a pytest-benchmark target under ``benchmarks/``.
"""

from repro.experiments.e1_optimality import run_e1_optimality
from repro.experiments.e2_pruning import run_e2_pruning
from repro.experiments.e3_scaling import run_e3_scaling
from repro.experiments.e4_plan_quality import BASELINES, run_e4_plan_quality
from repro.experiments.e5_selectivity import run_e5_selectivity
from repro.experiments.e6_btsp import run_e6_btsp
from repro.experiments.e7_simulation import run_e7_simulation
from repro.experiments.e8_ablation import ABLATION_CONFIGURATIONS, run_e8_ablation
from repro.experiments.harness import (
    Experiment,
    ExperimentRegistry,
    ExperimentResult,
    optimize_suite,
)
from repro.experiments.report import generate_report, render_report, write_report

REGISTRY = ExperimentRegistry()
"""All experiments of the reconstructed evaluation, keyed E1..E8."""

for _experiment in (
    Experiment(
        "E1",
        "Optimality of the branch-and-bound ordering",
        "Does branch-and-bound always match exhaustive search?",
        run_e1_optimality,
    ),
    Experiment(
        "E2",
        "Pruning effectiveness",
        "What fraction of the n! orderings does the search explore?",
        run_e2_pruning,
    ),
    Experiment(
        "E3",
        "Optimization time scaling",
        "How does optimization time grow with the number of services?",
        run_e3_scaling,
    ),
    Experiment(
        "E4",
        "Plan quality vs baselines",
        "How much worse are communication-oblivious orderings under heterogeneous transfer costs?",
        run_e4_plan_quality,
    ),
    Experiment(
        "E5",
        "Selectivity regimes",
        "How do selectivity ranges (including sigma > 1) affect pruning and quality?",
        run_e5_selectivity,
    ),
    Experiment(
        "E6",
        "Bottleneck-TSP special case",
        "Does the degenerate instance family coincide with bottleneck TSP?",
        run_e6_btsp,
    ),
    Experiment(
        "E7",
        "Cost-model validation by simulation",
        "Does simulated decentralized pipelined execution match Eq. 1?",
        run_e7_simulation,
    ),
    Experiment(
        "E8",
        "Pruning-rule ablation",
        "What does each lemma contribute to the search-space reduction?",
        run_e8_ablation,
    ),
):
    REGISTRY.register(_experiment)

__all__ = [
    "ABLATION_CONFIGURATIONS",
    "BASELINES",
    "Experiment",
    "ExperimentRegistry",
    "ExperimentResult",
    "REGISTRY",
    "generate_report",
    "optimize_suite",
    "render_report",
    "run_e1_optimality",
    "run_e2_pruning",
    "run_e3_scaling",
    "run_e4_plan_quality",
    "run_e5_selectivity",
    "run_e6_btsp",
    "run_e7_simulation",
    "run_e8_ablation",
    "write_report",
]

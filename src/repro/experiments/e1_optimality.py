"""E1 — Optimality of the branch-and-bound algorithm.

The paper claims the branch-and-bound algorithm "is guaranteed to find the
linear ordering of services which minimizes the query response time".  The
experiment draws random instances per problem size and cross-checks the
branch-and-bound cost against both exhaustive enumeration and the subset
dynamic programme; the table reports, per size, how many instances matched and
the largest relative deviation observed (which should be numerically zero).
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult, optimize_suite
from repro.utils.tables import Table
from repro.workloads.suites import default_spec
from repro.workloads.generator import generate_suite

__all__ = ["run_e1_optimality"]


def run_e1_optimality(
    sizes: tuple[int, ...] = (4, 5, 6, 7, 8),
    instances_per_size: int = 5,
    seed: int = 101,
    workers: int | None = None,
) -> ExperimentResult:
    """Run the optimality cross-check and return its table.

    ``workers`` > 1 bulk-compiles each per-size suite on the parallel
    engine's worker pool (identical results, less wall-clock on multi-core
    machines).
    """
    table = Table(
        ["n", "instances", "bb = exhaustive", "bb = dp", "max relative gap"],
        title="E1: branch-and-bound vs exact baselines",
    )
    all_match = True
    # One pool for the whole experiment: worker startup is paid once and the
    # three per-size algorithm sweeps share the workers' warm problem caches.
    pool = None
    if workers is not None and workers > 1:
        from repro.parallel import OptimizerPool

        pool = OptimizerPool(workers=workers)
    try:
        for size in sizes:
            problems = generate_suite(default_spec(size), instances_per_size, seed=seed + size)
            matches_exhaustive = 0
            matches_dp = 0
            worst_gap = 0.0
            exhaustive_results = optimize_suite(problems, "exhaustive", pool=pool)
            bb_results = optimize_suite(problems, "branch_and_bound", pool=pool)
            dp_results = optimize_suite(problems, "dynamic_programming", pool=pool)
            for optimal, bb, dp in zip(exhaustive_results, bb_results, dp_results):
                gap = abs(bb.cost - optimal.cost) / max(optimal.cost, 1e-12)
                worst_gap = max(worst_gap, gap)
                if gap <= 1e-9:
                    matches_exhaustive += 1
                if abs(bb.cost - dp.cost) / max(dp.cost, 1e-12) <= 1e-9:
                    matches_dp += 1
            if matches_exhaustive != len(problems) or matches_dp != len(problems):
                all_match = False
            table.add_row(size, len(problems), matches_exhaustive, matches_dp, worst_gap)
    finally:
        if pool is not None:
            pool.close()

    notes = [
        "Every instance matches the exhaustive optimum, as the paper's optimality claim requires."
        if all_match
        else "MISMATCH DETECTED: the branch-and-bound result deviated from the exhaustive optimum.",
    ]
    return ExperimentResult(
        experiment_id="E1",
        title="Optimality of the branch-and-bound ordering",
        table=table,
        parameters={
            "sizes": list(sizes),
            "instances_per_size": instances_per_size,
            "seed": seed,
            "workers": workers,
        },
        notes=notes,
    )

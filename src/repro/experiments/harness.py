"""The experiment harness.

Every experiment (E1–E8, see ``DESIGN.md``) is a function returning an
:class:`ExperimentResult`: a table of rows (what a paper table/figure would
plot), free-form notes, and the parameters that produced it.  The harness
provides the result container, a registry, markdown rendering used to
regenerate ``EXPERIMENTS.md``, and :func:`optimize_suite` — the bulk
compilation entry point experiments use to solve whole instance suites,
optionally on the parallel engine's worker pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.core.optimizer import optimize
from repro.core.problem import OrderingProblem
from repro.core.result import OptimizationResult
from repro.exceptions import ExperimentError
from repro.utils.tables import Table

__all__ = ["ExperimentResult", "Experiment", "ExperimentRegistry", "optimize_suite"]


def optimize_suite(
    problems: Sequence[OrderingProblem],
    algorithm: str = "branch_and_bound",
    workers: int | None = None,
    pool: "object | None" = None,
    **options: object,
) -> list[OptimizationResult]:
    """Optimize every problem of a suite with one algorithm, preserving order.

    With ``workers`` unset (or 1) the suite is compiled sequentially in
    process — fully deterministic, no setup cost, the right default for the
    small suites of the reconstructed experiments.  With ``workers > 1`` the
    suite is handed to the parallel engine's
    :class:`~repro.parallel.pool.OptimizerPool`, which fans the problems out
    over worker processes (deduplicating structural twins); the results are
    identical either way, the wire codec being lossless.  Callers compiling
    several suites should create one pool and pass it via ``pool`` — worker
    startup is paid once and the workers' warm evaluator caches survive
    across calls.
    """
    if pool is not None:
        return pool.optimize_many(problems, algorithm=algorithm, options=options)  # type: ignore[attr-defined]
    if workers is not None and workers > 1:
        from repro.parallel import OptimizerPool

        with OptimizerPool(workers=workers) as shared:
            return shared.optimize_many(problems, algorithm=algorithm, options=options)
    return [optimize(problem, algorithm=algorithm, **options) for problem in problems]


@dataclass
class ExperimentResult:
    """The outcome of one experiment run."""

    experiment_id: str
    """Identifier such as ``"E1"``."""

    title: str
    """Short description of what the experiment measures."""

    table: Table
    """The rows the paper's corresponding table/figure would contain."""

    parameters: dict[str, Any] = field(default_factory=dict)
    """The parameters the experiment ran with (sizes, seeds, repetitions)."""

    notes: list[str] = field(default_factory=list)
    """Observations worth recording next to the table (e.g. claim checks)."""

    def to_markdown(self) -> str:
        """Render the full result (title, parameters, table, notes) as markdown."""
        lines = [f"## {self.experiment_id} — {self.title}", ""]
        if self.parameters:
            rendered = ", ".join(f"{key}={value}" for key, value in sorted(self.parameters.items()))
            lines.append(f"*Parameters:* {rendered}")
            lines.append("")
        lines.append(self.table.to_markdown())
        if self.notes:
            lines.append("")
            for note in self.notes:
                lines.append(f"* {note}")
        return "\n".join(lines)

    def row_dicts(self) -> list[dict[str, Any]]:
        """The table rows as dictionaries (convenient for assertions in tests)."""
        return self.table.to_dicts()


@dataclass(frozen=True)
class Experiment:
    """A registered experiment definition."""

    experiment_id: str
    title: str
    question: str
    runner: Callable[..., ExperimentResult]

    def run(self, **parameters: Any) -> ExperimentResult:
        """Execute the experiment with the given parameter overrides."""
        return self.runner(**parameters)


class ExperimentRegistry:
    """Keeps the experiment definitions addressable by id."""

    def __init__(self) -> None:
        self._experiments: dict[str, Experiment] = {}

    def register(self, experiment: Experiment) -> None:
        """Add an experiment; duplicate ids are rejected."""
        if experiment.experiment_id in self._experiments:
            raise ExperimentError(f"experiment {experiment.experiment_id!r} is already registered")
        self._experiments[experiment.experiment_id] = experiment

    def get(self, experiment_id: str) -> Experiment:
        """Look up an experiment by id."""
        try:
            return self._experiments[experiment_id]
        except KeyError:
            raise ExperimentError(
                f"unknown experiment {experiment_id!r}; registered: {sorted(self._experiments)}"
            ) from None

    def run(self, experiment_id: str, **parameters: Any) -> ExperimentResult:
        """Run the experiment with the given id."""
        return self.get(experiment_id).run(**parameters)

    def run_all(self, **parameters: Mapping[str, Any]) -> list[ExperimentResult]:
        """Run every registered experiment with per-experiment parameter overrides.

        ``parameters`` maps experiment ids to keyword dictionaries; experiments
        without an entry run with their defaults.
        """
        results = []
        for experiment_id in sorted(self._experiments):
            overrides = dict(parameters.get(experiment_id, {}))
            results.append(self.run(experiment_id, **overrides))
        return results

    def ids(self) -> list[str]:
        """All registered experiment ids, sorted."""
        return sorted(self._experiments)

    def __len__(self) -> int:
        return len(self._experiments)

    def __contains__(self, experiment_id: object) -> bool:
        return experiment_id in self._experiments

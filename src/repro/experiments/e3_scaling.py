"""E3 — Optimization wall-clock time as the number of services grows.

The companion report claims the branch-and-bound algorithm is "particularly
efficient" in practice.  The experiment times branch-and-bound, the subset
dynamic programme and (for small sizes) exhaustive enumeration on the same
instances and reports mean optimization times per size, plus the speed-up of
branch-and-bound over exhaustive search.
"""

from __future__ import annotations

from repro.core.branch_and_bound import branch_and_bound
from repro.core.dynamic_programming import dynamic_programming
from repro.core.exhaustive import exhaustive_search
from repro.experiments.harness import ExperimentResult
from repro.utils.tables import Table
from repro.workloads.generator import generate_suite
from repro.workloads.suites import default_spec

__all__ = ["run_e3_scaling"]


def run_e3_scaling(
    sizes: tuple[int, ...] = (5, 6, 7, 8, 9),
    instances_per_size: int = 3,
    exhaustive_limit: int = 8,
    seed: int = 303,
) -> ExperimentResult:
    """Time the optimizers across a size sweep."""
    table = Table(
        ["n", "bb ms", "dp ms", "exhaustive ms", "bb speedup vs exhaustive"],
        title="E3: optimization time scaling",
    )
    for size in sizes:
        problems = generate_suite(default_spec(size), instances_per_size, seed=seed + size)
        bb_time = 0.0
        dp_time = 0.0
        ex_time = 0.0
        run_exhaustive = size <= exhaustive_limit
        for problem in problems:
            bb_time += branch_and_bound(problem).statistics.elapsed_seconds
            dp_time += dynamic_programming(problem).statistics.elapsed_seconds
            if run_exhaustive:
                ex_time += exhaustive_search(problem).statistics.elapsed_seconds
        count = len(problems)
        bb_ms = 1e3 * bb_time / count
        dp_ms = 1e3 * dp_time / count
        ex_ms = 1e3 * ex_time / count if run_exhaustive else float("nan")
        speedup = (ex_ms / bb_ms) if run_exhaustive and bb_ms > 0 else float("nan")
        table.add_row(size, round(bb_ms, 3), round(dp_ms, 3), round(ex_ms, 3), round(speedup, 1))

    notes = [
        "Branch-and-bound remains in the millisecond range across the sweep while exhaustive "
        "enumeration grows factorially; its advantage widens with n.",
        f"Exhaustive search is only run up to n={exhaustive_limit}.",
    ]
    return ExperimentResult(
        experiment_id="E3",
        title="Optimization time vs number of services",
        table=table,
        parameters={
            "sizes": list(sizes),
            "instances_per_size": instances_per_size,
            "exhaustive_limit": exhaustive_limit,
            "seed": seed,
        },
        notes=notes,
    )

"""E4 — Plan quality vs baselines as communication heterogeneity grows.

The paper's raison d'être is the *decentralized* setting: when inter-service
transfer costs differ, a communication-oblivious (centralized) ordering can be
far from optimal.  The experiment sweeps the heterogeneity of the transfer
matrix from 0 (uniform, the Srivastava setting) to 1 (fully clustered LAN/WAN)
while holding the mean transfer cost fixed, and reports, for every baseline,
the mean ratio of its bottleneck cost to the optimum.  The expected shape: all
ratios start near 1.0 at heterogeneity 0 and the communication-oblivious
baselines degrade as heterogeneity grows.
"""

from __future__ import annotations

from repro.core.greedy import GreedyOptimizer, GreedyStrategy
from repro.core.local_search import HillClimbingOptimizer
from repro.core.srivastava import SrivastavaOptimizer
from repro.experiments.harness import ExperimentResult, optimize_suite
from repro.utils.tables import Table
from repro.workloads.suites import heterogeneity_suite

__all__ = ["run_e4_plan_quality", "BASELINES"]

BASELINES = (
    "srivastava_centralized",
    "greedy_nearest_successor",
    "greedy_cheapest_cost",
    "hill_climbing",
    "random",
)
"""Baselines reported by the experiment, in column order."""


def _baseline_cost(name: str, problem, seed: int) -> float:
    if name == "srivastava_centralized":
        return SrivastavaOptimizer().optimize(problem).cost
    if name == "greedy_nearest_successor":
        return GreedyOptimizer(GreedyStrategy.NEAREST_SUCCESSOR).optimize(problem).cost
    if name == "greedy_cheapest_cost":
        return GreedyOptimizer(GreedyStrategy.CHEAPEST_COST).optimize(problem).cost
    if name == "hill_climbing":
        return HillClimbingOptimizer(seed=seed).optimize(problem).cost
    if name == "random":
        return GreedyOptimizer(GreedyStrategy.RANDOM, seed=seed).optimize(problem).cost
    raise ValueError(f"unknown baseline {name!r}")


def run_e4_plan_quality(
    service_count: int = 8,
    levels: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0),
    instances_per_level: int = 4,
    seed: int = 404,
    workers: int | None = None,
) -> ExperimentResult:
    """Sweep transfer-cost heterogeneity and compare baselines to the optimum.

    The exact optima are bulk-compiled per level through
    :func:`~repro.experiments.harness.optimize_suite` (``workers`` > 1 fans
    them out over the parallel engine's worker pool).
    """
    suites = heterogeneity_suite(
        service_count=service_count,
        levels=levels,
        instances_per_level=instances_per_level,
        seed=seed,
    )
    headers = ["heterogeneity", "optimal cost"] + [f"{name} ratio" for name in BASELINES]
    table = Table(headers, title="E4: plan quality vs communication heterogeneity")

    degradation: dict[str, list[float]] = {name: [] for name in BASELINES}
    # One pool for the whole sweep: worker startup is paid once, not per level.
    pool = None
    if workers is not None and workers > 1:
        from repro.parallel import OptimizerPool

        pool = OptimizerPool(workers=workers)
    try:
        for level in levels:
            problems = suites[level]
            optimal_costs: list[float] = []
            ratios: dict[str, list[float]] = {name: [] for name in BASELINES}
            optima = optimize_suite(problems, "branch_and_bound", pool=pool)
            for index, (problem, exact) in enumerate(zip(problems, optima)):
                optimum = exact.cost
                optimal_costs.append(optimum)
                for name in BASELINES:
                    cost = _baseline_cost(name, problem, seed=seed + index)
                    ratios[name].append(cost / max(optimum, 1e-12))
            row = [level, sum(optimal_costs) / len(optimal_costs)]
            for name in BASELINES:
                mean_ratio = sum(ratios[name]) / len(ratios[name])
                degradation[name].append(mean_ratio)
                row.append(round(mean_ratio, 4))
            table.add_row(*row)
    finally:
        if pool is not None:
            pool.close()

    centralized = degradation["srivastava_centralized"]
    notes = [
        "Every ratio is >= 1.0 by construction (the branch-and-bound plan is optimal).",
        "The communication-oblivious centralized ordering degrades as heterogeneity grows "
        f"(mean ratio {centralized[0]:.3f} at level {levels[0]} -> {centralized[-1]:.3f} at level "
        f"{levels[-1]}), which is the gap the decentralized-aware optimizer closes.",
    ]
    return ExperimentResult(
        experiment_id="E4",
        title="Plan quality of baselines relative to the optimal decentralized ordering",
        table=table,
        parameters={
            "service_count": service_count,
            "levels": list(levels),
            "instances_per_level": instances_per_level,
            "seed": seed,
            "workers": workers,
        },
        notes=notes,
    )

"""E5 — Effect of the selectivity regime.

The restricted setting of the paper assumes all services are selective
(``σ <= 1``); the ``ε̄`` measure has to be adapted when proliferative services
are present.  The experiment draws instances from three selectivity regimes
(strongly selective, weakly selective, mixed with proliferative services) and
reports the optimizer's pruning behaviour and the gap of a greedy baseline in
each regime — checking both that the algorithm stays optimal with ``σ > 1``
and how much harder the search becomes.
"""

from __future__ import annotations

from repro.core.branch_and_bound import branch_and_bound
from repro.core.dynamic_programming import dynamic_programming
from repro.core.greedy import GreedyOptimizer, GreedyStrategy
from repro.experiments.harness import ExperimentResult
from repro.utils.tables import Table
from repro.workloads.generator import generate_suite
from repro.workloads.suites import selectivity_suite

__all__ = ["run_e5_selectivity"]


def run_e5_selectivity(
    service_count: int = 7,
    instances_per_regime: int = 5,
    seed: int = 505,
) -> ExperimentResult:
    """Compare optimizer behaviour across selectivity regimes."""
    table = Table(
        [
            "regime",
            "mean optimal cost",
            "bb nodes",
            "lemma2 closures",
            "greedy/optimal ratio",
            "optimal (vs dp)",
        ],
        title="E5: selectivity regimes",
    )
    notes: list[str] = []
    for regime in selectivity_suite(service_count):
        problems = generate_suite(regime.spec, instances_per_regime, seed=seed)
        costs: list[float] = []
        nodes = 0
        closures = 0
        ratios: list[float] = []
        all_optimal = True
        for problem in problems:
            bb = branch_and_bound(problem)
            dp = dynamic_programming(problem)
            if abs(bb.cost - dp.cost) > 1e-9 * max(1.0, dp.cost):
                all_optimal = False
            costs.append(bb.cost)
            nodes += bb.statistics.nodes_expanded
            closures += bb.statistics.lemma2_closures
            greedy_cost = GreedyOptimizer(GreedyStrategy.NEAREST_SUCCESSOR).optimize(problem).cost
            ratios.append(greedy_cost / max(bb.cost, 1e-12))
        count = len(problems)
        table.add_row(
            regime.name,
            sum(costs) / count,
            round(nodes / count, 1),
            round(closures / count, 1),
            round(sum(ratios) / count, 4),
            all_optimal,
        )
        if not all_optimal:
            notes.append(f"MISMATCH: regime {regime.name} produced a non-optimal plan.")

    if not notes:
        notes.append(
            "Branch-and-bound stays optimal in every regime, including mixed proliferative "
            "instances, via the modified epsilon-bar bound."
        )
    notes.append(
        "Strongly selective workloads close (lemma 2) earlier because the residual bound "
        "drops quickly with the prefix's output rate."
    )
    return ExperimentResult(
        experiment_id="E5",
        title="Effect of the selectivity regime on pruning and plan quality",
        table=table,
        parameters={
            "service_count": service_count,
            "instances_per_regime": instances_per_regime,
            "seed": seed,
        },
        notes=notes,
    )

"""E7 — Validating the bottleneck cost model against simulated execution.

The cost metric of Eq. 1 is an *analytic abstraction* of pipelined
decentralized execution.  The companion report backs it with simulation and
real runs; the reproduction backs it with the discrete-event simulator: for
each instance, three plans (the optimum, the communication-oblivious
centralized plan, and a random plan) are executed on a long tuple stream, and
the table compares predicted bottleneck cost with the simulated makespan per
tuple.  Two checks matter:

* the relative error between model and simulation is small, and
* the *ranking* of the plans is preserved (the optimizer's decisions carry
  over to the simulated metric).
"""

from __future__ import annotations

from repro.core.branch_and_bound import branch_and_bound
from repro.core.greedy import GreedyOptimizer, GreedyStrategy
from repro.core.srivastava import SrivastavaOptimizer
from repro.experiments.harness import ExperimentResult
from repro.simulation.pipeline import PipelineSimulator, SimulationConfig
from repro.utils.tables import Table
from repro.workloads.suites import simulation_suite

__all__ = ["run_e7_simulation"]


def run_e7_simulation(
    instances: int = 3,
    service_count: int = 6,
    tuple_count: int = 1500,
    seed: int = 707,
) -> ExperimentResult:
    """Simulate optimal/centralized/random plans and compare with the model."""
    table = Table(
        [
            "instance",
            "plan",
            "predicted cost",
            "simulated cost",
            "relative error",
            "bottleneck matches",
        ],
        title="E7: cost-model validation by simulation",
    )
    ranking_preserved = 0
    total_instances = 0
    worst_error = 0.0

    problems = simulation_suite(seed=seed, instances=instances, service_count=service_count)
    for index, problem in enumerate(problems):
        plans = {
            "optimal (b&b)": branch_and_bound(problem).plan.order,
            "centralized (srivastava)": SrivastavaOptimizer().optimize(problem).plan.order,
            "random": GreedyOptimizer(GreedyStrategy.RANDOM, seed=seed + index)
            .optimize(problem)
            .plan.order,
        }
        simulator = PipelineSimulator(problem, SimulationConfig(tuple_count=tuple_count))
        predicted: dict[str, float] = {}
        simulated: dict[str, float] = {}
        for label, order in plans.items():
            report = simulator.simulate(order)
            predicted[label] = report.predicted_cost
            simulated[label] = report.normalized_makespan
            worst_error = max(worst_error, report.model_relative_error)
            table.add_row(
                index,
                label,
                round(report.predicted_cost, 4),
                round(report.normalized_makespan, 4),
                round(report.model_relative_error, 4),
                report.bottleneck_matches_model,
            )
        total_instances += 1
        predicted_order = sorted(plans, key=lambda label: predicted[label])
        simulated_order = sorted(plans, key=lambda label: simulated[label])
        if predicted_order[0] == simulated_order[0]:
            ranking_preserved += 1

    notes = [
        f"Largest relative error between Eq. 1 and the simulated makespan per tuple: "
        f"{worst_error:.2%} (single-tuple blocks, saturated source).",
        f"The plan the model ranks best is also the best simulated plan in "
        f"{ranking_preserved}/{total_instances} instances.",
    ]
    return ExperimentResult(
        experiment_id="E7",
        title="Bottleneck cost model vs discrete-event simulation",
        table=table,
        parameters={
            "instances": instances,
            "service_count": service_count,
            "tuple_count": tuple_count,
            "seed": seed,
        },
        notes=notes,
    )

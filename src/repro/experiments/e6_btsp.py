"""E6 — The bottleneck-TSP special case.

The paper's hardness argument rests on a reduction: with unit selectivities
and zero processing costs, minimising the bottleneck cost metric is exactly
the bottleneck TSP (path) problem.  The experiment generates random distance
matrices, solves them once through the reduction + branch-and-bound and once
with the dedicated bottleneck-path solver, and verifies the two optima agree —
the executable form of the reduction.
"""

from __future__ import annotations

from repro.core.branch_and_bound import branch_and_bound
from repro.core.bottleneck_tsp import BottleneckPathSolver, problem_from_distance_matrix
from repro.experiments.harness import ExperimentResult
from repro.network.matrix import random_matrix
from repro.utils.tables import Table

__all__ = ["run_e6_btsp"]


def run_e6_btsp(
    sizes: tuple[int, ...] = (5, 6, 7, 8),
    instances_per_size: int = 4,
    seed: int = 606,
) -> ExperimentResult:
    """Cross-check the reduction on random bottleneck-TSP instances."""
    table = Table(
        ["n", "instances", "optima agree", "mean bottleneck", "bb nodes", "btsp nodes"],
        title="E6: bottleneck-TSP special case",
    )
    all_agree = True
    for size in sizes:
        agree = 0
        bottlenecks: list[float] = []
        bb_nodes = 0
        btsp_nodes = 0
        for instance in range(instances_per_size):
            distances = random_matrix(size, seed=seed + size * 100 + instance, low=0.1, high=10.0)
            problem = problem_from_distance_matrix(distances)
            bb = branch_and_bound(problem)
            btsp = BottleneckPathSolver().solve(distances)
            bb_nodes += bb.statistics.nodes_expanded
            btsp_nodes += btsp.nodes_expanded
            bottlenecks.append(btsp.bottleneck)
            if abs(bb.cost - btsp.bottleneck) <= 1e-9 * max(1.0, btsp.bottleneck):
                agree += 1
        if agree != instances_per_size:
            all_agree = False
        table.add_row(
            size,
            instances_per_size,
            agree,
            sum(bottlenecks) / len(bottlenecks),
            round(bb_nodes / instances_per_size, 1),
            round(btsp_nodes / instances_per_size, 1),
        )

    notes = [
        "The branch-and-bound optimum equals the dedicated bottleneck-path optimum on every "
        "instance, confirming the reduction the NP-hardness argument uses."
        if all_agree
        else "MISMATCH DETECTED between the reduction and the bottleneck-path solver.",
    ]
    return ExperimentResult(
        experiment_id="E6",
        title="Equivalence with the bottleneck TSP on the degenerate instances",
        table=table,
        parameters={
            "sizes": list(sizes),
            "instances_per_size": instances_per_size,
            "seed": seed,
        },
        notes=notes,
    )

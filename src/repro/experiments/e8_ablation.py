"""E8 — Ablation of the pruning rules.

The paper devotes its technical section to three properties (the monotone
lower bound, the ``ε >= ε̄`` closure, the bottleneck-prefix pruning) and to the
cheapest-successor expansion policy.  The ablation quantifies what each rule
contributes: the same instances are solved with rules switched off one at a
time, and the table reports explored prefixes and wall-clock time per
configuration.  Every configuration must return the same optimal cost — the
rules trade work, not correctness.
"""

from __future__ import annotations

from repro.core.branch_and_bound import BranchAndBoundOptions, SuccessorOrder, branch_and_bound
from repro.experiments.harness import ExperimentResult
from repro.utils.tables import Table
from repro.workloads.generator import generate_suite
from repro.workloads.suites import default_spec

__all__ = ["run_e8_ablation", "ABLATION_CONFIGURATIONS"]

ABLATION_CONFIGURATIONS: dict[str, BranchAndBoundOptions] = {
    "full algorithm": BranchAndBoundOptions(),
    "no lemma 3": BranchAndBoundOptions(use_lemma3=False),
    "no lemma 2/3": BranchAndBoundOptions(use_lemma2=False, use_lemma3=False),
    "bound only, index order": BranchAndBoundOptions(
        use_lemma2=False, use_lemma3=False, successor_order=SuccessorOrder.INDEX
    ),
    "no seed incumbent": BranchAndBoundOptions(seed_incumbent=False),
}
"""The configurations the ablation compares (name -> options)."""


def run_e8_ablation(
    service_count: int = 8,
    instances: int = 4,
    seed: int = 808,
) -> ExperimentResult:
    """Quantify the contribution of each pruning rule."""
    problems = generate_suite(default_spec(service_count), instances, seed=seed)
    table = Table(
        ["configuration", "mean nodes", "mean plans", "mean time ms", "all optimal"],
        title="E8: pruning-rule ablation",
    )

    reference_costs = [branch_and_bound(problem).cost for problem in problems]
    node_counts: dict[str, float] = {}
    for label, options in ABLATION_CONFIGURATIONS.items():
        nodes = 0
        plans = 0
        elapsed = 0.0
        all_optimal = True
        for problem, reference in zip(problems, reference_costs):
            result = branch_and_bound(problem, options)
            nodes += result.statistics.nodes_expanded
            plans += result.statistics.plans_evaluated
            elapsed += result.statistics.elapsed_seconds
            if abs(result.cost - reference) > 1e-9 * max(1.0, reference):
                all_optimal = False
        count = len(problems)
        node_counts[label] = nodes / count
        table.add_row(
            label,
            round(nodes / count, 1),
            round(plans / count, 1),
            round(1e3 * elapsed / count, 3),
            all_optimal,
        )

    full = node_counts["full algorithm"]
    stripped = node_counts["bound only, index order"]
    notes = [
        "Every configuration returns the same optimal cost: the rules only affect search effort.",
        f"The full rule set expands {full:.1f} prefixes on average vs {stripped:.1f} for the "
        "stripped-down configuration — the contribution the paper's lemmas make.",
    ]
    return ExperimentResult(
        experiment_id="E8",
        title="Ablation of Lemma 2/3 pruning and the expansion policy",
        table=table,
        parameters={"service_count": service_count, "instances": instances, "seed": seed},
        notes=notes,
    )

"""E2 — Pruning effectiveness of the branch-and-bound search.

The paper's central claim is that the three lemmas "allow a branch-and-bound
approach to be very efficient", i.e. that the explored fraction of the ``n!``
search space shrinks dramatically.  The experiment sweeps the number of
services and reports the average number of prefixes the branch-and-bound
search expands, the number of complete plans it evaluates, and the pruning
counters, next to ``n!``.
"""

from __future__ import annotations

import math

from repro.core.branch_and_bound import branch_and_bound
from repro.experiments.harness import ExperimentResult
from repro.utils.tables import Table
from repro.workloads.generator import generate_suite
from repro.workloads.suites import default_spec

__all__ = ["run_e2_pruning"]


def run_e2_pruning(
    sizes: tuple[int, ...] = (5, 6, 7, 8, 9, 10),
    instances_per_size: int = 5,
    seed: int = 202,
) -> ExperimentResult:
    """Measure explored nodes vs the factorial search-space size."""
    table = Table(
        [
            "n",
            "n!",
            "bb nodes",
            "bb plans",
            "lemma2 closures",
            "lemma3 prunes",
            "bound prunes",
            "explored fraction",
        ],
        title="E2: search-space pruning",
    )
    fractions: list[float] = []
    for size in sizes:
        problems = generate_suite(default_spec(size), instances_per_size, seed=seed + size)
        nodes = 0
        plans = 0
        closures = 0
        lemma3 = 0
        bound = 0
        for problem in problems:
            result = branch_and_bound(problem)
            nodes += result.statistics.nodes_expanded
            plans += result.statistics.plans_evaluated
            closures += result.statistics.lemma2_closures
            lemma3 += result.statistics.lemma3_prunes
            bound += result.statistics.pruned_by_bound
        count = len(problems)
        factorial = math.factorial(size)
        mean_nodes = nodes / count
        fraction = mean_nodes / factorial
        fractions.append(fraction)
        table.add_row(
            size,
            factorial,
            round(mean_nodes, 1),
            round(plans / count, 1),
            round(closures / count, 1),
            round(lemma3 / count, 1),
            round(bound / count, 1),
            fraction,
        )

    notes = [
        "The explored fraction of the n! orderings falls steeply with n "
        f"(from {fractions[0]:.3g} at n={sizes[0]} to {fractions[-1]:.3g} at n={sizes[-1]}), "
        "which is the paper's 'prunes the exponential search space effectively' claim.",
    ]
    return ExperimentResult(
        experiment_id="E2",
        title="Pruning effectiveness (explored prefixes vs n!)",
        table=table,
        parameters={
            "sizes": list(sizes),
            "instances_per_size": instances_per_size,
            "seed": seed,
        },
        notes=notes,
    )

"""Data units flowing through the simulated pipeline.

Tuples travel individually or grouped into blocks; the end of the stream is
signalled by an explicit end-of-stream marker so that every service knows when
to flush its partially filled output block and shut down.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DataTuple", "Block", "EndOfStream"]


@dataclass(frozen=True)
class DataTuple:
    """A single data tuple.

    ``identifier`` is unique per source tuple; ``created_at`` is the virtual
    time at which the source emitted it, which the sink uses to derive
    per-tuple latency statistics.
    """

    identifier: int
    created_at: float
    payload: dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class Block:
    """A batch of tuples shipped over one link transfer."""

    tuples: tuple[DataTuple, ...]

    def __len__(self) -> int:
        return len(self.tuples)


@dataclass(frozen=True)
class EndOfStream:
    """Marker propagated through the pipeline after the last tuple.

    ``emitted`` counts the tuples the upstream stage produced in total, which
    downstream stages use for consistency checks.
    """

    emitted: int

"""End-to-end simulation of a decentralized pipelined query plan.

:class:`PipelineSimulator` takes an :class:`repro.core.problem.OrderingProblem`
and a plan, builds the chain ``source -> WS_{s_0} -> ... -> WS_{s_{n-1}} ->
sink`` with the problem's pairwise transfer costs on each hop, runs the
discrete-event simulation and returns a :class:`SimulationReport`.

This is the reproduction's substitute for the paper's real Web-Service
deployment: it exercises the same execution model the cost metric abstracts
(decentralized shipping, single-threaded services, pipelined blocks), which is
what makes the E7 validation meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.problem import OrderingProblem
from repro.exceptions import SimulationError
from repro.simulation.engine import Simulator
from repro.simulation.entities import FilterMode, ServiceNode, SinkNode, SourceNode
from repro.simulation.metrics import ServiceMetrics, SimulationReport
from repro.utils.rng import derive_rng

__all__ = ["SimulationConfig", "PipelineSimulator", "simulate_plan"]


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of a simulated run."""

    tuple_count: int = 1000
    """Number of input tuples the source emits."""

    block_size: int = 1
    """Tuples per shipped block (per-tuple transfer cost stays the same; larger
    blocks change pipelining granularity)."""

    filter_mode: str = FilterMode.EXPECTED
    """``expected`` (deterministic, default) or ``stochastic`` filtering."""

    seed: int = 0
    """Seed of the stochastic filtering streams."""

    source_interarrival: float = 0.0
    """Virtual time between consecutive source tuples (0 = all available upfront)."""

    max_events: int | None = None
    """Optional safety limit on the number of simulated events."""

    def __post_init__(self) -> None:
        if self.tuple_count < 0:
            raise SimulationError("tuple_count must be non-negative")
        if self.block_size < 1:
            raise SimulationError("block_size must be at least 1")
        if self.filter_mode not in FilterMode.ALL:
            raise SimulationError(
                f"unknown filter mode {self.filter_mode!r}; expected one of {FilterMode.ALL}"
            )
        if self.source_interarrival < 0:
            raise SimulationError("source_interarrival must be non-negative")


class PipelineSimulator:
    """Simulates decentralized pipelined execution of plans of one problem."""

    def __init__(self, problem: OrderingProblem, config: SimulationConfig | None = None) -> None:
        self.problem = problem
        self.config = config if config is not None else SimulationConfig()

    def simulate(self, order: Sequence[int]) -> SimulationReport:
        """Run the plan ``order`` and return the measured report."""
        problem = self.problem
        config = self.config
        problem.validate_plan(order)
        order = tuple(order)

        simulator = Simulator()
        sink = SinkNode(simulator)

        # Build service nodes from the last stage backwards so each node knows
        # its downstream neighbour and the per-tuple cost of reaching it.
        nodes: list[ServiceNode] = []
        downstream: ServiceNode | SinkNode = sink
        for position in range(len(order) - 1, -1, -1):
            service_index = order[position]
            if position + 1 < len(order):
                transfer = problem.transfer_cost(service_index, order[position + 1])
            else:
                transfer = problem.sink_cost(service_index)
            node = ServiceNode(
                simulator=simulator,
                service=problem.service(service_index),
                service_index=service_index,
                downstream=downstream,
                transfer_cost=transfer,
                block_size=config.block_size,
                filter_mode=config.filter_mode,
                rng=derive_rng(config.seed, "filter", service_index),
            )
            nodes.append(node)
            downstream = node
        nodes.reverse()

        source = SourceNode(
            simulator=simulator,
            downstream=nodes[0] if nodes else sink,
            tuple_count=config.tuple_count,
            block_size=config.block_size,
            interarrival=config.source_interarrival,
        )
        source.start()

        max_events = config.max_events
        if max_events is None:
            # Generous bound: every tuple triggers a handful of events per stage.
            max_events = 50 * (config.tuple_count + 10) * (len(order) + 2)
        simulator.run(max_events=max_events)

        if not sink.finished:
            raise SimulationError(
                "the simulation drained its event calendar before the sink saw end-of-stream"
            )

        return self._build_report(order, simulator, nodes, sink)

    # -- internals ------------------------------------------------------------

    def _build_report(
        self,
        order: tuple[int, ...],
        simulator: Simulator,
        nodes: list[ServiceNode],
        sink: SinkNode,
    ) -> SimulationReport:
        problem = self.problem
        config = self.config
        services = [
            ServiceMetrics(
                service_index=node.service_index,
                name=node.service.name,
                position=position,
                tuples_in=node.counters.tuples_in,
                tuples_out=node.counters.tuples_out,
                blocks_sent=node.counters.blocks_sent,
                processing_time=node.counters.processing_time,
                transfer_time=node.counters.transfer_time,
            )
            for position, node in enumerate(nodes)
        ]

        makespan = sink.completed_at if sink.completed_at is not None else simulator.now
        observed_bottleneck = 0
        if services:
            observed_bottleneck = max(
                range(len(services)), key=lambda position: services[position].busy_time
            )
        predicted_stage = problem.bottleneck_stage(order)
        latencies = sink.latencies
        mean_latency = sum(latencies) / len(latencies) if latencies else 0.0

        return SimulationReport(
            order=order,
            tuple_count=config.tuple_count,
            tuples_delivered=sink.tuples_received,
            makespan=makespan,
            predicted_cost=problem.cost(order),
            predicted_bottleneck_position=predicted_stage.position,
            observed_bottleneck_position=observed_bottleneck,
            events_processed=simulator.events_processed,
            services=services,
            mean_tuple_latency=mean_latency,
        )


def simulate_plan(
    problem: OrderingProblem, order: Sequence[int], config: SimulationConfig | None = None
) -> SimulationReport:
    """Convenience wrapper: simulate ``order`` on ``problem``."""
    return PipelineSimulator(problem, config).simulate(order)

"""The discrete-event simulation engine.

:class:`Simulator` owns the virtual clock and the event calendar.  Entities
(service nodes, sources, sinks) never advance time themselves; they only
schedule future callbacks through :meth:`Simulator.schedule` /
:meth:`Simulator.schedule_in`.  The engine is deliberately generic — the
pipelined-query behaviour lives in :mod:`repro.simulation.entities` — so that
tests can exercise it with synthetic workloads.
"""

from __future__ import annotations

from typing import Callable

from repro.exceptions import SimulationError
from repro.simulation.events import Event, EventQueue

__all__ = ["Simulator"]


class Simulator:
    """A minimal, deterministic discrete-event simulation kernel."""

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._events_processed = 0
        self._running = False

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still waiting on the calendar."""
        return len(self._queue)

    # -- scheduling ------------------------------------------------------------

    def schedule(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event in the past (now={self._now}, requested={time})"
            )
        return self._queue.schedule(time, callback, label)

    def schedule_in(self, delay: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` after ``delay`` units of virtual time."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay!r}")
        return self.schedule(self._now + delay, callback, label)

    # -- execution ---------------------------------------------------------------

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Process events until the calendar drains (or a limit is hit).

        Parameters
        ----------
        until:
            Stop once the next event would fire after this virtual time.
        max_events:
            Stop after executing this many events (guards against runaway
            feedback loops in misconfigured entity graphs).

        Returns
        -------
        float
            The virtual time after the last executed event.
        """
        if self._running:
            raise SimulationError("the simulator is already running (re-entrant run() call)")
        self._running = True
        try:
            executed = 0
            while True:
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"simulation exceeded the limit of {max_events} events"
                    )
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                event = self._queue.pop()
                assert event is not None
                self._now = event.time
                event.callback()
                executed += 1
                self._events_processed += 1
        finally:
            self._running = False
        return self._now

    def step(self) -> bool:
        """Execute a single event; returns ``False`` when the calendar is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        self._now = event.time
        event.callback()
        self._events_processed += 1
        return True

    def reset(self) -> None:
        """Clear the calendar and rewind the clock (entities must be rebuilt)."""
        self._queue.clear()
        self._now = 0.0
        self._events_processed = 0

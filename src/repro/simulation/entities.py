"""Simulation entities: tuple sources, pipelined service nodes and sinks.

The entities implement the execution model of the paper:

* execution is *decentralized*: each service ships its output blocks directly
  to the next service in the plan (no mediator),
* each service is (by default) single-threaded and handles one tuple at a
  time: it first spends ``c_i`` processing the tuple, then — for each
  surviving output tuple, once a block is full — occupies the same thread for
  the per-tuple transfer time ``t_{i,next}`` while shipping the block,
* filtering/proliferation follows the service's selectivity, either
  deterministically (expected-value thinning, the default: output counts track
  ``σ`` exactly) or stochastically (Bernoulli/geometric-style sampling).

Because processing and shipping share the service's thread, the sustained
per-input-tuple busy time of service ``i`` converges to
``c_i + σ_i * t_{i,next}``, which is exactly the term of Eq. 1 — this is what
experiment E7 verifies end-to-end.
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass

from repro.core.service import Service
from repro.exceptions import SimulationError
from repro.simulation.engine import Simulator
from repro.simulation.tuples import Block, DataTuple, EndOfStream

__all__ = ["FilterMode", "FilterPolicy", "SinkNode", "ServiceNode", "SourceNode"]


class FilterMode:
    """How a service decides how many output tuples an input tuple produces."""

    EXPECTED = "expected"
    """Deterministic thinning/expansion: after ``k`` inputs the node has emitted
    exactly ``round-to-floor(k * σ)`` outputs, so observed selectivity tracks
    ``σ`` as closely as integrality allows.  Fully reproducible."""

    STOCHASTIC = "stochastic"
    """Each input independently produces ``floor(σ)`` outputs plus one more
    with probability ``σ - floor(σ)`` (Bernoulli filtering for ``σ < 1``)."""

    ALL = (EXPECTED, STOCHASTIC)


class FilterPolicy:
    """Stateful per-service output-count decision."""

    def __init__(self, selectivity: float, mode: str, rng: random.Random) -> None:
        if mode not in FilterMode.ALL:
            raise SimulationError(f"unknown filter mode {mode!r}; expected one of {FilterMode.ALL}")
        self.selectivity = selectivity
        self.mode = mode
        self._rng = rng
        self._inputs_seen = 0
        self._outputs_emitted = 0

    def outputs_for_next_tuple(self) -> int:
        """Number of output tuples produced by the next input tuple."""
        self._inputs_seen += 1
        if self.mode == FilterMode.EXPECTED:
            target = math.floor(self._inputs_seen * self.selectivity + 1e-9)
            count = max(target - self._outputs_emitted, 0)
        else:
            whole = math.floor(self.selectivity)
            fraction = self.selectivity - whole
            count = whole + (1 if self._rng.random() < fraction else 0)
        self._outputs_emitted += count
        return count


@dataclass
class _NodeCounters:
    """Raw activity counters of a node, later turned into metrics."""

    tuples_in: int = 0
    tuples_out: int = 0
    blocks_sent: int = 0
    processing_time: float = 0.0
    transfer_time: float = 0.0
    first_activity: float | None = None
    last_activity: float = 0.0

    def record_activity(self, start: float, end: float) -> None:
        if self.first_activity is None:
            self.first_activity = start
        self.last_activity = max(self.last_activity, end)

    @property
    def busy_time(self) -> float:
        return self.processing_time + self.transfer_time


class SinkNode:
    """Collects result tuples at the query consumer."""

    def __init__(self, simulator: Simulator) -> None:
        self._simulator = simulator
        self.arrival_times: list[float] = []
        self.latencies: list[float] = []
        self.completed_at: float | None = None
        self.tuples_received = 0

    def receive(self, item: Block | EndOfStream) -> None:
        """Accept a block of result tuples or the end-of-stream marker."""
        now = self._simulator.now
        if isinstance(item, EndOfStream):
            self.completed_at = now
            return
        for data_tuple in item.tuples:
            self.tuples_received += 1
            self.arrival_times.append(now)
            self.latencies.append(now - data_tuple.created_at)

    @property
    def finished(self) -> bool:
        """Whether the end-of-stream marker has arrived."""
        return self.completed_at is not None


class ServiceNode:
    """A single service of the pipeline, running on its own host."""

    def __init__(
        self,
        simulator: Simulator,
        service: Service,
        service_index: int,
        downstream: "ServiceNode | SinkNode",
        transfer_cost: float,
        block_size: int = 1,
        filter_mode: str = FilterMode.EXPECTED,
        rng: random.Random | None = None,
    ) -> None:
        if block_size < 1:
            raise SimulationError(f"block_size must be at least 1, got {block_size!r}")
        if transfer_cost < 0:
            raise SimulationError(f"transfer_cost must be non-negative, got {transfer_cost!r}")
        self._simulator = simulator
        self.service = service
        self.service_index = service_index
        self.downstream = downstream
        self.transfer_cost = transfer_cost
        self.block_size = block_size
        self.counters = _NodeCounters()
        self._policy = FilterPolicy(
            service.selectivity, filter_mode, rng if rng is not None else random.Random(0)
        )
        self._queue: deque[DataTuple] = deque()
        self._output_buffer: list[DataTuple] = []
        self._busy_threads = 0
        self._eos_received = False
        self._eos_forwarded = False
        self._output_sequence = 0

    # -- receiving ------------------------------------------------------------

    def receive(self, item: Block | EndOfStream) -> None:
        """Accept a block from upstream (or the end-of-stream marker)."""
        if isinstance(item, EndOfStream):
            self._eos_received = True
        else:
            self._queue.extend(item.tuples)
            self.counters.tuples_in += len(item.tuples)
        self._dispatch()

    # -- processing loop ---------------------------------------------------------

    def _dispatch(self) -> None:
        """Start work on queued tuples, or shut down when the stream has ended."""
        while self._busy_threads < self.service.threads and self._queue:
            data_tuple = self._queue.popleft()
            self._busy_threads += 1
            start = self._simulator.now
            cost = self.service.cost
            self.counters.processing_time += cost
            self.counters.record_activity(start, start + cost)
            self._simulator.schedule_in(
                cost,
                lambda t=data_tuple: self._finish_processing(t),
                label=f"{self.service.name}:process",
            )
        self._maybe_finish_stream()

    def _finish_processing(self, data_tuple: DataTuple) -> None:
        """The thread finished the compute part of one tuple; emit its outputs."""
        outputs = self._policy.outputs_for_next_tuple()
        for copy in range(outputs):
            self._output_sequence += 1
            self._output_buffer.append(
                DataTuple(
                    identifier=data_tuple.identifier,
                    created_at=data_tuple.created_at,
                    payload=data_tuple.payload,
                )
            )
        if len(self._output_buffer) >= self.block_size:
            self._send_block(release_thread=True)
        else:
            self._release_thread()

    def _send_block(self, release_thread: bool) -> None:
        """Ship the buffered block downstream, occupying the thread for the transfer."""
        block = Block(tuple(self._output_buffer))
        self._output_buffer = []
        duration = self.transfer_cost * len(block)
        start = self._simulator.now
        self.counters.transfer_time += duration
        self.counters.tuples_out += len(block)
        self.counters.blocks_sent += 1
        self.counters.record_activity(start, start + duration)
        self._simulator.schedule_in(
            duration,
            lambda b=block, release=release_thread: self._finish_send(b, release),
            label=f"{self.service.name}:send",
        )

    def _finish_send(self, block: Block, release_thread: bool) -> None:
        """Block arrived downstream; hand it over and free the thread."""
        self.downstream.receive(block)
        if release_thread:
            self._release_thread()
        else:
            self._maybe_finish_stream()

    def _release_thread(self) -> None:
        if self._busy_threads <= 0:
            raise SimulationError(f"{self.service.name}: thread released more often than acquired")
        self._busy_threads -= 1
        self._dispatch()

    def _maybe_finish_stream(self) -> None:
        """Flush the last partial block and forward end-of-stream when drained."""
        if (
            not self._eos_received
            or self._eos_forwarded
            or self._queue
            or self._busy_threads > 0
        ):
            return
        if self._output_buffer:
            # Flush the partial block; EOS follows once the transfer completes.
            self._busy_threads += 1
            self._send_block(release_thread=True)
            return
        self._eos_forwarded = True
        emitted = self.counters.tuples_out
        self._simulator.schedule_in(
            0.0,
            lambda: self.downstream.receive(EndOfStream(emitted)),
            label=f"{self.service.name}:eos",
        )

    # -- reporting ---------------------------------------------------------------

    @property
    def observed_selectivity(self) -> float:
        """Ratio of emitted to received tuples so far."""
        if self.counters.tuples_in == 0:
            return 0.0
        return self.counters.tuples_out / self.counters.tuples_in

    @property
    def busy_time(self) -> float:
        """Total time the node's threads spent processing or shipping tuples."""
        return self.counters.busy_time


class SourceNode:
    """Emits the query's input tuples into the first service of the plan."""

    def __init__(
        self,
        simulator: Simulator,
        downstream: ServiceNode | SinkNode,
        tuple_count: int,
        block_size: int = 1,
        interarrival: float = 0.0,
    ) -> None:
        if tuple_count < 0:
            raise SimulationError(f"tuple_count must be non-negative, got {tuple_count!r}")
        if interarrival < 0:
            raise SimulationError(f"interarrival must be non-negative, got {interarrival!r}")
        self._simulator = simulator
        self.downstream = downstream
        self.tuple_count = tuple_count
        self.block_size = max(1, block_size)
        self.interarrival = interarrival
        self.emitted = 0

    def start(self) -> None:
        """Schedule the emission of every input block and the end-of-stream marker."""
        emission_time = 0.0
        block: list[DataTuple] = []
        for identifier in range(self.tuple_count):
            block.append(DataTuple(identifier=identifier, created_at=emission_time))
            last = identifier == self.tuple_count - 1
            if len(block) >= self.block_size or last:
                ready = Block(tuple(block))
                block = []
                self._simulator.schedule(
                    emission_time,
                    lambda b=ready: self._emit(b),
                    label="source:emit",
                )
            emission_time += self.interarrival
        eos_time = emission_time if self.tuple_count else 0.0
        self._simulator.schedule(
            eos_time,
            lambda: self.downstream.receive(EndOfStream(self.tuple_count)),
            label="source:eos",
        )

    def _emit(self, block: Block) -> None:
        self.emitted += len(block)
        self.downstream.receive(block)

"""Metrics extracted from a simulated pipeline run.

The report is deliberately close to what the analytical model predicts so that
experiment E7 can compare the two: per-service busy time per input tuple
(should converge to ``c_i + σ_i * t_{i,next}``), the observed bottleneck
service, and the normalised makespan (should converge to the bottleneck cost
metric of Eq. 1 for long streams).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.tables import Table

__all__ = ["ServiceMetrics", "SimulationReport"]


@dataclass(frozen=True)
class ServiceMetrics:
    """Activity summary of one service during a simulated run."""

    service_index: int
    name: str
    position: int
    tuples_in: int
    tuples_out: int
    blocks_sent: int
    processing_time: float
    transfer_time: float

    @property
    def busy_time(self) -> float:
        """Total thread-busy time (processing + shipping)."""
        return self.processing_time + self.transfer_time

    @property
    def observed_selectivity(self) -> float:
        """Emitted / received tuples (0 when the service received nothing)."""
        if self.tuples_in == 0:
            return 0.0
        return self.tuples_out / self.tuples_in

    @property
    def busy_per_input_tuple(self) -> float:
        """Busy time per received tuple — the simulated analogue of ``c_i + σ_i t``."""
        if self.tuples_in == 0:
            return 0.0
        return self.busy_time / self.tuples_in

    def utilization(self, makespan: float) -> float:
        """Fraction of the run the service's threads were busy."""
        if makespan <= 0:
            return 0.0
        return min(self.busy_time / makespan, 1.0)


@dataclass
class SimulationReport:
    """The outcome of simulating one plan on one workload."""

    order: tuple[int, ...]
    """The simulated plan (service indices in execution order)."""

    tuple_count: int
    """Number of tuples emitted by the source."""

    tuples_delivered: int
    """Number of tuples that reached the sink."""

    makespan: float
    """Virtual time between the start of the run and the sink's end-of-stream."""

    predicted_cost: float
    """The analytic bottleneck cost (Eq. 1) of the simulated plan."""

    predicted_bottleneck_position: int
    """Plan position the cost model designates as the bottleneck."""

    observed_bottleneck_position: int
    """Plan position with the largest simulated busy time per source tuple."""

    events_processed: int
    """Number of discrete events the simulator executed."""

    services: list[ServiceMetrics] = field(default_factory=list)
    """Per-service activity, in plan order."""

    mean_tuple_latency: float = 0.0
    """Average source-to-sink latency of delivered tuples."""

    # -- derived quantities ------------------------------------------------------

    @property
    def normalized_makespan(self) -> float:
        """Makespan per source tuple — converges to the bottleneck cost for long streams."""
        if self.tuple_count == 0:
            return 0.0
        return self.makespan / self.tuple_count

    @property
    def throughput(self) -> float:
        """Source tuples processed per unit of virtual time."""
        if self.makespan <= 0:
            return 0.0
        return self.tuple_count / self.makespan

    @property
    def model_relative_error(self) -> float:
        """``|normalized_makespan - predicted_cost| / predicted_cost`` (0 when undefined)."""
        if self.predicted_cost <= 0:
            return 0.0
        return abs(self.normalized_makespan - self.predicted_cost) / self.predicted_cost

    @property
    def bottleneck_matches_model(self) -> bool:
        """Whether the simulated and predicted bottleneck stages coincide."""
        return self.predicted_bottleneck_position == self.observed_bottleneck_position

    def busy_per_source_tuple(self, position: int) -> float:
        """Busy time of the service at ``position`` divided by the source tuple count."""
        if self.tuple_count == 0:
            return 0.0
        return self.services[position].busy_time / self.tuple_count

    # -- reporting -----------------------------------------------------------------

    def to_table(self) -> Table:
        """Tabular per-service view (used by the E7 bench and the examples)."""
        table = Table(
            ["position", "service", "in", "out", "busy", "busy/src tuple", "utilization"],
            title="simulated pipeline",
        )
        for metrics in self.services:
            table.add_row(
                metrics.position,
                metrics.name,
                metrics.tuples_in,
                metrics.tuples_out,
                round(metrics.busy_time, 6),
                round(self.busy_per_source_tuple(metrics.position), 6),
                round(metrics.utilization(self.makespan), 4),
            )
        return table

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"Simulated {self.tuple_count} tuples through {len(self.services)} services",
            f"  makespan: {self.makespan:.6g} (normalized {self.normalized_makespan:.6g})",
            f"  predicted bottleneck cost: {self.predicted_cost:.6g} "
            f"(relative error {self.model_relative_error:.2%})",
            f"  bottleneck position: predicted {self.predicted_bottleneck_position}, "
            f"observed {self.observed_bottleneck_position}",
            f"  delivered tuples: {self.tuples_delivered}",
        ]
        return "\n".join(lines)

"""Discrete-event simulation of decentralized pipelined query execution."""

from repro.simulation.engine import Simulator
from repro.simulation.entities import FilterMode, FilterPolicy, ServiceNode, SinkNode, SourceNode
from repro.simulation.events import Event, EventQueue
from repro.simulation.metrics import ServiceMetrics, SimulationReport
from repro.simulation.pipeline import PipelineSimulator, SimulationConfig, simulate_plan
from repro.simulation.tuples import Block, DataTuple, EndOfStream

__all__ = [
    "Block",
    "DataTuple",
    "EndOfStream",
    "Event",
    "EventQueue",
    "FilterMode",
    "FilterPolicy",
    "PipelineSimulator",
    "ServiceMetrics",
    "ServiceNode",
    "SimulationConfig",
    "SimulationReport",
    "Simulator",
    "SinkNode",
    "SourceNode",
    "simulate_plan",
]

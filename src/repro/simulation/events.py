"""Event primitives of the discrete-event simulator.

The simulator is a classic event-calendar design: every state change is an
:class:`Event` with a firing time and a callback; the :class:`EventQueue`
delivers events in time order, breaking ties by scheduling order so that runs
are fully deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.exceptions import SimulationError

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events order by ``(time, sequence)``; the sequence number is assigned by
    the queue and guarantees FIFO behaviour among simultaneous events.
    """

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when its time comes."""
        self.cancelled = True


class EventQueue:
    """A time-ordered queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._sequence = 0

    def schedule(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        """Add an event firing at absolute ``time``."""
        if time < 0:
            raise SimulationError(f"cannot schedule an event at negative time {time!r}")
        event = Event(time=time, sequence=self._sequence, callback=callback, label=label)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Remove and return the next non-cancelled event, or ``None`` when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Firing time of the next non-cancelled event, or ``None`` when empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return len(self) > 0

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()


# Convenience alias used in type annotations of entity callbacks.
Callback = Callable[..., Any]

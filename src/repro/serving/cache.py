"""Thread-safe LRU + TTL plan cache with stale-while-revalidate.

The cache maps problem fingerprints (see :mod:`repro.serving.fingerprint`) to
:class:`CachedPlan` entries.  Plans are stored *positionally* — as canonical
positions rather than problem indices — so an entry produced for one problem
can serve any later problem with the same fingerprint, however its services
are indexed.

Eviction policy:

* **LRU** — the cache holds at most ``capacity`` entries; inserting beyond
  that evicts the least-recently-used one.
* **TTL** — entries older than ``ttl`` seconds are expired.  With
  ``stale_while_revalidate`` disabled an expired entry is a plain miss; with
  it enabled, :meth:`PlanCache.get` still *returns* the expired entry (marked
  ``stale``) so the caller can answer immediately and re-optimize in the
  background — the serving layer's classic stale-while-revalidate contract.

Drift-based revalidation hooks into :func:`repro.estimation.adaptive.compute_drift`:
fingerprint quantization deliberately buckets nearby problems onto the same
key, so :meth:`PlanCache.needs_revalidation` measures how far the requesting
problem's parameters have drifted from the ones the cached plan was optimized
for and reports when they moved beyond the configured threshold.

Storage is pluggable (:mod:`repro.serving.store`): the cache owns the policy
above, while the recency-ordered entry map with LRU eviction lives behind the
:class:`~repro.serving.store.CacheStore` protocol — the in-process
:class:`~repro.serving.store.LocalStore` by default, or a
:class:`~repro.serving.store.SharedStore` that several shard processes point
at one directory so they share warm plans.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.core.problem import OrderingProblem
from repro.estimation.adaptive import compute_drift
from repro.exceptions import EstimationError, ServingError
from repro.obs.trace import trace_span
from repro.serving.fingerprint import ProblemFingerprint
from repro.serving.store import CacheStore, LocalStore

__all__ = ["CacheStats", "CachedPlan", "CacheLookup", "PlanCache", "SingleFlight"]


@dataclass
class CacheStats:
    """Counters describing the cache's behaviour since construction."""

    hits: int = 0
    """Lookups answered from a fresh entry."""

    stale_hits: int = 0
    """Lookups answered from an expired entry (stale-while-revalidate mode)."""

    misses: int = 0
    """Lookups that found nothing usable."""

    insertions: int = 0
    """Entries stored via :meth:`PlanCache.put`."""

    evictions: int = 0
    """Entries displaced by the LRU policy."""

    expirations: int = 0
    """Entries dropped because their TTL had elapsed."""

    revalidations: int = 0
    """Entries flagged for background re-optimization (drift or staleness)."""

    @property
    def lookups(self) -> int:
        """Total number of :meth:`PlanCache.get` calls."""
        return self.hits + self.stale_hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (fresh or stale)."""
        if self.lookups == 0:
            return 0.0
        return (self.hits + self.stale_hits) / self.lookups

    def as_dict(self) -> dict[str, float | int]:
        """Flatten the counters for reports and the HTTP stats endpoint."""
        return {
            "hits": self.hits,
            "stale_hits": self.stale_hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "revalidations": self.revalidations,
            "hit_rate": self.hit_rate,
        }


@dataclass(frozen=True)
class CachedPlan:
    """One cached optimization outcome, stored in canonical positions."""

    fingerprint: ProblemFingerprint
    """Fingerprint of the problem the plan was optimized for."""

    positions: tuple[int, ...]
    """The plan as canonical positions (see :class:`ProblemFingerprint`)."""

    cost: float
    """Bottleneck cost the plan achieved on the problem it was optimized for."""

    algorithm: str
    """Algorithm that produced the plan."""

    optimal: bool
    """Whether the producing algorithm guarantees global optimality."""

    problem: OrderingProblem
    """The concrete instance the plan was optimized for (drift reference)."""

    created_at: float
    """Cache-clock timestamp of the insertion."""


@dataclass(frozen=True)
class CacheLookup:
    """The outcome of one cache lookup."""

    entry: CachedPlan | None
    """The entry found, or ``None`` on a miss."""

    stale: bool = False
    """Whether the entry's TTL had already elapsed when it was served."""

    @property
    def hit(self) -> bool:
        """Whether a usable entry (fresh or stale) was found."""
        return self.entry is not None


class _InFlightCall:
    """Bookkeeping of one in-flight single-flighted computation."""

    __slots__ = ("done", "result", "error", "waiters")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: object | None = None
        self.error: str | None = None
        self.waiters = 0


class SingleFlight:
    """Per-key call coalescing (the classic *single-flight* primitive).

    When several threads miss the cache on the same fingerprint at once, only
    the first — the *leader* — actually runs the expensive computation;
    followers block until the leader finishes and share its outcome.  This is
    the thundering-herd fix: N concurrent misses on one key cost one
    optimization, not N.

    The value shared through a flight must be *instance-independent* (the plan
    service shares canonical cache positions, never a plan bound to the
    leader's problem object).  A leader failure is propagated to every
    follower as a :class:`~repro.exceptions.ServingError` carrying the
    leader's message; the flight is always cleared, so the next request
    retries fresh.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._calls: dict[str, _InFlightCall] = {}  # guarded-by: _lock

    def do(self, key: str, compute: Callable[[], object]) -> tuple[object, bool]:
        """Run ``compute`` once per concurrent burst of callers of ``key``.

        Returns ``(value, leader)``; ``leader`` tells the caller whether it
        executed ``compute`` itself (counted as a cold optimization) or rode
        along on another thread's flight (a coalesced request).
        """
        with self._lock:
            call = self._calls.get(key)
            leader = call is None
            if leader:
                call = _InFlightCall()
                self._calls[key] = call
            else:
                call.waiters += 1
        if leader:
            try:
                call.result = compute()
            except BaseException as error:
                call.error = f"{type(error).__name__}: {error}"
                raise
            finally:
                with self._lock:
                    self._calls.pop(key, None)
                call.done.set()
            return call.result, True
        call.done.wait()
        if call.error is not None:
            raise ServingError(f"coalesced optimization failed: {call.error}")
        return call.result, False

    def in_flight(self) -> int:
        """Number of keys currently being computed (for stats/tests)."""
        with self._lock:
            return len(self._calls)

    def waiting(self, key: str) -> int:
        """Number of followers currently riding on ``key``'s flight."""
        with self._lock:
            call = self._calls.get(key)
            return call.waiters if call is not None else 0


@dataclass
class PlanCache:
    """A bounded, thread-safe fingerprint → plan cache.

    Parameters
    ----------
    capacity:
        Maximum number of entries held (LRU beyond that).  Only used to size
        the default :class:`~repro.serving.store.LocalStore`; an injected
        ``store`` brings its own capacity.
    ttl:
        Entry lifetime in seconds; ``None`` disables expiry.
    stale_while_revalidate:
        When true, expired entries are still served (flagged ``stale``) and
        counted in :attr:`CacheStats.revalidations`, instead of being dropped.
    clock:
        Injectable monotonic time source (tests freeze it).
    store:
        Storage backend (:class:`~repro.serving.store.CacheStore`); ``None``
        builds a :class:`~repro.serving.store.LocalStore` of ``capacity``.
    """

    capacity: int = 1024
    ttl: float | None = None
    stale_while_revalidate: bool = False
    clock: Callable[[], float] = time.monotonic
    store: CacheStore | None = None
    _lock: threading.RLock = field(default_factory=threading.RLock, repr=False)
    _stats: CacheStats = field(default_factory=CacheStats, repr=False)  # guarded-by: _lock

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ServingError(f"cache capacity must be at least 1, got {self.capacity!r}")
        if self.ttl is not None and self.ttl <= 0:
            raise ServingError(f"cache ttl must be positive or None, got {self.ttl!r}")
        if self.store is None:
            self.store = LocalStore(self.capacity)

    # -- core operations ---------------------------------------------------

    def get(self, fingerprint: ProblemFingerprint) -> CacheLookup:
        """Look up the plan cached for ``fingerprint``.

        Expired entries are a miss unless ``stale_while_revalidate`` is on, in
        which case the entry is returned with ``stale=True`` (and stays cached
        until :meth:`put` replaces it or LRU displaces it).
        """
        with trace_span("cache.get") as span:
            lookup = self._lookup(fingerprint)
            if lookup.entry is None:
                span.annotate(outcome="miss")
            else:
                span.annotate(outcome="stale" if lookup.stale else "hit")
        return lookup

    def _lookup(self, fingerprint: ProblemFingerprint) -> CacheLookup:
        assert self.store is not None
        entry = self.store.get(fingerprint.key)
        if entry is None:
            with self._lock:
                self._stats.misses += 1
            return CacheLookup(entry=None)
        expired = self._is_expired(entry)
        if expired and not self.stale_while_revalidate:
            # Compare-and-delete: only this (expired) entry may be dropped,
            # never a fresh one a concurrent put raced in under the same key.
            dropped = self.store.invalidate(fingerprint.key, expected=entry)
            with self._lock:
                if dropped:
                    self._stats.expirations += 1
                self._stats.misses += 1
            return CacheLookup(entry=None)
        self.store.touch(fingerprint.key)
        with self._lock:
            if expired:
                self._stats.stale_hits += 1
                self._stats.revalidations += 1
            else:
                self._stats.hits += 1
        return CacheLookup(entry=entry, stale=expired)

    def put(
        self,
        fingerprint: ProblemFingerprint,
        positions: tuple[int, ...],
        cost: float,
        algorithm: str,
        optimal: bool,
        problem: OrderingProblem,
    ) -> CachedPlan:
        """Store (or refresh) the plan cached for ``fingerprint``."""
        if len(positions) != fingerprint.size:
            raise ServingError(
                f"plan covers {len(positions)} positions but the fingerprint has "
                f"{fingerprint.size} services"
            )
        entry = CachedPlan(
            fingerprint=fingerprint,
            positions=tuple(positions),
            cost=cost,
            algorithm=algorithm,
            optimal=optimal,
            problem=problem,
            created_at=self.clock(),
        )
        assert self.store is not None
        evicted = self.store.put(fingerprint.key, entry)
        with self._lock:
            self._stats.insertions += 1
            self._stats.evictions += evicted
        return entry

    def invalidate(self, fingerprint: ProblemFingerprint) -> bool:
        """Drop the entry for ``fingerprint``; returns whether one existed."""
        assert self.store is not None
        return self.store.invalidate(fingerprint.key)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        assert self.store is not None
        self.store.clear()

    def keys(self) -> list[str]:
        """Every cached key (what the sharding tier's rebalance measures scan)."""
        assert self.store is not None
        return self.store.scan()

    # -- revalidation ------------------------------------------------------

    def needs_revalidation(
        self, entry: CachedPlan, problem: OrderingProblem, drift_threshold: float
    ) -> bool:
        """Whether ``problem`` drifted too far from the entry's reference problem.

        Quantization maps nearby problems to one fingerprint; this measures the
        *actual* parameter drift (via
        :func:`repro.estimation.adaptive.compute_drift`) between the problem
        the plan was optimized for and the one now asking.  Problems whose
        service sets cannot be matched by name are conservatively reported as
        needing revalidation.
        """
        try:
            drift = compute_drift(entry.problem, problem)
        except EstimationError:
            drifted = True
        else:
            drifted = drift.exceeds(drift_threshold)
        if drifted:
            with self._lock:
                self._stats.revalidations += 1
        return drifted

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        assert self.store is not None
        return len(self.store)

    def stats(self) -> CacheStats:
        """A snapshot copy of the cache counters."""
        with self._lock:
            return CacheStats(**vars(self._stats))

    def _is_expired(self, entry: CachedPlan) -> bool:
        return self.ttl is not None and self.clock() - entry.created_at > self.ttl

"""The :class:`PlanService` façade: cached, budgeted plan serving.

This is the subsystem's front door.  A long-running process constructs one
``PlanService`` and feeds it a stream of :class:`~repro.core.problem.OrderingProblem`
instances; the service answers each with a :class:`PlanResponse`, combining

* the **fingerprint cache** (:mod:`repro.serving.cache`) — structurally
  identical problems are answered without optimizing again, with
  stale-while-revalidate refresh when parameters drift,
* the **optimizer portfolio** (:mod:`repro.serving.portfolio`) — cache misses
  are optimized under the configured latency budget, on the thread backend or
  the process backend with hard deadline cancellation
  (``portfolio_backend="processes"``),
* **single-flight coalescing** (:class:`~repro.serving.cache.SingleFlight`) —
  N concurrent misses on one fingerprint trigger exactly one optimization;
  the N-1 followers wait for the leader's answer instead of stampeding the
  portfolio (the classic thundering-herd fix), and
* **admission control** — at most ``max_in_flight`` requests optimize
  concurrently, at most ``queue_depth`` more may wait; anything beyond is
  rejected with :class:`~repro.exceptions.AdmissionError` so overload degrades
  crisply instead of queueing unboundedly.

Besides the one-at-a-time :meth:`PlanService.submit`, the service answers
whole batches through :meth:`PlanService.optimize_batch`: the batch is
admitted as one unit, answered from the cache where possible, and the misses
are deduplicated by fingerprint so each unique problem is optimized once —
the bulk-compilation mirror of the single-flight contract.

Every answer is measured (:mod:`repro.serving.metrics`); :meth:`PlanService.stats`
exposes the whole picture — cache counters, per-source latency quantiles,
admission rejections — as one JSON-ready dictionary, which is also what the
HTTP endpoint (:mod:`repro.serving.http`) serves.
"""

from __future__ import annotations

import concurrent.futures
import logging
import threading
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.core.evaluation import enable_kernel_profiling, kernel_profile
from repro.core.problem import OrderingProblem
from repro.core.vector import KERNELS, numpy_available, resolve_kernel, set_default_kernel
from repro.exceptions import (
    AdmissionError,
    InvalidPlanError,
    OptimizationError,
    ReproError,
    ServingError,
)
from repro.serving.cache import CacheLookup, PlanCache, SingleFlight
from repro.serving.store import CacheStore, SharedStore
from repro.serving.fingerprint import (
    DEFAULT_PRECISION,
    ProblemFingerprint,
    fingerprint_problem,
)
from repro.obs import Observability, ObservabilityConfig, trace_span
from repro.serving.metrics import ServingMetrics
from repro.serving.portfolio import DEFAULT_PORTFOLIO, PortfolioOptimizer, PortfolioOptions
from repro.utils.timing import Stopwatch

__all__ = ["PlanServiceConfig", "PlanResponse", "PlanService"]

_log = logging.getLogger("repro.serving")


@dataclass(frozen=True)
class PlanServiceConfig:
    """Tunables of a :class:`PlanService`."""

    cache_enabled: bool = True
    """Whether answers are cached and served from the cache at all (disabling
    makes every submission optimize cold, e.g. for ``repro plan`` without
    ``--cached``)."""

    cache_capacity: int = 1024
    """Maximum number of cached plans (LRU beyond that)."""

    cache_ttl: float | None = 300.0
    """Plan lifetime in seconds (``None`` disables expiry)."""

    stale_while_revalidate: bool = True
    """Serve expired plans immediately and refresh them in the background."""

    fingerprint_precision: int = DEFAULT_PRECISION
    """Decimal digits of the fingerprint quantization grid."""

    drift_threshold: float | None = 0.05
    """Parameter drift (vs the cached reference problem) beyond which a fresh
    hit still triggers a background re-optimization; ``None`` disables the
    check."""

    budget_seconds: float | None = 1.0
    """Latency budget handed to the portfolio on cache misses."""

    algorithms: tuple[str, ...] = DEFAULT_PORTFOLIO
    """Portfolio ladder; the first member is the synchronous anytime seed."""

    algorithm_options: Mapping[str, Mapping[str, object]] = field(default_factory=dict)
    """Per-algorithm options forwarded to the portfolio."""

    portfolio_backend: str = "threads"
    """Racing backend of the portfolio: ``"threads"`` or ``"processes"`` (the
    latter terminates stragglers at the deadline, see
    :mod:`repro.parallel.race`)."""

    mp_context: str | None = None
    """Multiprocessing start method (``"fork"`` / ``"forkserver"`` /
    ``"spawn"``) used by the process backend and the revalidation pool.
    ``None`` keeps the cheap default (``fork`` where available); pick
    ``forkserver`` or ``spawn`` to avoid forking from this service's threads
    (the classic fork-with-threads caveat)."""

    cache_store_dir: str | None = None
    """Directory of a file-backed :class:`~repro.serving.store.SharedStore`
    to keep cached plans in (``None`` keeps the in-process
    :class:`~repro.serving.store.LocalStore`).  Several shard processes
    pointing at one directory share warm plans."""

    max_in_flight: int = 8
    """Requests optimizing concurrently before new arrivals start queueing."""

    queue_depth: int = 64
    """Requests allowed to wait for a slot before admission control rejects."""

    revalidation_workers: int = 2
    """Threads (or pool worker processes) refreshing stale/drifted cache
    entries in the background."""

    revalidation_backend: str = "threads"
    """Where background refresh optimizations run: ``"threads"`` races the
    portfolio on the service's own threads (sharing the request path's CPU),
    ``"pool"`` routes the work through an :class:`~repro.parallel.pool.OptimizerPool`
    of worker *processes*, so drift/staleness refresh never competes with
    request-path optimization for the GIL."""

    observability: bool = False
    """Turn on request tracing and kernel profiling (see :mod:`repro.obs`).
    Metrics counters are always maintained; this flag gates the parts with
    per-request cost — span collection and evaluation-kernel counting."""

    slow_request_seconds: float | None = None
    """Requests slower than this land in the slow-request log (requires
    :attr:`observability`; ``None`` disables the log)."""

    metrics_seed: int = 0
    """Seed of the latency reservoirs' downsampling RNG, so metric-dependent
    tests see deterministic quantiles."""

    kernel: str = "auto"
    """Evaluation kernel the optimizers score candidates with: ``"vector"``
    (numpy batch kernel, requires the ``fast`` extra), ``"scalar"`` (pure
    Python), or ``"auto"`` (vector when numpy is available and the instance
    is large enough to win).  A non-``auto`` choice is installed process-wide
    (and exported via ``REPRO_KERNEL``), so portfolio members, pool workers
    and process shards inherit it transparently; ``auto`` leaves any existing
    process-wide setting alone."""

    def __post_init__(self) -> None:
        if self.max_in_flight < 1:
            raise ServingError(f"max_in_flight must be at least 1, got {self.max_in_flight!r}")
        if self.queue_depth < 0:
            raise ServingError(f"queue_depth must be non-negative, got {self.queue_depth!r}")
        if self.revalidation_workers < 1:
            raise ServingError(
                f"revalidation_workers must be at least 1, got {self.revalidation_workers!r}"
            )
        if self.drift_threshold is not None and self.drift_threshold < 0:
            raise ServingError(
                f"drift_threshold must be non-negative, got {self.drift_threshold!r}"
            )
        if self.revalidation_backend not in ("threads", "pool"):
            raise ServingError(
                f"unknown revalidation backend {self.revalidation_backend!r}; "
                f"available: threads, pool"
            )
        if self.slow_request_seconds is not None and self.slow_request_seconds < 0:
            raise ServingError(
                f"slow_request_seconds must be non-negative, "
                f"got {self.slow_request_seconds!r}"
            )
        if self.kernel not in KERNELS:
            raise ServingError(
                f"unknown evaluation kernel {self.kernel!r}; available: {', '.join(KERNELS)}"
            )


@dataclass(frozen=True)
class PlanResponse:
    """One answered plan request."""

    order: tuple[int, ...]
    """The plan, as service indices of the *submitted* problem."""

    service_names: tuple[str, ...]
    """The plan as service names, in execution order."""

    cost: float
    """Bottleneck cost of the plan under the submitted problem's parameters."""

    algorithm: str
    """Algorithm that originally produced the plan."""

    optimal: bool
    """Whether that algorithm guarantees global optimality (for the problem it
    optimized; a drifted cache hit may no longer be exactly optimal here)."""

    cache_hit: bool
    """Whether the answer came from the plan cache."""

    stale: bool
    """Whether the served cache entry had outlived its TTL."""

    fingerprint: str
    """Cache key of the submitted problem."""

    latency_seconds: float
    """End-to-end service-side latency of this request."""

    coalesced: bool = False
    """Whether this answer rode along on another request's optimization
    (single-flight follower, or batch duplicate of an optimized problem)."""


class PlanService:
    """A long-running, cache-accelerated, admission-controlled plan server.

    ``cache_store`` injects a storage backend for the plan cache (e.g. a
    :class:`~repro.serving.store.SharedStore` shared with sibling shards);
    when omitted, :attr:`PlanServiceConfig.cache_store_dir` may name a shared
    directory, and the default is the in-process store.
    """

    def __init__(
        self,
        config: PlanServiceConfig | None = None,
        *,
        cache_store: "CacheStore | None" = None,
    ) -> None:
        self.config = config if config is not None else PlanServiceConfig()
        if cache_store is None and self.config.cache_store_dir is not None:
            cache_store = SharedStore(
                self.config.cache_store_dir, capacity=self.config.cache_capacity
            )
        self.cache = PlanCache(
            capacity=self.config.cache_capacity,
            ttl=self.config.cache_ttl,
            stale_while_revalidate=self.config.stale_while_revalidate,
            store=cache_store,
        )
        self.obs = Observability(
            ObservabilityConfig(
                enabled=self.config.observability,
                slow_request_seconds=self.config.slow_request_seconds,
            )
        )
        self.metrics = ServingMetrics(
            registry=self.obs.registry, seed=self.config.metrics_seed
        )
        self._pending_gauge = self.obs.registry.gauge(
            "repro_requests_pending", "Requests admitted and not yet answered."
        )
        self._cache_gauge = self.obs.registry.gauge(
            "repro_cache_entries", "Plans currently held in the fingerprint cache."
        )
        self._kernel_counter = self.obs.registry.counter(
            "repro_kernel_evaluations_total",
            "Plan-evaluation kernel calls in this process, by kind "
            "(full/bounded/delta/batch); present when kernel profiling is on.",
            labelnames=("kind",),
        )
        self._kernel_seen: dict[str, int] = {}
        if self.config.kernel != "auto":
            # Install the explicit choice process-wide so portfolio members,
            # pool workers and process shards all score on the same kernel.
            set_default_kernel(self.config.kernel)
        self._kernel_gauge = self.obs.registry.gauge(
            "repro_kernel_active",
            "1 for the kernel large-instance optimizations currently resolve "
            "to (auto resolution accounts for numpy availability).",
            labelnames=("kernel",),
        )
        _log.info(
            "plan service evaluation kernel: %s (requested %r, numpy %s)",
            self.active_kernel(),
            self.config.kernel,
            "available" if numpy_available() else "not installed",
        )
        self.obs.registry.register_callback(self._refresh_gauges)
        if self.config.observability:
            enable_kernel_profiling()
        self._portfolio = PortfolioOptimizer(
            PortfolioOptions(
                algorithms=self.config.algorithms,
                budget_seconds=self.config.budget_seconds,
                algorithm_options=dict(self.config.algorithm_options),
                backend=self.config.portfolio_backend,
                mp_context=self.config.mp_context,
            ),
            max_workers=max(2 * len(self.config.algorithms), self.config.max_in_flight),
        )
        self._single_flight = SingleFlight()
        self._slots = threading.Semaphore(self.config.max_in_flight)
        self._pending = 0
        self._pending_lock = threading.Lock()
        self._revalidator = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.config.revalidation_workers, thread_name_prefix="revalidate"
        )
        self._revalidating: set[str] = set()
        self._revalidating_lock = threading.Lock()
        self._refresh_pool = None
        self._refresh_pool_lock = threading.Lock()
        self._closed = threading.Event()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Stop background refresh work and release the portfolio's threads."""
        self._closed.set()
        self._revalidator.shutdown(wait=False, cancel_futures=True)
        self._portfolio.close()
        with self._refresh_pool_lock:
            pool, self._refresh_pool = self._refresh_pool, None
        if pool is not None:
            pool.close()

    def __enter__(self) -> "PlanService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- serving -----------------------------------------------------------

    def submit(
        self,
        problem: OrderingProblem,
        budget_seconds: float | None = None,
        fingerprint: ProblemFingerprint | None = None,
    ) -> PlanResponse:
        """Answer one plan request (blocking; safe to call from many threads).

        ``fingerprint`` lets a caller that already fingerprinted the problem
        (the shard router routes by it) skip the re-hash; it must have been
        computed from ``problem`` at the service's configured precision.
        Raises :class:`~repro.exceptions.AdmissionError` when the service is
        over capacity and :class:`~repro.exceptions.ServingError` after
        :meth:`close`.
        """
        if self._closed.is_set():
            raise ServingError("the plan service has been closed")
        self._admit()
        try:
            with trace_span("service.submit"):
                # The queue span exists only when the request actually waited:
                # the unqueued fast path stays span-free and hot.
                if not self._slots.acquire(blocking=False):
                    with trace_span("service.queue"):
                        self._slots.acquire()
                try:
                    return self._answer(problem, budget_seconds, fingerprint)
                finally:
                    self._slots.release()
        finally:
            with self._pending_lock:
                self._pending -= 1

    def submit_batch(self, problems: Sequence[OrderingProblem]) -> list[PlanResponse]:
        """Answer several requests, preserving order (each admitted separately)."""
        return [self.submit(problem) for problem in problems]

    def optimize_batch(
        self,
        problems: Sequence[OrderingProblem],
        budget_seconds: float | None = None,
        fingerprints: Sequence[ProblemFingerprint] | None = None,
    ) -> list[PlanResponse]:
        """Answer a whole batch of requests as one bulk-compilation unit.

        Unlike :meth:`submit_batch` (N independent requests, N admissions),
        the batch is admitted *once*, answered from the cache where possible,
        and its misses are deduplicated by fingerprint: structurally identical
        problems trigger one optimization whose answer every duplicate shares
        (flagged ``coalesced``).  Misses also join the service-wide
        single-flight, so a batch and concurrent :meth:`submit` calls on the
        same fingerprint never optimize twice.  With the cache disabled every
        member optimizes cold — fingerprint identity is quantized, and
        ``cache_enabled=False`` is exactly the opt-out from
        fingerprint-approximate answers (matching :meth:`submit`).
        ``fingerprints`` (one per problem, at the configured precision) skips
        the re-hash for callers that already fingerprinted the batch.  Raises
        on the first failing optimization; order is preserved.
        """
        if self._closed.is_set():
            raise ServingError("the plan service has been closed")
        if not problems:
            return []
        if fingerprints is not None and len(fingerprints) != len(problems):
            raise ServingError(
                f"got {len(fingerprints)} fingerprints for {len(problems)} problems"
            )
        self._admit()
        try:
            with trace_span("service.batch", size=len(problems)):
                if not self._slots.acquire(blocking=False):
                    with trace_span("service.queue"):
                        self._slots.acquire()
                try:
                    return self._answer_batch(problems, budget_seconds, fingerprints)
                finally:
                    self._slots.release()
        finally:
            with self._pending_lock:
                self._pending -= 1

    def warm(self, problems: Iterable[OrderingProblem]) -> int:
        """Pre-populate the cache (bypasses admission control); returns the count."""
        warmed = 0
        for problem in problems:
            self._optimize_and_cache(problem, None)
            warmed += 1
        return warmed

    def active_kernel(self) -> str:
        """The kernel a large-instance optimization currently resolves to.

        Small instances may still resolve to ``scalar`` under ``auto`` (the
        vector kernel only wins past :data:`repro.core.vector.AUTO_MIN_SIZE`).
        """
        kernel = self.config.kernel if self.config.kernel != "auto" else None
        return resolve_kernel(kernel)

    def stats(self) -> dict[str, object]:
        """A JSON-ready snapshot of cache, request and admission statistics."""
        with self._pending_lock:
            pending = self._pending
        assert self.cache.store is not None
        profile = kernel_profile()
        kernel = {
            "profiling": profile is not None,
            "requested": self.config.kernel,
            "active": self.active_kernel(),
            "numpy": numpy_available(),
        }
        if profile is not None:
            kernel.update(profile.snapshot())
        return {
            "kernel": kernel,
            "cache": {
                "size": len(self.cache),
                **self.cache.stats().as_dict(),
                "store": self.cache.store.stats(),
            },
            "requests": self.metrics.snapshot(),
            "admission": {
                "in_flight_limit": self.config.max_in_flight,
                "queue_depth": self.config.queue_depth,
                "pending": pending,
            },
            "portfolio": {
                "algorithms": list(self.config.algorithms),
                "budget_seconds": self.config.budget_seconds,
                "backend": self.config.portfolio_backend,
                "mp_context": self.config.mp_context,
                "revalidation_backend": self.config.revalidation_backend,
            },
        }

    # -- internals ---------------------------------------------------------

    def _refresh_gauges(self) -> None:
        """Registry render callback: sync gauges and kernel counters.

        The kernel profile is process-global; the registry counter advances
        by the delta since this registry last looked, so scraping /metrics
        twice never double-counts.
        """
        with self._pending_lock:
            pending = self._pending
        self._pending_gauge.set(pending)
        self._cache_gauge.set(len(self.cache))
        active = self.active_kernel()
        for name in ("scalar", "vector"):
            self._kernel_gauge.set(1.0 if name == active else 0.0, kernel=name)
        profile = kernel_profile()
        if profile is not None:
            for kind, value in profile.counts().items():
                previous = self._kernel_seen.get(kind, 0)
                if value > previous:
                    self._kernel_counter.inc(value - previous, kind=kind)
                    self._kernel_seen[kind] = value

    def _admit(self) -> None:
        limit = self.config.max_in_flight + self.config.queue_depth
        with self._pending_lock:
            if self._pending >= limit:
                reason = "queue_overflow" if self.config.queue_depth else "capacity"
                self.metrics.record_rejection(reason)
                raise AdmissionError(
                    f"plan service over capacity: {self._pending} requests pending "
                    f"(limit {limit} = {self.config.max_in_flight} in flight "
                    f"+ {self.config.queue_depth} queued)"
                )
            self._pending += 1

    def _answer(
        self,
        problem: OrderingProblem,
        budget_seconds: float | None,
        fingerprint: ProblemFingerprint | None = None,
    ) -> PlanResponse:
        stopwatch = Stopwatch().start()
        if fingerprint is None:
            fingerprint = fingerprint_problem(problem, self.config.fingerprint_precision)
        if self.config.cache_enabled:
            cached = self._try_cached_response(problem, fingerprint, stopwatch)
            if cached is not None:
                return cached

        try:
            positions, algorithm, optimal, leader = self._optimize_cold(
                problem, budget_seconds, fingerprint
            )
        except ReproError:
            self.metrics.record_failure()
            raise
        order = fingerprint.from_positions(positions)
        cost = problem.cost(order)
        latency = stopwatch.stop()
        self.metrics.observe("cold", latency, cost, optimal)
        if not leader:
            self.metrics.record_coalesced()
        return PlanResponse(
            order=order,
            service_names=tuple(problem.service(index).name for index in order),
            cost=cost,
            algorithm=algorithm,
            optimal=optimal,
            cache_hit=False,
            stale=False,
            fingerprint=fingerprint.key,
            latency_seconds=latency,
            coalesced=not leader,
        )

    def _try_cached_response(
        self,
        problem: OrderingProblem,
        fingerprint: ProblemFingerprint,
        stopwatch: Stopwatch,
    ) -> PlanResponse | None:
        """Answer from the cache, or return ``None`` when a cold path is needed."""
        lookup = self.cache.get(fingerprint)
        entry = lookup.entry
        if entry is None:
            return None
        try:
            order = fingerprint.from_positions(entry.positions)
            problem.validate_plan(order)
        except (ServingError, InvalidPlanError):
            # A corrupt or incompatible entry must never break serving;
            # fall through to a cold optimization that replaces it.
            return None
        needs_refresh = lookup.stale or (
            self.config.drift_threshold is not None
            and self.cache.needs_revalidation(entry, problem, self.config.drift_threshold)
        )
        if needs_refresh:
            self._schedule_revalidation(problem, fingerprint.key)
        latency = stopwatch.stop()
        source = "stale" if lookup.stale else "hit"
        cost = problem.cost(order)
        self.metrics.observe(source, latency, cost, entry.optimal)
        return PlanResponse(
            order=order,
            service_names=tuple(problem.service(index).name for index in order),
            cost=cost,
            algorithm=entry.algorithm,
            optimal=entry.optimal,
            cache_hit=True,
            stale=lookup.stale,
            fingerprint=fingerprint.key,
            latency_seconds=latency,
        )

    def _optimize_cold(
        self,
        problem: OrderingProblem,
        budget_seconds: float | None,
        fingerprint: ProblemFingerprint,
    ) -> tuple[tuple[int, ...], str, bool, bool]:
        """Optimize a miss, coalescing concurrent misses on the same fingerprint.

        Returns ``(canonical positions, algorithm, optimal, leader)``.  The
        flight shares canonical *positions* rather than a result object: each
        rider re-attaches them to its own problem instance, exactly like a
        cache hit.  With the cache disabled every submission must optimize
        cold by contract, so coalescing is bypassed.
        """

        def compute() -> tuple[tuple[int, ...], str, bool]:
            result = self._optimize_and_cache(problem, budget_seconds, fingerprint)
            return (fingerprint.to_positions(result.order), result.algorithm, result.optimal)

        with trace_span("optimize.cold") as span:
            if not self.config.cache_enabled:
                return (*compute(), True)
            value, leader = self._single_flight.do(fingerprint.key, compute)
            span.annotate(coalesced=not leader)
        positions, algorithm, optimal = value  # type: ignore[misc]
        return (positions, algorithm, optimal, leader)

    def _answer_batch(
        self,
        problems: Sequence[OrderingProblem],
        budget_seconds: float | None,
        fingerprints: Sequence[ProblemFingerprint] | None = None,
    ) -> list[PlanResponse]:
        responses: list[PlanResponse | None] = [None] * len(problems)
        if fingerprints is None:
            fingerprints = [
                fingerprint_problem(problem, self.config.fingerprint_precision)
                for problem in problems
            ]

        # Pass 1: serve cache hits, group the misses by fingerprint key.  With
        # the cache disabled there is no grouping: fingerprint identity is
        # quantized, and cache_enabled=False opts out of quantized sharing.
        miss_groups: list[list[int]] = []
        group_of_key: dict[str, list[int]] = {}
        for index, (problem, fingerprint) in enumerate(zip(problems, fingerprints)):
            stopwatch = Stopwatch().start()
            if not self.config.cache_enabled:
                miss_groups.append([index])
                continue
            cached = self._try_cached_response(problem, fingerprint, stopwatch)
            if cached is not None:
                responses[index] = cached
                continue
            group = group_of_key.get(fingerprint.key)
            if group is None:
                group = []
                group_of_key[fingerprint.key] = group
                miss_groups.append(group)
            group.append(index)

        # Pass 2: one optimization per unique missing fingerprint; every
        # member of the group shares the canonical positions it produced.
        for indices in miss_groups:
            leader_index = indices[0]
            stopwatch = Stopwatch().start()
            try:
                positions, algorithm, optimal, leader = self._optimize_cold(
                    problems[leader_index], budget_seconds, fingerprints[leader_index]
                )
            except ReproError:
                self.metrics.record_failure()
                raise
            latency = stopwatch.stop()
            for index in indices:
                problem = problems[index]
                fingerprint = fingerprints[index]
                order = fingerprint.from_positions(positions)
                cost = problem.cost(order)
                coalesced = index != leader_index or not leader
                self.metrics.observe("cold", latency, cost, optimal)
                if coalesced:
                    self.metrics.record_coalesced()
                responses[index] = PlanResponse(
                    order=order,
                    service_names=tuple(problem.service(i).name for i in order),
                    cost=cost,
                    algorithm=algorithm,
                    optimal=optimal,
                    cache_hit=False,
                    stale=False,
                    fingerprint=fingerprint.key,
                    latency_seconds=latency,
                    coalesced=coalesced,
                )
        assert all(response is not None for response in responses)
        return responses  # type: ignore[return-value]

    def _optimize_and_cache(
        self,
        problem: OrderingProblem,
        budget_seconds: float | None,
        fingerprint: ProblemFingerprint | None = None,
    ):
        race = self._portfolio.optimize(problem, budget_seconds=budget_seconds)
        result = race.best
        if not self.config.cache_enabled:
            return result
        self._cache_result(problem, result, fingerprint)
        return result

    def _cache_result(
        self,
        problem: OrderingProblem,
        result,
        fingerprint: ProblemFingerprint | None = None,
    ) -> None:
        if fingerprint is None:
            fingerprint = fingerprint_problem(problem, self.config.fingerprint_precision)
        self.cache.put(
            fingerprint,
            positions=fingerprint.to_positions(result.order),
            cost=result.cost,
            algorithm=result.algorithm,
            optimal=result.optimal,
            problem=problem,
        )

    def _schedule_revalidation(self, problem: OrderingProblem, key: str) -> None:
        """Refresh one cache entry in the background, at most once at a time."""
        if self._closed.is_set():
            return
        with self._revalidating_lock:
            if key in self._revalidating:
                return
            self._revalidating.add(key)

        def refresh() -> None:
            try:
                if self.config.revalidation_backend == "pool":
                    self._refresh_via_pool(problem)
                else:
                    self._optimize_and_cache(problem, None)
            except ReproError:
                pass  # The stale entry stays; the next request retries.
            finally:
                with self._revalidating_lock:
                    self._revalidating.discard(key)

        try:
            self._revalidator.submit(refresh)
        except RuntimeError:
            # The executor is shutting down; drop the refresh.
            with self._revalidating_lock:
                self._revalidating.discard(key)

    def _refresh_via_pool(self, problem: OrderingProblem) -> None:
        """Refresh one entry on the worker-process pool (off the request path).

        A background refresh has no latency budget, so instead of racing the
        whole portfolio it walks the ladder from the *strongest* member down:
        the exact member alone already dominates the race's best whenever it
        accepts the instance, and a member that refuses (size guard, bad
        options) simply falls through to the next one.
        """
        pool = self._ensure_refresh_pool()
        errors: list[str] = []
        for name in reversed(self.config.algorithms):
            options = dict(self.config.algorithm_options.get(name, {}))
            try:
                result = pool.optimize_many([problem], algorithm=name, options=options)[0]
            except OptimizationError as error:
                errors.append(str(error))
                continue
            self._cache_result(problem, result)
            return
        raise ServingError(
            f"no portfolio member could refresh the entry on the pool: {'; '.join(errors)}"
        )

    def _ensure_refresh_pool(self):
        with self._refresh_pool_lock:
            if self._refresh_pool is None:
                if self._closed.is_set():
                    raise ServingError("the plan service has been closed")
                from repro.parallel.pool import OptimizerPool

                self._refresh_pool = OptimizerPool(
                    workers=self.config.revalidation_workers,
                    context=self.config.mp_context,
                )
            return self._refresh_pool

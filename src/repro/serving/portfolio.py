"""Deadline-budgeted portfolio optimization.

A plan service answers under a latency budget, but the registry's algorithms
span five orders of magnitude in runtime: the greedy heuristics return in
microseconds, beam search in milliseconds, branch-and-bound (exact) possibly
much longer on large instances.  The portfolio exploits that spread:

1. the **anytime seed** — the first configured algorithm (greedy by default)
   runs synchronously, so there is always an answer to return, then
2. the remaining algorithms **race** on a :class:`~concurrent.futures.ThreadPoolExecutor`
   until the budget expires, each completed result refining the incumbent.

The portfolio reuses :data:`repro.core.optimizer.ALGORITHMS` — it never
duplicates a runner — and returns the best
:class:`~repro.core.result.OptimizationResult` observed when the deadline
fires.  Before the race starts it builds the problem's evaluation kernel
(:meth:`~repro.core.problem.OrderingProblem.evaluator`) once, so every racing
member shares the same pre-extracted arrays instead of each worker thread
lazily building its own on first use.  Because the seed always completes, the portfolio's answer is never
worse than the seed algorithm's; algorithms that error out (e.g. an exact
solver refusing an over-size instance) are recorded, not fatal.

The race runs on one of two interchangeable backends
(:attr:`PortfolioOptions.backend`):

* ``"threads"`` (default) — a shared
  :class:`~concurrent.futures.ThreadPoolExecutor`.  Cheap per race, but
  Python threads cannot be killed: an algorithm still running at the deadline
  keeps its worker busy until it finishes on its own, so the executor is
  sized with spare workers to keep one straggler from stalling the next
  request's race.
* ``"processes"`` — :func:`repro.parallel.race.race_processes`.  Every racing
  member gets its own OS process and is *terminated* at the deadline, so even
  a hopelessly over-budget exact solver (exhaustive enumeration on a large
  instance) costs exactly the budget.  This is the backend that makes exact
  members safe in the default ladder, at the price of per-race process
  startup.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import threading
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.optimizer import ALGORITHMS, optimize
from repro.core.problem import OrderingProblem
from repro.core.result import OptimizationResult
from repro.exceptions import OptimizationError, ReproError, ServingError
from repro.obs.trace import ActiveTrace, capture, trace_span
from repro.utils.timing import Stopwatch

__all__ = [
    "PORTFOLIO_BACKENDS",
    "PortfolioOptions",
    "PortfolioResult",
    "PortfolioOptimizer",
    "run_portfolio",
]

DEFAULT_PORTFOLIO = ("greedy_min_term", "beam_search", "branch_and_bound")
"""Default algorithm ladder: instant heuristic, polynomial refinement, exact."""

PORTFOLIO_BACKENDS = ("threads", "processes")
"""Supported racing backends (see the module docstring for the trade-off)."""


@dataclass(frozen=True)
class PortfolioOptions:
    """Configuration of one portfolio race."""

    algorithms: tuple[str, ...] = DEFAULT_PORTFOLIO
    """Algorithm names from :data:`repro.core.optimizer.ALGORITHMS`; the first
    one is the synchronous anytime seed."""

    budget_seconds: float | None = 1.0
    """Wall-clock budget for the racing algorithms (``None`` waits for all)."""

    algorithm_options: Mapping[str, Mapping[str, object]] = field(default_factory=dict)
    """Per-algorithm keyword options, e.g. ``{"beam_search": {"beam_width": 8}}``."""

    backend: str = "threads"
    """Racing backend: ``"threads"`` (shared executor, stragglers run on) or
    ``"processes"`` (dedicated processes, stragglers terminated at the
    deadline)."""

    mp_context: str | None = None
    """Multiprocessing start method of the process backend (``"fork"`` /
    ``"forkserver"`` / ``"spawn"``).  ``None`` keeps the cheap default
    (``fork`` where available); a service that forks race members from a
    heavily threaded parent can pick ``forkserver`` or ``spawn`` to trade
    member startup latency for fork-with-threads safety."""

    def __post_init__(self) -> None:
        if not self.algorithms:
            raise ServingError("a portfolio needs at least one algorithm")
        if len(set(self.algorithms)) != len(self.algorithms):
            # Duplicates buy nothing (same work twice) and the process
            # backend tracks race members by name.
            raise ServingError(f"portfolio members must be unique, got {self.algorithms!r}")
        unknown = [name for name in self.algorithms if name not in ALGORITHMS]
        if unknown:
            raise ServingError(
                f"unknown portfolio algorithms {unknown!r}; available: {', '.join(ALGORITHMS)}"
            )
        if self.budget_seconds is not None and self.budget_seconds < 0:
            raise ServingError(f"budget_seconds must be non-negative, got {self.budget_seconds!r}")
        if self.backend not in PORTFOLIO_BACKENDS:
            raise ServingError(
                f"unknown portfolio backend {self.backend!r}; "
                f"available: {', '.join(PORTFOLIO_BACKENDS)}"
            )
        if self.mp_context is not None:
            methods = multiprocessing.get_all_start_methods()
            if self.mp_context not in methods:
                raise ServingError(
                    f"unsupported mp_context {self.mp_context!r}; "
                    f"available: {', '.join(methods)}"
                )


@dataclass(frozen=True)
class PortfolioResult:
    """The outcome of racing a portfolio on one problem."""

    best: OptimizationResult
    """The cheapest plan any member produced within the budget."""

    results: dict[str, OptimizationResult]
    """Results of every member that completed in time, by algorithm name."""

    errors: dict[str, str]
    """Error messages of members that raised, by algorithm name."""

    timed_out: tuple[str, ...]
    """Members that had not finished when the budget expired."""

    elapsed_seconds: float
    """Wall-clock time the race took (≤ budget + seed time)."""

    @property
    def refinement(self) -> float:
        """Relative improvement of :attr:`best` over the worst completed member."""
        completed = list(self.results.values())
        if not completed:
            return 0.0
        worst = max(r.cost for r in completed)
        if worst <= 0:
            return 0.0
        return (worst - self.best.cost) / worst


class PortfolioOptimizer:
    """Runs deadline-budgeted portfolio races, reusing one thread pool.

    The executor is shared across races, which is what the long-running
    :class:`~repro.serving.service.PlanService` needs; one-shot callers can use
    :func:`run_portfolio` instead.
    """

    def __init__(self, options: PortfolioOptions | None = None, max_workers: int | None = None):
        self.options = options if options is not None else PortfolioOptions()
        workers = max_workers if max_workers is not None else 2 * len(self.options.algorithms)
        if workers < 1:
            raise ServingError(f"max_workers must be at least 1, got {workers!r}")
        # The processes backend spawns per-race member processes instead
        # (repro.parallel.race); it never touches a thread executor.
        self._executor = (
            concurrent.futures.ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="portfolio"
            )
            if self.options.backend == "threads"
            else None
        )
        self._closed = threading.Event()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut the executor down without waiting for stragglers."""
        self._closed.set()
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "PortfolioOptimizer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- racing ------------------------------------------------------------

    def optimize(
        self, problem: OrderingProblem, budget_seconds: float | None = None
    ) -> PortfolioResult:
        """Race the configured portfolio on ``problem``.

        ``budget_seconds`` overrides the options' budget for this race.  The
        first algorithm runs synchronously regardless of the budget, so the
        call always returns a valid result.
        """
        if self._closed.is_set():
            raise ServingError("the portfolio optimizer has been closed")
        options = self.options
        budget = options.budget_seconds if budget_seconds is None else budget_seconds
        if budget is not None and budget < 0:
            raise ServingError(f"budget_seconds must be non-negative, got {budget!r}")
        with trace_span("portfolio.race", backend=options.backend) as race_span:
            result = self._race(problem, options, budget)
            race_span.annotate(
                completed=len(result.results), timed_out=len(result.timed_out)
            )
        return result

    def _race(
        self,
        problem: OrderingProblem,
        options: PortfolioOptions,
        budget: float | None,
    ) -> PortfolioResult:
        if options.backend == "processes":
            from repro.parallel.race import race_processes

            return race_processes(problem, options, budget)

        assert self._executor is not None
        stopwatch = Stopwatch().start()
        # Build the shared evaluation kernel before any member runs: the racing
        # threads all reuse it, and the (idempotent) lazy construction happens
        # once instead of concurrently in every worker.
        problem.evaluator()
        seed_name = options.algorithms[0]
        results: dict[str, OptimizationResult] = {}
        errors: dict[str, str] = {}
        try:
            with trace_span("portfolio.member", algorithm=seed_name, seed=True):
                results[seed_name] = self._run_member(problem, seed_name)
        except ReproError as error:
            errors[seed_name] = str(error)

        racing = options.algorithms[1:]
        # Racing members run on executor threads, where the ambient trace
        # contextvar does not flow; hand the captured activation over
        # explicitly so their spans join this request's tree.
        context = capture()
        futures = {
            self._executor.submit(self._traced_member, problem, name, context): name
            for name in racing
        }
        remaining = None if budget is None else max(budget - stopwatch.elapsed, 0.0)
        done, pending = concurrent.futures.wait(futures, timeout=remaining)
        for future in done:
            name = futures[future]
            try:
                results[name] = future.result()
            except ReproError as error:
                errors[name] = str(error)
        timed_out = []
        for future in pending:
            future.cancel()
            timed_out.append(futures[future])

        if not results:
            raise OptimizationError(
                f"no portfolio member produced a plan within the budget "
                f"(errors: {errors!r}, timed out: {timed_out!r})"
            )
        best = min(results.values(), key=lambda result: (result.cost, not result.optimal))
        return PortfolioResult(
            best=best,
            results=results,
            errors=errors,
            timed_out=tuple(sorted(timed_out)),
            elapsed_seconds=stopwatch.stop(),
        )

    def _traced_member(
        self, problem: OrderingProblem, name: str, context: ActiveTrace | None
    ) -> OptimizationResult:
        with trace_span("portfolio.member", context=context, algorithm=name):
            return self._run_member(problem, name)

    def _run_member(self, problem: OrderingProblem, name: str) -> OptimizationResult:
        member_options = dict(self.options.algorithm_options.get(name, {}))
        try:
            return optimize(problem, algorithm=name, **member_options)
        except TypeError as error:
            # An optimizer rejecting its options must surface as a recorded
            # member error, not crash the whole race (cf. core.optimizer.compare).
            raise OptimizationError(f"{name} rejected the options: {error}") from error


def run_portfolio(
    problem: OrderingProblem,
    options: PortfolioOptions | None = None,
    budget_seconds: float | None = None,
) -> PortfolioResult:
    """One-shot convenience wrapper around :class:`PortfolioOptimizer`."""
    with PortfolioOptimizer(options) as portfolio:
        return portfolio.optimize(problem, budget_seconds=budget_seconds)

"""An :mod:`asyncio` HTTP front end: slow clients cost sockets, not threads.

The threaded front end (:mod:`repro.serving.http`) spends one handler thread
per connection, so a slow or stalled client — trickling its request body,
reading its response at modem speed, idling on keep-alive — pins a thread for
the duration.  Bound the thread count (as production must) and K such clients
starve the fast path outright; leave it unbounded and K is also the thread
count.  This module serves the same four routes from a single event loop:

* **connections** are ``asyncio`` streams — reading the request head and body
  and writing the response are awaited, so a slow peer suspends one coroutine
  (a few KB) rather than occupying a thread;
* **request handling** is *native async* when the backend supports it: a
  process-shard :class:`~repro.sharding.router.ShardRouter` exposes
  ``submit_async`` / ``optimize_batch_async`` (``supports_async``), so POSTs
  are awaited end to end — the request suspends on an ``asyncio.Future``
  that the shard multiplexer resolves via ``loop.call_soon_threadsafe``,
  and **zero** handler threads exist anywhere on the request path.  In-proc
  backends (a plain :class:`~repro.serving.service.PlanService`) fall back
  to a *bounded* ``run_in_executor`` bridge sized off the backend's
  admission control.  Both paths route through the shared dispatch core
  (:func:`~repro.serving.http.dispatch_request` /
  :func:`~repro.serving.http.dispatch_request_async`), so status mapping
  (400/404/413/503/500) and response bytes are identical by construction;
* **overload** stays crisp: when every executor slot is bridging a request,
  further POSTs are answered 503 immediately (mirroring
  :class:`~repro.exceptions.AdmissionError`) instead of queueing unboundedly
  behind the pool — and ``GET /healthz`` is answered inline on the event
  loop, so liveness probing survives saturation;
* **shutdown** is graceful: stop accepting, drain requests in flight against
  a deadline, cancel idle/straggling connections, then (optionally) close
  the backend.

HTTP/1.1 parsing is hand-rolled and minimal (request line, headers,
``Content-Length``-framed bodies, keep-alive) in the repository's
stdlib-only style.  Process shards behind a router keep answering through
the process-wide :class:`~repro.sharding.multiplexer.ResponseMultiplexer`,
so a native-async process-shard deployment runs exactly one event loop for
sockets plus one selector thread for shard pipes — no bridge threads at
all (the bridge pools exist but never spawn a thread until first use, and
the native path never uses the plan bridge).

``benchmarks/bench_async.py`` measures the payoff: K deliberately slow
clients leave fast-client latency through this server at its baseline while
the (bounded) threaded server degrades by orders of magnitude.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from http import HTTPStatus
from typing import Any

from repro.serving.http import (
    MAX_BODY_BYTES,
    REQUEST_TIMEOUT_SECONDS,
    PayloadTooLargeError,
    PlanBackend,
    dispatch_request,
    dispatch_request_async,
    validated_content_length,
)
from repro.serving.service import PlanServiceConfig

__all__ = ["AsyncPlanServer", "AsyncServerHandle", "serve_async"]

_HEAD_LIMIT = 64 * 1024
"""Maximum request-head (request line + headers) size before a 400."""

_FALLBACK_WORKERS = 32
"""Bridge-pool size when the backend exposes no admission configuration."""


def _admission_sized_workers(backend: "PlanBackend") -> int:
    """Bridge-pool size derived from the backend's admission control.

    A single service admits ``max_in_flight + queue_depth`` requests; a shard
    router multiplies that by its shard count (each shard admits its own).
    Sizing the bridge to exactly that bound means the pool can never queue
    work the backend would have accepted, and anything beyond it is load the
    backend would reject anyway — the front door answers 503 without
    touching a thread.

    The size is read once, at server construction: a router resized live
    (``add_shard`` / ``remove_shard``) keeps the original bridge bound until
    the front end is restarted (or constructed with an explicit
    ``max_workers``) — conservative after growth, queueing-prone after
    shrinkage, never wrong answers.
    """
    config = getattr(backend, "config", None)
    service_config = getattr(config, "service_config", config)
    if isinstance(service_config, PlanServiceConfig):
        per_service = service_config.max_in_flight + service_config.queue_depth
        shards = getattr(config, "shards", 1) if config is not service_config else 1
        return per_service * max(1, shards)
    return _FALLBACK_WORKERS


def _parse_head(head: bytes) -> tuple[str, str, str, dict[str, str]]:
    """Split a request head into (method, path, version, lowercased headers)."""
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 decodes all bytes
        raise ValueError("undecodable request head") from None
    lines = text.split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3:
        raise ValueError(f"malformed request line {lines[0]!r}")
    method, path, version = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise ValueError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return method.upper(), path, version, headers


class AsyncPlanServer:
    """The asyncio JSON/HTTP plan server (same routes as :class:`PlanServer`).

    Drive it natively (``await start(); await serve_forever()``) or from
    synchronous code via :func:`serve_async`, which runs the loop on a
    background thread and returns a joinable handle.
    """

    def __init__(
        self,
        plan_service: "PlanBackend",
        host: str = "127.0.0.1",
        port: int = 8080,
        *,
        max_body_bytes: int = MAX_BODY_BYTES,
        max_workers: int | None = None,
        request_timeout: float = REQUEST_TIMEOUT_SECONDS,
        native_async: bool | None = None,
    ) -> None:
        self.plan_service = plan_service
        self.host = host
        self.port = port
        self.max_body_bytes = max_body_bytes
        self.request_timeout = request_timeout
        # Native path: awaitable end-to-end when the backend says it can
        # (a process-shard ShardRouter sets ``supports_async``).  The
        # explicit override exists for benchmarks that force the bridged
        # path on an async-capable backend (and for belt-and-braces opt-out).
        self.native_async = (
            native_async
            if native_async is not None
            else bool(getattr(plan_service, "supports_async", False))
        )
        self.max_workers = (
            max_workers if max_workers is not None else _admission_sized_workers(plan_service)
        )
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="aserver-bridge"
        )
        # GETs (/stats) bridge on their own lane so monitoring answers even
        # with every plan-bridging slot saturated.
        self._aux_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="aserver-aux"
        )
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self._busy: set[asyncio.Task] = set()
        self._bridged = 0  # executor slots currently bridging a request
        self._closing = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket (idempotent-unsafe: call once)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=_HEAD_LIMIT
        )

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (after :meth:`start`)."""
        assert self._server is not None, "the server has not been started"
        return self._server.sockets[0].getsockname()[:2]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def close_gracefully(
        self, timeout: float = 5.0, *, close_backend: bool = False
    ) -> bool:
        """Stop accepting, drain in-flight requests, then close.

        Connections mid-request get ``timeout`` seconds to finish and are
        cancelled past it; idle keep-alive connections are cancelled
        immediately after the drain.  Returns whether the drain completed in
        time.  With ``close_backend`` the backend is closed last, so drained
        requests are answered first.
        """
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        busy = [task for task in self._busy if task is not asyncio.current_task()]
        drained = True
        if busy:
            _, pending = await asyncio.wait(busy, timeout=timeout)
            drained = not pending
        leftovers = [task for task in self._connections if task is not asyncio.current_task()]
        for task in leftovers:
            task.cancel()
        if leftovers:
            await asyncio.gather(*leftovers, return_exceptions=True)
        self._executor.shutdown(wait=False)
        self._aux_executor.shutdown(wait=False)
        if close_backend:
            await asyncio.get_running_loop().run_in_executor(
                None, self.plan_service.close
            )
        return drained

    # -- the connection loop ----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        try:
            while not self._closing:
                try:
                    head = await asyncio.wait_for(
                        reader.readuntil(b"\r\n\r\n"), self.request_timeout
                    )
                except asyncio.IncompleteReadError:
                    return  # the client closed (cleanly, between requests)
                except asyncio.LimitOverrunError:
                    await self._respond(
                        writer, 400, {"error": "request head too large"}, close=True
                    )
                    return
                except (TimeoutError, asyncio.TimeoutError):
                    # (asyncio.TimeoutError is distinct before Python 3.11)
                    return  # stalled client: costs this socket, nothing else
                try:
                    method, path, version, headers = _parse_head(head)
                except ValueError as error:
                    await self._respond(writer, 400, {"error": str(error)}, close=True)
                    return
                body = b""
                if method == "POST":
                    try:
                        length = validated_content_length(
                            headers.get("content-length"), self.max_body_bytes
                        )
                    except PayloadTooLargeError as error:
                        await self._respond(writer, 413, {"error": str(error)}, close=True)
                        return
                    except ValueError as error:
                        await self._respond(writer, 400, {"error": str(error)}, close=True)
                        return
                    try:
                        body = await asyncio.wait_for(
                            reader.readexactly(length), self.request_timeout
                        )
                    except asyncio.IncompleteReadError as error:
                        await self._respond(
                            writer,
                            400,
                            {
                                "error": f"truncated request body "
                                f"({len(error.partial)} of {length} bytes)"
                            },
                            close=True,
                        )
                        return
                    except (TimeoutError, asyncio.TimeoutError):
                        return  # half-sent body then silence: drop the socket
                self._busy.add(task)
                try:
                    status, payload = await self._answer(
                        method, path, body, headers.get("x-trace-id")
                    )
                    keep_alive = (
                        status < 400
                        and version == "HTTP/1.1"
                        and headers.get("connection", "").lower() != "close"
                    )
                    await self._respond(writer, status, payload, close=not keep_alive)
                finally:
                    self._busy.discard(task)
                if not keep_alive:
                    return
        except asyncio.CancelledError:
            pass  # graceful-close cancellation of an idle/straggling connection
        except (ConnectionError, OSError, asyncio.TimeoutError):
            pass  # the peer vanished mid-conversation, or never read its answer
        finally:
            self._connections.discard(task)
            self._busy.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _answer(
        self, method: str, path: str, body: bytes, trace_id: str | None = None
    ) -> tuple[int, "dict[str, Any] | str"]:
        """Bridge one framed request to the blocking service surface."""
        loop = asyncio.get_running_loop()
        if method != "POST":
            if path == "/healthz":
                # Liveness is answered inline: no bridge, no saturation.
                return 200, {"status": "ok"}
            # /stats, /metrics, /trace and 404s ride the auxiliary lane,
            # insulated from a saturated plan bridge (the threaded server
            # likewise answers them on their own handler thread).
            return await loop.run_in_executor(
                self._aux_executor, dispatch_request, self.plan_service, method, path, body
            )
        if self._bridged >= self.max_workers:
            # The front door is exactly admission-sized, so hitting the bound
            # means the backend would reject this request anyway — say so
            # without spending a thread (the async mirror of AdmissionError).
            # The same accounting covers both paths: bridged requests hold an
            # executor slot, native ones just hold the counter.
            return 503, {
                "error": f"async front end over capacity: {self._bridged} requests "
                f"in flight (limit {self.max_workers})"
            }
        self._bridged += 1  # single-threaded mutation: we run on the loop
        try:
            if self.native_async:
                # Native path: the whole request lifecycle stays on this
                # loop.  The trace activates *around the await* inside the
                # async dispatch core — the coroutine runs in our context,
                # so no positional hand-off is needed.
                return await dispatch_request_async(
                    self.plan_service, method, path, body, trace_id
                )
            # The trace rides the bridge as a positional argument: the
            # executor thread has no ambient trace context of its own.
            return await loop.run_in_executor(
                self._executor,
                dispatch_request,
                self.plan_service,
                method,
                path,
                body,
                trace_id,
            )
        finally:
            self._bridged -= 1

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: "dict[str, Any] | str",
        close: bool,
    ) -> None:
        if isinstance(payload, str):
            # The Prometheus exposition of GET /metrics: already-rendered text.
            body = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        head = (
            f"HTTP/1.1 {status} {HTTPStatus(status).phrase}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        # Bounded drain: a peer that never reads its response releases this
        # coroutine at the timeout instead of holding it forever.
        await asyncio.wait_for(writer.drain(), self.request_timeout)


class AsyncServerHandle:
    """A running :class:`AsyncPlanServer` driven by a background loop thread.

    What synchronous callers (tests, the CLI's ``repro serve --async``) hold:
    exposes the bound address and a blocking :meth:`close` that performs the
    server's graceful shutdown and joins the loop thread.
    """

    def __init__(
        self, server: AsyncPlanServer, loop: asyncio.AbstractEventLoop, thread: threading.Thread
    ) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread
        self._closed = False

    @property
    def address(self) -> tuple[str, int]:
        return self.server.address

    def close(self, timeout: float = 5.0, *, close_backend: bool = False) -> bool:
        """Gracefully close the server and stop the loop thread (idempotent)."""
        if self._closed:
            return True
        self._closed = True
        future = asyncio.run_coroutine_threadsafe(
            self.server.close_gracefully(timeout, close_backend=close_backend), self._loop
        )
        try:
            drained = future.result(timeout=timeout + 10.0)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
            if not self._thread.is_alive():
                self._loop.close()
        return drained

    def __enter__(self) -> "AsyncServerHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def serve_async(
    plan_service: "PlanBackend",
    host: str = "127.0.0.1",
    port: int = 8080,
    **server_options: Any,
) -> AsyncServerHandle:
    """Start an :class:`AsyncPlanServer` on a background event-loop thread.

    The synchronous mirror of :func:`repro.serving.http.serve` +
    ``serve_in_background()``: returns once the socket is bound (binding
    errors re-raise here), and the handle's :meth:`~AsyncServerHandle.close`
    shuts everything down gracefully.
    """
    server = AsyncPlanServer(plan_service, host, port, **server_options)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    startup_error: list[BaseException] = []

    def run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as error:  # noqa: BLE001 - re-raised in the caller
            startup_error.append(error)
            started.set()
            return
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=run, daemon=True, name="aserver-loop")
    thread.start()
    started.wait()
    if startup_error:
        thread.join(timeout=5.0)
        loop.close()
        raise startup_error[0]
    return AsyncServerHandle(server, loop, thread)

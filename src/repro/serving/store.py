"""Pluggable storage backends behind :class:`~repro.serving.cache.PlanCache`.

The cache separates *policy* from *storage*: :class:`PlanCache` keeps its
TTL / stale-while-revalidate / drift semantics and counters, while the entry
storage — the recency-ordered key → :class:`~repro.serving.cache.CachedPlan`
map with LRU eviction — lives behind the small :class:`CacheStore` protocol:

* ``get(key)`` / ``put(key, entry)`` / ``invalidate(key)`` — the KV surface;
  ``put`` returns how many entries it evicted so the cache's counters stay
  exact on any backend,
* ``touch(key)`` — LRU promotion, split from ``get`` so the cache can decide
  (expiry!) before refreshing recency,
* ``scan()`` — every stored key, which is what the sharding tier's rebalance
  measurements and aggregated stats iterate,
* ``stats()`` — a backend-described stats hook merged into the cache's own.

Two implementations ship:

* :class:`LocalStore` — the in-process ``OrderedDict`` the cache always used,
  now extracted; one lock, exact LRU order.
* :class:`SharedStore` — a file-backed KV (one JSON document per entry,
  atomic ``os.replace`` writes, recency tracked through file mtimes) that
  several :class:`~repro.serving.service.PlanService` shard *processes* can
  point at the same directory, so shards share warm plans and a rebalanced
  key is warm on its new shard the moment it moves.  Writes are last-writer-
  wins and unlink races are tolerated, which is exactly the cache's contract:
  an entry may legally vanish between ``get`` and ``touch``.  Cross-process
  recency is mtime-granular, so LRU order is approximate under concurrent
  readers — evictions still happen, only their victim choice blurs.

Entries round-trip through JSON (problems via
:func:`repro.serialization.problem_to_dict`), never pickle: payloads stay
inspectable on disk and survive interpreter upgrades.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.exceptions import ServingError
from repro.serving.fingerprint import ProblemFingerprint

if TYPE_CHECKING:  # pragma: no cover - typing only (cache.py imports us)
    from repro.serving.cache import CachedPlan

__all__ = ["CacheStore", "LocalStore", "SharedStore"]

_ENTRY_SUFFIX = ".plan.json"
"""Filename suffix of one stored entry in a :class:`SharedStore` directory."""


@runtime_checkable
class CacheStore(Protocol):
    """Storage protocol behind :class:`~repro.serving.cache.PlanCache`.

    Implementations own recency ordering and capacity eviction; the cache
    layers expiry, staleness and drift policy on top.
    """

    def get(self, key: str) -> "CachedPlan | None":
        """The entry stored under ``key`` (no recency side effect), or ``None``."""
        ...

    def put(self, key: str, entry: "CachedPlan") -> int:
        """Store ``entry`` under ``key`` (most recent); return entries evicted."""
        ...

    def invalidate(self, key: str, expected: "CachedPlan | None" = None) -> bool:
        """Drop ``key``; return whether an entry was removed.

        With ``expected``, only the entry previously returned by :meth:`get`
        is dropped (compare-and-delete) — the caller's expiry decision must
        not delete a *fresh* entry a concurrent ``put`` raced in.
        """
        ...

    def touch(self, key: str) -> None:
        """Mark ``key`` most recently used (no-op when it vanished meanwhile)."""
        ...

    def scan(self) -> list[str]:
        """Every stored key (unspecified order)."""
        ...

    def clear(self) -> None:
        """Drop every entry."""
        ...

    def __len__(self) -> int:
        ...

    def stats(self) -> dict[str, object]:
        """Backend-described stats hook (merged into the cache's counters)."""
        ...


class LocalStore:
    """The in-process LRU store: one ``OrderedDict`` under one lock."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ServingError(f"store capacity must be at least 1, got {capacity!r}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, CachedPlan]" = OrderedDict()
        self._lock = threading.RLock()

    def get(self, key: str) -> "CachedPlan | None":
        with self._lock:
            return self._entries.get(key)

    def put(self, key: str, entry: "CachedPlan") -> int:
        with self._lock:
            if key in self._entries:
                del self._entries[key]
            self._entries[key] = entry
            evicted = 0
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
            return evicted

    def invalidate(self, key: str, expected: "CachedPlan | None" = None) -> bool:
        with self._lock:
            if expected is not None and self._entries.get(key) is not expected:
                return False  # a fresh put raced in; keep it
            return self._entries.pop(key, None) is not None

    def touch(self, key: str) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)

    def scan(self) -> list[str]:
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, object]:
        return {"backend": "local", "capacity": self.capacity}


def _entry_to_document(key: str, entry: "CachedPlan") -> dict[str, object]:
    from repro.serialization import problem_to_dict

    fingerprint = entry.fingerprint
    return {
        "v": 1,
        "key": key,
        "fingerprint": {
            "digest": fingerprint.digest,
            "precision": fingerprint.precision,
            "size": fingerprint.size,
            "canonical_order": list(fingerprint.canonical_order),
        },
        "positions": list(entry.positions),
        "cost": entry.cost,
        "algorithm": entry.algorithm,
        "optimal": entry.optimal,
        "problem": problem_to_dict(entry.problem),
        "created_at": entry.created_at,
    }


def _entry_from_document(document: dict[str, object]) -> "tuple[str, CachedPlan]":
    from repro.serialization import problem_from_dict
    from repro.serving.cache import CachedPlan

    if document.get("v") != 1:
        raise ServingError(f"unsupported store entry version {document.get('v')!r}")
    fp = document["fingerprint"]
    fingerprint = ProblemFingerprint(
        digest=fp["digest"],
        precision=fp["precision"],
        size=fp["size"],
        canonical_order=tuple(fp["canonical_order"]),
    )
    entry = CachedPlan(
        fingerprint=fingerprint,
        positions=tuple(document["positions"]),
        cost=float(document["cost"]),
        algorithm=str(document["algorithm"]),
        optimal=bool(document["optimal"]),
        problem=problem_from_dict(document["problem"]),
        created_at=float(document["created_at"]),
    )
    return str(document["key"]), entry


class SharedStore:
    """A file-backed KV store shareable by several shard processes.

    One JSON document per entry under ``directory``; writes go through a
    temporary file plus :func:`os.replace`, so a reader never observes a
    half-written entry.  Recency is the file's mtime (``touch`` bumps it),
    which makes LRU eviction approximate but multi-process coherent without
    any cross-process lock.

    The directory is *one* cache: ``capacity`` bounds the directory-wide
    entry count (not per pointing process), and ``__len__`` / ``scan``
    report directory-wide state — N shards over one directory share one
    capacity and all see every entry, which is the point.
    """

    def __init__(self, directory: str | os.PathLike[str], capacity: int = 1024) -> None:
        if capacity < 1:
            raise ServingError(f"store capacity must be at least 1, got {capacity!r}")
        self.capacity = capacity
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()

    # -- paths -------------------------------------------------------------

    def _path(self, key: str) -> Path:
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return self.directory / f"{digest}{_ENTRY_SUFFIX}"

    def _entry_paths(self) -> list[Path]:
        return [path for path in self.directory.iterdir() if path.name.endswith(_ENTRY_SUFFIX)]

    # -- CacheStore protocol -----------------------------------------------

    def get(self, key: str) -> "CachedPlan | None":
        document = self._read_document(self._path(key))
        if document is None:
            return None
        try:
            stored_key, entry = _entry_from_document(document)
        except Exception:
            # A malformed document (version skew, hand-edited file) is a
            # plain miss.  No cleanup unlink: the next put replaces the file
            # in place anyway, and an unconditional unlink here could race a
            # concurrent fresh put under the same path and delete it.
            return None
        if stored_key != key:
            return None  # hash-collision paranoia: never serve a foreign key
        return entry

    def put(self, key: str, entry: "CachedPlan") -> int:
        payload = json.dumps(_entry_to_document(key, entry), separators=(",", ":"))
        path = self._path(key)
        with self._lock:
            handle, temp_name = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            try:
                with os.fdopen(handle, "w", encoding="utf-8") as stream:
                    stream.write(payload)
                os.replace(temp_name, path)
            except BaseException:
                try:
                    os.unlink(temp_name)
                except FileNotFoundError:
                    pass
                raise
            return self._evict_beyond_capacity(keep=path)

    def invalidate(self, key: str, expected: "CachedPlan | None" = None) -> bool:
        path = self._path(key)
        if expected is not None:
            # Best-effort compare-and-delete: re-read and match created_at so
            # an expiry decision does not drop a fresh racing put.  A write
            # landing between the check and the unlink is still lost — the
            # cross-process window is inherent to a lockless file KV, and the
            # cost is one redundant re-optimization, never a wrong answer.
            current = self.get(key)
            if current is None or current.created_at != expected.created_at:
                return False
        try:
            os.unlink(path)
        except FileNotFoundError:
            return False
        return True

    def touch(self, key: str) -> None:
        try:
            os.utime(self._path(key))
        except FileNotFoundError:
            pass

    def scan(self) -> list[str]:
        keys = []
        for path in self._entry_paths():
            document = self._read_document(path)
            if document is not None and "key" in document:
                keys.append(str(document["key"]))
        return keys

    def clear(self) -> None:
        for path in self._entry_paths():
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass

    def __len__(self) -> int:
        return len(self._entry_paths())

    def stats(self) -> dict[str, object]:
        return {
            "backend": "shared",
            "capacity": self.capacity,
            "directory": str(self.directory),
        }

    # -- internals ---------------------------------------------------------

    def _read_document(self, path: Path) -> dict[str, object] | None:
        try:
            text = path.read_text(encoding="utf-8")
        except (FileNotFoundError, OSError):
            return None
        try:
            document = json.loads(text)
        except ValueError:
            return None
        return document if isinstance(document, dict) else None

    def _evict_beyond_capacity(self, keep: Path) -> int:
        entries = []
        for path in self._entry_paths():
            try:
                entries.append((path.stat().st_mtime_ns, path))
            except FileNotFoundError:
                continue  # concurrently invalidated
        excess = len(entries) - self.capacity
        if excess <= 0:
            return 0
        evicted = 0
        for _, path in sorted(entries, key=lambda item: item[0]):
            if evicted >= excess:
                break
            if path == keep:
                continue  # never evict the entry just written
            try:
                os.unlink(path)
            except FileNotFoundError:
                continue
            evicted += 1
        return evicted

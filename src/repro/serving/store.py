"""Pluggable storage backends behind :class:`~repro.serving.cache.PlanCache`.

The cache separates *policy* from *storage*: :class:`PlanCache` keeps its
TTL / stale-while-revalidate / drift semantics and counters, while the entry
storage — the recency-ordered key → :class:`~repro.serving.cache.CachedPlan`
map with LRU eviction — lives behind the small :class:`CacheStore` protocol:

* ``get(key)`` / ``put(key, entry)`` / ``invalidate(key)`` — the KV surface;
  ``put`` returns how many entries it evicted so the cache's counters stay
  exact on any backend,
* ``touch(key)`` — LRU promotion, split from ``get`` so the cache can decide
  (expiry!) before refreshing recency,
* ``scan()`` — every stored key, which is what the sharding tier's rebalance
  measurements and aggregated stats iterate,
* ``stats()`` — a backend-described stats hook merged into the cache's own.

Two implementations ship:

* :class:`LocalStore` — the in-process ``OrderedDict`` the cache always used,
  now extracted; one lock, exact LRU order.
* :class:`SharedStore` — a file-backed KV (one JSON document per entry,
  atomic ``os.replace`` writes, recency tracked through ``st_mtime_ns`` plus
  an in-process monotonic tie-break) that several
  :class:`~repro.serving.service.PlanService` shard *processes* can
  point at the same directory, so shards share warm plans and a rebalanced
  key is warm on its new shard the moment it moves.  Writes are last-writer-
  wins and unlink races are tolerated, which is exactly the cache's contract:
  an entry may legally vanish between ``get`` and ``touch``.  Cross-process
  recency is mtime-granular, so LRU order is approximate under concurrent
  readers — evictions still happen, only their victim choice blurs.

Entries round-trip through JSON (problems via
:func:`repro.serialization.problem_to_dict`), never pickle: payloads stay
inspectable on disk and survive interpreter upgrades.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import os
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.exceptions import ServingError
from repro.serving.fingerprint import ProblemFingerprint

if TYPE_CHECKING:  # pragma: no cover - typing only (cache.py imports us)
    from repro.serving.cache import CachedPlan

__all__ = ["CacheStore", "LocalStore", "SharedStore"]

_ENTRY_SUFFIX = ".plan.json"
"""Filename suffix of one stored entry in a :class:`SharedStore` directory."""

_PUTS_PER_INDEX_RESYNC = 64
"""Every this many puts a :class:`SharedStore` rescans unconditionally: a
sibling's write landing in the *same* filesystem timestamp tick as the
recorded directory mtime is invisible to the cheap change check, so the
forced rescan bounds how long such a missed entry can skew capacity
accounting (amortised cost: one scan per 64 inserts)."""


@runtime_checkable
class CacheStore(Protocol):
    """Storage protocol behind :class:`~repro.serving.cache.PlanCache`.

    Implementations own recency ordering and capacity eviction; the cache
    layers expiry, staleness and drift policy on top.
    """

    def get(self, key: str) -> "CachedPlan | None":
        """The entry stored under ``key`` (no recency side effect), or ``None``."""
        ...

    def put(self, key: str, entry: "CachedPlan") -> int:
        """Store ``entry`` under ``key`` (most recent); return entries evicted."""
        ...

    def invalidate(self, key: str, expected: "CachedPlan | None" = None) -> bool:
        """Drop ``key``; return whether an entry was removed.

        With ``expected``, only the entry previously returned by :meth:`get`
        is dropped (compare-and-delete) — the caller's expiry decision must
        not delete a *fresh* entry a concurrent ``put`` raced in.
        """
        ...

    def touch(self, key: str) -> None:
        """Mark ``key`` most recently used (no-op when it vanished meanwhile)."""
        ...

    def scan(self) -> list[str]:
        """Every stored key (unspecified order)."""
        ...

    def clear(self) -> None:
        """Drop every entry."""
        ...

    def __len__(self) -> int:
        ...

    def stats(self) -> dict[str, object]:
        """Backend-described stats hook (merged into the cache's counters)."""
        ...


class LocalStore:
    """The in-process LRU store: one ``OrderedDict`` under one lock."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ServingError(f"store capacity must be at least 1, got {capacity!r}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, CachedPlan]" = OrderedDict()
        self._lock = threading.RLock()

    def get(self, key: str) -> "CachedPlan | None":
        with self._lock:
            return self._entries.get(key)

    def put(self, key: str, entry: "CachedPlan") -> int:
        with self._lock:
            if key in self._entries:
                del self._entries[key]
            self._entries[key] = entry
            evicted = 0
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
            return evicted

    def invalidate(self, key: str, expected: "CachedPlan | None" = None) -> bool:
        with self._lock:
            if expected is not None and self._entries.get(key) is not expected:
                return False  # a fresh put raced in; keep it
            return self._entries.pop(key, None) is not None

    def touch(self, key: str) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)

    def scan(self) -> list[str]:
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, object]:
        return {"backend": "local", "capacity": self.capacity}


def _entry_to_document(key: str, entry: "CachedPlan") -> dict[str, object]:
    from repro.serialization import problem_to_dict

    fingerprint = entry.fingerprint
    return {
        "v": 1,
        "key": key,
        "fingerprint": {
            "digest": fingerprint.digest,
            "precision": fingerprint.precision,
            "size": fingerprint.size,
            "canonical_order": list(fingerprint.canonical_order),
        },
        "positions": list(entry.positions),
        "cost": entry.cost,
        "algorithm": entry.algorithm,
        "optimal": entry.optimal,
        "problem": problem_to_dict(entry.problem),
        "created_at": entry.created_at,
    }


def _entry_from_document(document: dict[str, object]) -> "tuple[str, CachedPlan]":
    from repro.serialization import problem_from_dict
    from repro.serving.cache import CachedPlan

    if document.get("v") != 1:
        raise ServingError(f"unsupported store entry version {document.get('v')!r}")
    fp = document["fingerprint"]
    fingerprint = ProblemFingerprint(
        digest=fp["digest"],
        precision=fp["precision"],
        size=fp["size"],
        canonical_order=tuple(fp["canonical_order"]),
    )
    entry = CachedPlan(
        fingerprint=fingerprint,
        positions=tuple(document["positions"]),
        cost=float(document["cost"]),
        algorithm=str(document["algorithm"]),
        optimal=bool(document["optimal"]),
        problem=problem_from_dict(document["problem"]),
        created_at=float(document["created_at"]),
    )
    return str(document["key"]), entry


class SharedStore:
    """A file-backed KV store shareable by several shard processes.

    One JSON document per entry under ``directory``; writes go through a
    temporary file plus :func:`os.replace`, so a reader never observes a
    half-written entry.  Recency is the file's ``st_mtime_ns`` (``touch``
    bumps it), which makes LRU eviction approximate but multi-process
    coherent without any cross-process lock.  Within one process the store
    breaks mtime ties with a monotonic sequence number, so entries written
    inside the same filesystem timestamp tick (second-granular on some
    filesystems) still evict in true LRU order instead of effectively at
    random.

    Eviction runs off a cached in-process index of ``(recency, name)``
    pairs instead of rescanning the directory on every insert: the index is
    rebuilt when the *directory* mtime no longer matches the value recorded
    after this store's own last mutation — i.e. when some other process (or
    store instance) added or removed entries — and unconditionally every
    ``_PUTS_PER_INDEX_RESYNC`` puts, because a sibling's write landing in
    the same timestamp tick as the recorded value would otherwise go
    unnoticed.  A sibling's ``touch`` does not change the directory mtime,
    so its recency bump is picked up lazily; the victim choice blurs exactly
    as the mtime contract already allows, and capacity drift from a missed
    same-tick write is bounded by the periodic rescan.

    The directory is *one* cache: ``capacity`` bounds the directory-wide
    entry count (not per pointing process), and ``__len__`` / ``scan``
    report directory-wide state — N shards over one directory share one
    capacity and all see every entry, which is the point.
    """

    def __init__(self, directory: str | os.PathLike[str], capacity: int = 1024) -> None:
        if capacity < 1:
            raise ServingError(f"store capacity must be at least 1, got {capacity!r}")
        self.capacity = capacity
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        # filename -> (recency_ns, seq); rebuilt when the directory changed
        # under us, otherwise maintained incrementally (no directory scan).
        self._index: dict[str, tuple[int, int]] = {}
        self._heap: list[tuple[int, int, str]] = []  # (recency_ns, seq, name)
        self._seq = 0
        self._dir_mtime_ns: int | None = None  # None = index not built yet
        self._puts_since_resync = 0

    # -- paths -------------------------------------------------------------

    def _path(self, key: str) -> Path:
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return self.directory / f"{digest}{_ENTRY_SUFFIX}"

    def _entry_paths(self) -> list[Path]:
        return [path for path in self.directory.iterdir() if path.name.endswith(_ENTRY_SUFFIX)]

    # -- CacheStore protocol -----------------------------------------------

    def get(self, key: str) -> "CachedPlan | None":
        document = self._read_document(self._path(key))
        if document is None:
            return None
        try:
            stored_key, entry = _entry_from_document(document)
        except Exception:
            # A malformed document (version skew, hand-edited file) is a
            # plain miss.  No cleanup unlink: the next put replaces the file
            # in place anyway, and an unconditional unlink here could race a
            # concurrent fresh put under the same path and delete it.
            return None
        if stored_key != key:
            return None  # hash-collision paranoia: never serve a foreign key
        return entry

    def put(self, key: str, entry: "CachedPlan") -> int:
        payload = json.dumps(_entry_to_document(key, entry), separators=(",", ":"))
        path = self._path(key)
        with self._lock:
            self._puts_since_resync += 1
            if self._puts_since_resync >= _PUTS_PER_INDEX_RESYNC:
                self._puts_since_resync = 0
                self._dir_mtime_ns = None  # force the rescan (same-tick writes)
            # Sync before mutating: our own write below changes the directory
            # mtime, and only the post-mutation value must be recorded.
            self._sync_index_locked()
            handle, temp_name = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            try:
                with os.fdopen(handle, "w", encoding="utf-8") as stream:
                    stream.write(payload)
                os.replace(temp_name, path)
            except BaseException:
                try:
                    os.unlink(temp_name)
                except FileNotFoundError:
                    pass
                raise
            self._note_recency_locked(path)
            evicted = self._evict_beyond_capacity_locked(keep=path.name)
            self._note_dir_mtime_locked()
            return evicted

    def invalidate(self, key: str, expected: "CachedPlan | None" = None) -> bool:
        path = self._path(key)
        if expected is not None:
            # Best-effort compare-and-delete: re-read and match created_at so
            # an expiry decision does not drop a fresh racing put.  A write
            # landing between the check and the unlink is still lost — the
            # cross-process window is inherent to a lockless file KV, and the
            # cost is one redundant re-optimization, never a wrong answer.
            current = self.get(key)
            if current is None or current.created_at != expected.created_at:
                return False
        with self._lock:
            try:
                os.unlink(path)
            except FileNotFoundError:
                return False
            self._index.pop(path.name, None)
            self._note_dir_mtime_locked()
        return True

    def touch(self, key: str) -> None:
        path = self._path(key)
        with self._lock:
            try:
                os.utime(path)
            except FileNotFoundError:
                return
            if self._dir_mtime_ns is not None:
                # Keep the index's recency exact for our own touches; a
                # sibling process's utime is invisible here (it does not bump
                # the directory mtime), which only blurs its victim priority.
                self._note_recency_locked(path)

    def scan(self) -> list[str]:
        keys = []
        for path in self._entry_paths():
            document = self._read_document(path)
            if document is not None and "key" in document:
                keys.append(str(document["key"]))
        return keys

    def clear(self) -> None:
        with self._lock:
            for path in self._entry_paths():
                try:
                    os.unlink(path)
                except FileNotFoundError:
                    pass
            self._index.clear()
            self._heap.clear()
            self._note_dir_mtime_locked()

    def __len__(self) -> int:
        return len(self._entry_paths())

    def stats(self) -> dict[str, object]:
        return {
            "backend": "shared",
            "capacity": self.capacity,
            "directory": str(self.directory),
        }

    # -- internals ---------------------------------------------------------

    def _read_document(self, path: Path) -> dict[str, object] | None:
        try:
            text = path.read_text(encoding="utf-8")
        except (FileNotFoundError, OSError):
            return None
        try:
            document = json.loads(text)
        except ValueError:
            return None
        return document if isinstance(document, dict) else None

    def _recency_ns(self, path: Path) -> int:
        """The filesystem recency of ``path`` (hook; tests simulate coarse clocks)."""
        return path.stat().st_mtime_ns

    def _sync_index_locked(self) -> None:
        """Rebuild the eviction index iff the directory changed externally.

        The check is one ``stat`` of the directory: entry creation/removal by
        anyone bumps its mtime, and :meth:`put` / :meth:`invalidate` /
        :meth:`clear` record the post-mutation value, so a match means the
        index is current and the steady-state put never rescans.
        """
        try:
            dir_mtime = os.stat(self.directory).st_mtime_ns
        except FileNotFoundError:
            self._index.clear()
            self._heap.clear()
            self._dir_mtime_ns = None
            return
        if self._dir_mtime_ns is not None and dir_mtime == self._dir_mtime_ns:
            return
        fresh: dict[str, tuple[int, int]] = {}
        for path in self._entry_paths():
            try:
                ns = self._recency_ns(path)
            except FileNotFoundError:
                continue  # concurrently invalidated
            known = self._index.get(path.name)
            # Keep our own tie-break when the on-disk recency is unchanged;
            # an externally modified file falls back to mtime-only order.
            fresh[path.name] = known if (known is not None and known[0] == ns) else (ns, 0)
        self._index = fresh
        self._heap = [(ns, seq, name) for name, (ns, seq) in fresh.items()]
        heapq.heapify(self._heap)
        self._dir_mtime_ns = dir_mtime

    def _note_recency_locked(self, path: Path) -> None:
        """Mark ``path`` most recent: on-disk mtime plus a monotonic tie-break."""
        try:
            ns = self._recency_ns(path)
        except FileNotFoundError:
            return
        self._seq += 1
        self._index[path.name] = (ns, self._seq)
        heapq.heappush(self._heap, (ns, self._seq, path.name))
        # Lazy deletion leaves one superseded tuple per touch/replace in the
        # heap; compact before a hit-heavy workload turns that into a leak.
        if len(self._heap) > 4 * len(self._index) + 64:
            self._heap = [(n, s, name) for name, (n, s) in self._index.items()]
            heapq.heapify(self._heap)

    def _note_dir_mtime_locked(self) -> None:
        try:
            self._dir_mtime_ns = os.stat(self.directory).st_mtime_ns
        except FileNotFoundError:
            self._dir_mtime_ns = None

    def _pop_lru_locked(self, spare: str) -> str | None:
        """Remove and return the LRU index entry, never ``spare`` (lazy heap)."""
        withheld: tuple[int, int, str] | None = None
        victim: str | None = None
        while self._heap:
            ns, seq, name = heapq.heappop(self._heap)
            if self._index.get(name) != (ns, seq):
                continue  # superseded by a later touch/put, or already gone
            if name == spare:
                withheld = (ns, seq, name)
                continue
            del self._index[name]
            victim = name
            break
        if withheld is not None:
            heapq.heappush(self._heap, withheld)
        return victim

    def _evict_beyond_capacity_locked(self, keep: str) -> int:
        evicted = 0
        while len(self._index) > self.capacity:
            victim = self._pop_lru_locked(spare=keep)
            if victim is None:
                break
            try:
                os.unlink(self.directory / victim)
            except FileNotFoundError:
                continue  # concurrently invalidated; not our eviction
            evicted += 1
        return evicted

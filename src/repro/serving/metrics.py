"""Per-request latency and plan-quality metrics of the plan service.

The service records one observation per answered request: where the answer
came from (fresh cache hit, stale hit, cold optimization), how long the
request took end to end, and the quality of the returned plan (its bottleneck
cost, and whether it carries an optimality guarantee).  Latencies are kept in
a bounded reservoir so a long-running service's memory stays flat while the
quantiles remain meaningful.

Everything is guarded by one lock; observations are a few appends, so the
lock is never held across optimization work.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.exceptions import ServingError

__all__ = ["LatencySummary", "ServingMetrics"]


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics of one latency population (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @staticmethod
    def of(samples: list[float]) -> "LatencySummary":
        """Summarise ``samples`` (empty populations yield all-zero summaries)."""
        if not samples:
            return LatencySummary(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, max=0.0)
        ordered = sorted(samples)

        def quantile(fraction: float) -> float:
            position = min(int(fraction * len(ordered)), len(ordered) - 1)
            return ordered[position]

        return LatencySummary(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            p50=quantile(0.50),
            p95=quantile(0.95),
            p99=quantile(0.99),
            max=ordered[-1],
        )

    def as_dict(self) -> dict[str, float | int]:
        """Flatten for JSON reports."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }


class ServingMetrics:
    """Thread-safe request counters and latency reservoirs for a plan service."""

    SOURCES = ("hit", "stale", "cold")
    """Where an answer can come from: fresh cache hit, stale hit, optimization."""

    def __init__(self, reservoir_size: int = 4096) -> None:
        if reservoir_size < 1:
            raise ServingError(f"reservoir_size must be at least 1, got {reservoir_size!r}")
        self._lock = threading.Lock()
        self._reservoir_size = reservoir_size
        self._latencies: dict[str, list[float]] = {source: [] for source in self.SOURCES}
        self._observation_counts: dict[str, int] = {source: 0 for source in self.SOURCES}
        self._rejected = 0
        self._failed = 0
        self._optimal_answers = 0
        self._cost_total = 0.0

    # -- recording ---------------------------------------------------------

    def observe(self, source: str, latency_seconds: float, cost: float, optimal: bool) -> None:
        """Record one answered request."""
        if source not in self.SOURCES:
            raise ServingError(f"unknown answer source {source!r}; expected one of {self.SOURCES}")
        with self._lock:
            self._observation_counts[source] += 1
            reservoir = self._latencies[source]
            if len(reservoir) >= self._reservoir_size:
                # Overwrite round-robin so the reservoir tracks recent traffic.
                reservoir[self._observation_counts[source] % self._reservoir_size] = (
                    latency_seconds
                )
            else:
                reservoir.append(latency_seconds)
            self._cost_total += cost
            if optimal:
                self._optimal_answers += 1

    def record_rejection(self) -> None:
        """Record a request turned away by admission control."""
        with self._lock:
            self._rejected += 1

    def record_failure(self) -> None:
        """Record a request that raised during optimization."""
        with self._lock:
            self._failed += 1

    # -- reporting ---------------------------------------------------------

    @property
    def answered(self) -> int:
        """Total requests answered (any source)."""
        with self._lock:
            return sum(self._observation_counts.values())

    @property
    def rejected(self) -> int:
        """Total requests rejected by admission control."""
        with self._lock:
            return self._rejected

    @property
    def failed(self) -> int:
        """Total requests that failed during optimization."""
        with self._lock:
            return self._failed

    def latency(self, source: str) -> LatencySummary:
        """Latency summary of one answer source ('hit', 'stale' or 'cold')."""
        if source not in self.SOURCES:
            raise ServingError(f"unknown answer source {source!r}; expected one of {self.SOURCES}")
        with self._lock:
            return LatencySummary.of(list(self._latencies[source]))

    def snapshot(self) -> dict[str, object]:
        """One JSON-ready dictionary with every counter and latency summary."""
        with self._lock:
            answered = sum(self._observation_counts.values())
            return {
                "answered": answered,
                "rejected": self._rejected,
                "failed": self._failed,
                "by_source": dict(self._observation_counts),
                "optimal_answers": self._optimal_answers,
                "mean_plan_cost": self._cost_total / answered if answered else 0.0,
                "latency": {
                    source: LatencySummary.of(list(self._latencies[source])).as_dict()
                    for source in self.SOURCES
                },
            }

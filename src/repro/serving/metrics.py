"""Per-request latency and plan-quality metrics of the plan service.

The service records one observation per answered request: where the answer
came from (fresh cache hit, stale hit, cold optimization), how long the
request took end to end, and the quality of the returned plan (its bottleneck
cost, and whether it carries an optimality guarantee).  Latencies are kept in
a bounded reservoir so a long-running service's memory stays flat while the
quantiles remain meaningful.

Counters live in a :class:`repro.obs.MetricsRegistry` — the same registry the
``GET /metrics`` endpoint renders — so the Prometheus view and the JSON
:meth:`ServingMetrics.snapshot` view are two projections of one set of
numbers that cannot drift apart.  Rejections carry a ``reason`` label
(``capacity``, ``queue``, …) instead of one lumped count.  The latency
reservoirs stay local to this class: fixed-bucket histograms cannot answer
nearest-rank quantile queries, so each source keeps a bounded sample
population, downsampled by seeded reservoir sampling (Vitter's Algorithm R)
— deterministic under a configured ``seed``, which keeps metric-dependent
tests reproducible.

Snapshots are cheap: each reservoir maintains a cached sorted copy that is
(re)built at most once per snapshot cycle — repeated :meth:`ServingMetrics.snapshot`
calls between observations reuse it instead of re-sorting thousands of
samples on a hot stats endpoint.  Quantiles use the *nearest-rank* rule
(the smallest sample with at least ``q·n`` samples at or below it), applied
uniformly to every quantile, so p95/p99 of small populations land on the
sample the rank definition names instead of drifting with truncation.

Reservoir state is guarded by one lock; registry counters carry their own.
No lock is ever held across optimization work.
"""

from __future__ import annotations

import math
import random
import threading
from dataclasses import dataclass

from repro.exceptions import ServingError
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry

__all__ = ["LatencySummary", "ServingMetrics"]


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics of one latency population (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @staticmethod
    def of(samples: list[float]) -> "LatencySummary":
        """Summarise ``samples`` (empty populations yield all-zero summaries)."""
        return LatencySummary.from_sorted(sorted(samples))

    @staticmethod
    def from_sorted(ordered: list[float]) -> "LatencySummary":
        """Summarise an already-sorted population without copying or re-sorting."""
        if not ordered:
            return LatencySummary(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, max=0.0)
        count = len(ordered)

        def quantile(fraction: float) -> float:
            # Nearest-rank: the smallest sample with at least fraction*count
            # samples <= it, i.e. the ceil(fraction*count)-th order statistic.
            return ordered[min(max(math.ceil(fraction * count) - 1, 0), count - 1)]

        return LatencySummary(
            count=count,
            mean=sum(ordered) / count,
            p50=quantile(0.50),
            p95=quantile(0.95),
            p99=quantile(0.99),
            max=ordered[-1],
        )

    def as_dict(self) -> dict[str, float | int]:
        """Flatten for JSON reports."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }


class ServingMetrics:
    """Thread-safe request counters and latency reservoirs for a plan service."""

    SOURCES = ("hit", "stale", "cold")
    """Where an answer can come from: fresh cache hit, stale hit, optimization."""

    DEFAULT_REJECTION_REASON = "capacity"
    """The reason recorded when admission control gives none."""

    def __init__(
        self,
        reservoir_size: int = 4096,
        registry: MetricsRegistry | None = None,
        seed: int = 0,
    ) -> None:
        if reservoir_size < 1:
            raise ServingError(f"reservoir_size must be at least 1, got {reservoir_size!r}")
        self._lock = threading.Lock()
        self._reservoir_size = reservoir_size
        self._rng = random.Random(seed)  # guarded-by: _lock
        self._latencies: dict[str, list[float]] = {  # guarded-by: _lock
            source: [] for source in self.SOURCES
        }
        # Cached sorted copy per reservoir; None marks it dirty.  Sorting
        # happens at most once per snapshot cycle, not once per snapshot call.
        self._sorted: dict[str, list[float] | None] = {  # guarded-by: _lock
            source: None for source in self.SOURCES
        }
        self._cost_total = 0.0  # guarded-by: _lock

        self.registry = registry if registry is not None else MetricsRegistry()
        self._answered = self.registry.counter(
            "repro_requests_answered_total",
            "Requests answered, by answer source (hit/stale/cold).",
            labelnames=("source",),
        )
        self._rejections = self.registry.counter(
            "repro_requests_rejected_total",
            "Requests turned away by admission control, by reason.",
            labelnames=("reason",),
        )
        self._failures = self.registry.counter(
            "repro_requests_failed_total", "Requests that raised during optimization."
        )
        self._coalesced_total = self.registry.counter(
            "repro_requests_coalesced_total",
            "Requests answered by riding along on another request's optimization.",
        )
        self._optimal_total = self.registry.counter(
            "repro_answers_optimal_total", "Answers carrying an optimality guarantee."
        )
        self._latency_hist = self.registry.histogram(
            "repro_request_latency_seconds",
            "End-to-end request latency, by answer source.",
            buckets=DEFAULT_LATENCY_BUCKETS,
            labelnames=("source",),
        )
        # Pre-touch every known series so /metrics shows explicit zeros
        # before the first request of a kind arrives.
        for source in self.SOURCES:
            self._answered.inc(0, source=source)
        self._rejections.inc(0, reason=self.DEFAULT_REJECTION_REASON)
        self._failures.inc(0)
        self._coalesced_total.inc(0)
        self._optimal_total.inc(0)

    # -- recording ---------------------------------------------------------

    def observe(self, source: str, latency_seconds: float, cost: float, optimal: bool) -> None:
        """Record one answered request."""
        if source not in self.SOURCES:
            raise ServingError(f"unknown answer source {source!r}; expected one of {self.SOURCES}")
        self._answered.inc(source=source)
        self._latency_hist.observe(latency_seconds, source=source)
        if optimal:
            self._optimal_total.inc()
        with self._lock:
            reservoir = self._latencies[source]
            if len(reservoir) < self._reservoir_size:
                reservoir.append(latency_seconds)
                self._sorted[source] = None
            else:
                # Algorithm R: after n observations, each of them is in the
                # reservoir with probability size/n.  Seeded, hence
                # deterministic for a given observation sequence.
                seen = int(self._answered.value(source=source))
                slot = self._rng.randrange(seen)
                if slot < self._reservoir_size:
                    reservoir[slot] = latency_seconds
                    self._sorted[source] = None
            self._cost_total += cost

    def record_rejection(self, reason: str = DEFAULT_REJECTION_REASON) -> None:
        """Record a request turned away by admission control."""
        self._rejections.inc(reason=reason)

    def record_failure(self) -> None:
        """Record a request that raised during optimization."""
        self._failures.inc()

    def record_coalesced(self) -> None:
        """Record a request answered by riding along on another's optimization."""
        self._coalesced_total.inc()

    # -- reporting ---------------------------------------------------------

    @property
    def answered(self) -> int:
        """Total requests answered (any source)."""
        return int(sum(self._answered.values().values()))

    @property
    def rejected(self) -> int:
        """Total requests rejected by admission control (all reasons)."""
        return int(sum(self._rejections.values().values()))

    @property
    def failed(self) -> int:
        """Total requests that failed during optimization."""
        return int(self._failures.value())

    @property
    def coalesced(self) -> int:
        """Total requests deduplicated by single-flight/batch coalescing."""
        return int(self._coalesced_total.value())

    def rejected_by_reason(self) -> dict[str, int]:
        """Rejection counts keyed by admission-control reason."""
        return {
            key[0]: int(value) for key, value in sorted(self._rejections.values().items())
        }

    def latency(self, source: str) -> LatencySummary:
        """Latency summary of one answer source ('hit', 'stale' or 'cold')."""
        if source not in self.SOURCES:
            raise ServingError(f"unknown answer source {source!r}; expected one of {self.SOURCES}")
        with self._lock:
            return LatencySummary.from_sorted(self._sorted_reservoir(source))

    def snapshot(self) -> dict[str, object]:
        """One JSON-ready dictionary with every counter and latency summary."""
        by_source = {
            source: int(self._answered.value(source=source)) for source in self.SOURCES
        }
        answered = sum(by_source.values())
        with self._lock:
            return {
                "answered": answered,
                "rejected": self.rejected,
                "failed": self.failed,
                "coalesced": self.coalesced,
                "by_source": by_source,
                "rejected_by_reason": self.rejected_by_reason(),
                "optimal_answers": int(self._optimal_total.value()),
                "mean_plan_cost": self._cost_total / answered if answered else 0.0,
                "latency": {
                    source: LatencySummary.from_sorted(self._sorted_reservoir(source)).as_dict()
                    for source in self.SOURCES
                },
            }

    def _sorted_reservoir(self, source: str) -> list[float]:  # requires-lock: _lock
        """The cached sorted reservoir of ``source`` (rebuilt only when dirty).

        Callers must hold the lock; the returned list must not be mutated.
        """
        ordered = self._sorted[source]
        if ordered is None:
            ordered = sorted(self._latencies[source])
            self._sorted[source] = ordered
        return ordered

"""Per-request latency and plan-quality metrics of the plan service.

The service records one observation per answered request: where the answer
came from (fresh cache hit, stale hit, cold optimization), how long the
request took end to end, and the quality of the returned plan (its bottleneck
cost, and whether it carries an optimality guarantee).  Latencies are kept in
a bounded reservoir so a long-running service's memory stays flat while the
quantiles remain meaningful.

Snapshots are cheap: each reservoir maintains a cached sorted copy that is
(re)built at most once per snapshot cycle — repeated :meth:`ServingMetrics.snapshot`
calls between observations reuse it instead of re-sorting thousands of
samples on a hot stats endpoint.  Quantiles use the *nearest-rank* rule
(the smallest sample with at least ``q·n`` samples at or below it), applied
uniformly to every quantile, so p95/p99 of small populations land on the
sample the rank definition names instead of drifting with truncation.

Everything is guarded by one lock; observations are a few appends, so the
lock is never held across optimization work.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass

from repro.exceptions import ServingError

__all__ = ["LatencySummary", "ServingMetrics"]


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics of one latency population (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @staticmethod
    def of(samples: list[float]) -> "LatencySummary":
        """Summarise ``samples`` (empty populations yield all-zero summaries)."""
        return LatencySummary.from_sorted(sorted(samples))

    @staticmethod
    def from_sorted(ordered: list[float]) -> "LatencySummary":
        """Summarise an already-sorted population without copying or re-sorting."""
        if not ordered:
            return LatencySummary(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, max=0.0)
        count = len(ordered)

        def quantile(fraction: float) -> float:
            # Nearest-rank: the smallest sample with at least fraction*count
            # samples <= it, i.e. the ceil(fraction*count)-th order statistic.
            return ordered[min(max(math.ceil(fraction * count) - 1, 0), count - 1)]

        return LatencySummary(
            count=count,
            mean=sum(ordered) / count,
            p50=quantile(0.50),
            p95=quantile(0.95),
            p99=quantile(0.99),
            max=ordered[-1],
        )

    def as_dict(self) -> dict[str, float | int]:
        """Flatten for JSON reports."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }


class ServingMetrics:
    """Thread-safe request counters and latency reservoirs for a plan service."""

    SOURCES = ("hit", "stale", "cold")
    """Where an answer can come from: fresh cache hit, stale hit, optimization."""

    def __init__(self, reservoir_size: int = 4096) -> None:
        if reservoir_size < 1:
            raise ServingError(f"reservoir_size must be at least 1, got {reservoir_size!r}")
        self._lock = threading.Lock()
        self._reservoir_size = reservoir_size
        self._latencies: dict[str, list[float]] = {source: [] for source in self.SOURCES}
        # Cached sorted copy per reservoir; None marks it dirty.  Sorting
        # happens at most once per snapshot cycle, not once per snapshot call.
        self._sorted: dict[str, list[float] | None] = {source: None for source in self.SOURCES}
        self._observation_counts: dict[str, int] = {source: 0 for source in self.SOURCES}
        self._rejected = 0
        self._failed = 0
        self._coalesced = 0
        self._optimal_answers = 0
        self._cost_total = 0.0

    # -- recording ---------------------------------------------------------

    def observe(self, source: str, latency_seconds: float, cost: float, optimal: bool) -> None:
        """Record one answered request."""
        if source not in self.SOURCES:
            raise ServingError(f"unknown answer source {source!r}; expected one of {self.SOURCES}")
        with self._lock:
            self._observation_counts[source] += 1
            reservoir = self._latencies[source]
            if len(reservoir) >= self._reservoir_size:
                # Overwrite round-robin so the reservoir tracks recent traffic.
                reservoir[self._observation_counts[source] % self._reservoir_size] = (
                    latency_seconds
                )
            else:
                reservoir.append(latency_seconds)
            self._sorted[source] = None
            self._cost_total += cost
            if optimal:
                self._optimal_answers += 1

    def record_rejection(self) -> None:
        """Record a request turned away by admission control."""
        with self._lock:
            self._rejected += 1

    def record_failure(self) -> None:
        """Record a request that raised during optimization."""
        with self._lock:
            self._failed += 1

    def record_coalesced(self) -> None:
        """Record a request answered by riding along on another's optimization."""
        with self._lock:
            self._coalesced += 1

    # -- reporting ---------------------------------------------------------

    @property
    def answered(self) -> int:
        """Total requests answered (any source)."""
        with self._lock:
            return sum(self._observation_counts.values())

    @property
    def rejected(self) -> int:
        """Total requests rejected by admission control."""
        with self._lock:
            return self._rejected

    @property
    def failed(self) -> int:
        """Total requests that failed during optimization."""
        with self._lock:
            return self._failed

    @property
    def coalesced(self) -> int:
        """Total requests deduplicated by single-flight/batch coalescing."""
        with self._lock:
            return self._coalesced

    def latency(self, source: str) -> LatencySummary:
        """Latency summary of one answer source ('hit', 'stale' or 'cold')."""
        if source not in self.SOURCES:
            raise ServingError(f"unknown answer source {source!r}; expected one of {self.SOURCES}")
        with self._lock:
            return LatencySummary.from_sorted(self._sorted_reservoir(source))

    def snapshot(self) -> dict[str, object]:
        """One JSON-ready dictionary with every counter and latency summary."""
        with self._lock:
            answered = sum(self._observation_counts.values())
            return {
                "answered": answered,
                "rejected": self._rejected,
                "failed": self._failed,
                "coalesced": self._coalesced,
                "by_source": dict(self._observation_counts),
                "optimal_answers": self._optimal_answers,
                "mean_plan_cost": self._cost_total / answered if answered else 0.0,
                "latency": {
                    source: LatencySummary.from_sorted(self._sorted_reservoir(source)).as_dict()
                    for source in self.SOURCES
                },
            }

    def _sorted_reservoir(self, source: str) -> list[float]:
        """The cached sorted reservoir of ``source`` (rebuilt only when dirty).

        Callers must hold the lock; the returned list must not be mutated.
        """
        ordered = self._sorted[source]
        if ordered is None:
            ordered = sorted(self._latencies[source])
            self._sorted[source] = ordered
        return ordered

"""A stdlib-only JSON/HTTP front end for :class:`~repro.serving.service.PlanService`.

The endpoint is deliberately small — :class:`http.server.ThreadingHTTPServer`
plus a request handler — so the service can take real traffic without any
third-party dependency:

* ``POST /plan`` — body is an ordering-problem document in the
  :mod:`repro.serialization` format (optionally wrapped as
  ``{"problem": {...}, "budget_seconds": 0.2}``); answers with the plan,
  its cost and the cache/latency metadata of :class:`PlanResponse`.
* ``POST /plan/batch`` — body is ``{"problems": [{...}, ...]}`` (optionally
  with ``"budget_seconds"``); the whole batch is answered through
  :meth:`~repro.serving.service.PlanService.optimize_batch` — one admission,
  cache hits served directly, misses deduplicated by fingerprint — and the
  reply is ``{"responses": [...]}`` in request order.
* ``GET /stats`` — the service's :meth:`~repro.serving.service.PlanService.stats`
  snapshot.
* ``GET /healthz`` — liveness probe.

The server binds anything with the service surface (``submit`` /
``optimize_batch`` / ``stats``): a single
:class:`~repro.serving.service.PlanService`, or a
:class:`~repro.sharding.router.ShardRouter` fanning the same requests over N
shards (``repro serve --shards N``) — ``/stats`` then reports the router's
aggregated counters with a per-shard breakdown.

Overload surfaces as HTTP 503 (admission control), malformed documents as
HTTP 400; optimizer failures as HTTP 500.  Each connection is handled on its
own thread (``ThreadingHTTPServer``), which is exactly the concurrency model
:class:`PlanService.submit` is built for.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Union

from repro.exceptions import AdmissionError, InvalidProblemError, ReproError, ServingError
from repro.serialization import problem_from_dict
from repro.serving.service import PlanResponse, PlanService

if TYPE_CHECKING:  # pragma: no cover - typing only (sharding imports us)
    from repro.sharding.router import ShardRouter

    PlanBackend = Union[PlanService, ShardRouter]
else:
    PlanBackend = PlanService

__all__ = ["PlanServer", "response_from_dict", "response_to_dict", "serve"]


def response_to_dict(response: PlanResponse) -> dict[str, Any]:
    """Serialise a :class:`PlanResponse` for the wire (and the CLI's ``--json``)."""
    return {
        "order": list(response.order),
        "services": list(response.service_names),
        "cost": response.cost,
        "algorithm": response.algorithm,
        "optimal": response.optimal,
        "cache_hit": response.cache_hit,
        "stale": response.stale,
        "fingerprint": response.fingerprint,
        "latency_seconds": response.latency_seconds,
        "coalesced": response.coalesced,
    }


def response_from_dict(document: dict[str, Any]) -> PlanResponse:
    """Rebuild a :class:`PlanResponse` from :func:`response_to_dict` output.

    This is how answers cross the shard-process boundary
    (:mod:`repro.sharding.process`): flat primitives, never pickled object
    graphs.
    """
    try:
        return PlanResponse(
            order=tuple(document["order"]),
            service_names=tuple(document["services"]),
            cost=float(document["cost"]),
            algorithm=str(document["algorithm"]),
            optimal=bool(document["optimal"]),
            cache_hit=bool(document["cache_hit"]),
            stale=bool(document["stale"]),
            fingerprint=str(document["fingerprint"]),
            latency_seconds=float(document["latency_seconds"]),
            coalesced=bool(document.get("coalesced", False)),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ServingError(f"malformed plan-response document: {error}") from error


def _validated_budget(document: dict[str, Any]) -> float | None:
    """The request's ``budget_seconds``, rejected with :class:`ValueError` unless numeric."""
    budget = document.get("budget_seconds")
    if budget is not None and not isinstance(budget, (int, float)):
        raise ValueError(
            f"budget_seconds must be a number, got {type(budget).__name__}"
        )
    return budget


class _PlanRequestHandler(BaseHTTPRequestHandler):
    """Routes ``POST /plan``, ``GET /stats`` and ``GET /healthz``."""

    server: "PlanServer"
    protocol_version = "HTTP/1.1"

    # -- routing -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Serve the stats snapshot and the liveness probe."""
        if self.path == "/stats":
            self._send_json(200, self.server.plan_service.stats())
        elif self.path == "/healthz":
            self._send_json(200, {"status": "ok"})
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        """Accept one plan request, or a whole batch."""
        try:
            # Read the body before routing: on a keep-alive connection an
            # unread body would be parsed as the next request line.
            document = self._read_json()
        except ValueError as error:
            self._send_json(400, {"error": str(error)})
            return
        if self.path == "/plan/batch":
            self._answer_batch(document)
            return
        if self.path != "/plan":
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            if "problem" in document:
                problem_document = document["problem"]
                budget = _validated_budget(document)
            else:
                problem_document = document
                budget = None
            problem = problem_from_dict(problem_document)
        except (TypeError, ValueError, InvalidProblemError) as error:
            self._send_json(400, {"error": str(error)})
            return
        try:
            response = self.server.plan_service.submit(problem, budget_seconds=budget)
        except AdmissionError as error:
            self._send_json(503, {"error": str(error)})
            return
        except ReproError as error:
            self._send_json(500, {"error": str(error)})
            return
        self._send_json(200, response_to_dict(response))

    def _answer_batch(self, document: dict[str, Any]) -> None:
        """Handle ``POST /plan/batch``."""
        try:
            problem_documents = document["problems"]
            if not isinstance(problem_documents, list) or not problem_documents:
                raise InvalidProblemError("'problems' must be a non-empty list")
            budget = _validated_budget(document)
            problems = [problem_from_dict(entry) for entry in problem_documents]
        except (KeyError, TypeError, ValueError, InvalidProblemError) as error:
            self._send_json(400, {"error": f"malformed batch request: {error}"})
            return
        try:
            responses = self.server.plan_service.optimize_batch(problems, budget_seconds=budget)
        except AdmissionError as error:
            self._send_json(503, {"error": str(error)})
            return
        except ReproError as error:
            self._send_json(500, {"error": str(error)})
            return
        self._send_json(
            200, {"responses": [response_to_dict(response) for response in responses]}
        )

    # -- plumbing ----------------------------------------------------------

    def _read_json(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise ValueError("request body is empty")
        body = self.rfile.read(length)
        document = json.loads(body.decode("utf-8"))
        if not isinstance(document, dict):
            raise ValueError("request body must be a JSON object")
        return document

    def _send_json(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if status >= 400:
            # Error paths may leave request bytes unread (e.g. a body sent
            # without Content-Length); closing keeps keep-alive in sync.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:
        """Silence the default stderr access log (the service has metrics)."""


class PlanServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` bound to one service (or shard router)."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], plan_service: "PlanBackend") -> None:
        super().__init__(address, _PlanRequestHandler)
        self.plan_service = plan_service

    def serve_in_background(self) -> threading.Thread:
        """Start :meth:`serve_forever` on a daemon thread and return it."""
        thread = threading.Thread(target=self.serve_forever, daemon=True, name="plan-server")
        thread.start()
        return thread


def serve(
    plan_service: "PlanBackend", host: str = "127.0.0.1", port: int = 8080
) -> PlanServer:
    """Bind a :class:`PlanServer` for ``plan_service`` (call ``serve_forever`` or
    :meth:`PlanServer.serve_in_background` on the result)."""
    return PlanServer((host, port), plan_service)

"""A stdlib-only JSON/HTTP front end for :class:`~repro.serving.service.PlanService`.

The endpoint is deliberately small — :class:`http.server.ThreadingHTTPServer`
plus a request handler — so the service can take real traffic without any
third-party dependency:

* ``POST /plan`` — body is an ordering-problem document in the
  :mod:`repro.serialization` format (optionally wrapped as
  ``{"problem": {...}, "budget_seconds": 0.2}``); answers with the plan,
  its cost and the cache/latency metadata of :class:`PlanResponse`.
* ``POST /plan/batch`` — body is ``{"problems": [{...}, ...]}`` (optionally
  with ``"budget_seconds"``); the whole batch is answered through
  :meth:`~repro.serving.service.PlanService.optimize_batch` — one admission,
  cache hits served directly, misses deduplicated by fingerprint — and the
  reply is ``{"responses": [...]}`` in request order.
* ``GET /stats`` — the service's :meth:`~repro.serving.service.PlanService.stats`
  snapshot.
* ``GET /healthz`` — liveness probe.

The server binds anything with the service surface (``submit`` /
``optimize_batch`` / ``stats``): a single
:class:`~repro.serving.service.PlanService`, or a
:class:`~repro.sharding.router.ShardRouter` fanning the same requests over N
shards (``repro serve --shards N``) — ``/stats`` then reports the router's
aggregated counters with a per-shard breakdown.

Request routing and error mapping live in :func:`dispatch_request`, shared
with the asyncio front end (:mod:`repro.serving.aserver`) so both servers
answer identically: overload surfaces as HTTP 503 (admission control),
malformed documents and bodies as HTTP 400, oversized bodies as HTTP 413
(``Content-Length`` is validated against a bound instead of trusted blindly),
optimizer failures as HTTP 500.  Each connection is handled on its own
thread (``ThreadingHTTPServer``) with a socket timeout, which is exactly the
concurrency model :class:`PlanService.submit` is built for; an optional
``max_connections`` bounds the handler-thread count the way a production
deployment must (beyond it, accepting blocks — the head-of-line regime the
asyncio front end exists to avoid).  :meth:`PlanServer.close_gracefully`
stops accepting, drains in-flight handlers against a deadline, and only then
closes the socket (and optionally the backend).
"""

from __future__ import annotations

import contextlib
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Union

from repro.exceptions import AdmissionError, InvalidProblemError, ReproError, ServingError
from repro.obs import Observability, activate_trace, trace_span
from repro.serialization import problem_from_dict
from repro.serving.service import PlanResponse, PlanService

if TYPE_CHECKING:  # pragma: no cover - typing only (sharding imports us)
    from repro.sharding.router import ShardRouter

    PlanBackend = Union[PlanService, ShardRouter]
else:
    PlanBackend = PlanService

__all__ = [
    "MAX_BODY_BYTES",
    "PayloadTooLargeError",
    "PlanServer",
    "dispatch_request",
    "dispatch_request_async",
    "response_from_dict",
    "response_to_dict",
    "serve",
    "validated_content_length",
]

MAX_BODY_BYTES = 8 * 1024 * 1024
"""Default request-body bound: problem documents are KB-scale, so anything
beyond this is rejected with HTTP 413 instead of read into memory."""

REQUEST_TIMEOUT_SECONDS = 60.0
"""Default per-socket timeout: a stalled client is disconnected instead of
pinning its handler thread forever."""


class PayloadTooLargeError(ValueError):
    """A request body whose declared length exceeds the server's bound (413)."""


def response_to_dict(response: PlanResponse) -> dict[str, Any]:
    """Serialise a :class:`PlanResponse` for the wire (and the CLI's ``--json``)."""
    return {
        "order": list(response.order),
        "services": list(response.service_names),
        "cost": response.cost,
        "algorithm": response.algorithm,
        "optimal": response.optimal,
        "cache_hit": response.cache_hit,
        "stale": response.stale,
        "fingerprint": response.fingerprint,
        "latency_seconds": response.latency_seconds,
        "coalesced": response.coalesced,
    }


def response_from_dict(document: dict[str, Any]) -> PlanResponse:
    """Rebuild a :class:`PlanResponse` from :func:`response_to_dict` output.

    This is how answers cross the shard-process boundary
    (:mod:`repro.sharding.process`): flat primitives, never pickled object
    graphs.
    """
    try:
        return PlanResponse(
            order=tuple(document["order"]),
            service_names=tuple(document["services"]),
            cost=float(document["cost"]),
            algorithm=str(document["algorithm"]),
            optimal=bool(document["optimal"]),
            cache_hit=bool(document["cache_hit"]),
            stale=bool(document["stale"]),
            fingerprint=str(document["fingerprint"]),
            latency_seconds=float(document["latency_seconds"]),
            coalesced=bool(document.get("coalesced", False)),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ServingError(f"malformed plan-response document: {error}") from error


def _validated_budget(document: dict[str, Any]) -> float | None:
    """The request's ``budget_seconds``, rejected with :class:`ValueError` unless numeric."""
    budget = document.get("budget_seconds")
    if budget is not None and not isinstance(budget, (int, float)):
        raise ValueError(
            f"budget_seconds must be a number, got {type(budget).__name__}"
        )
    return budget


def validated_content_length(value: str | None, max_body_bytes: int) -> int:
    """Validate a ``Content-Length`` header instead of trusting it blindly.

    Raises :class:`ValueError` for a missing/invalid/empty declaration (HTTP
    400) and :class:`PayloadTooLargeError` beyond ``max_body_bytes`` (HTTP
    413) — the caller never allocates or blocks for an attacker-chosen size.
    """
    if value is None:
        raise ValueError("missing Content-Length header")
    try:
        length = int(value)
    except ValueError:
        raise ValueError(f"invalid Content-Length {value!r}") from None
    if length <= 0:
        raise ValueError("request body is empty")
    if length > max_body_bytes:
        raise PayloadTooLargeError(
            f"request body of {length} bytes exceeds the {max_body_bytes}-byte limit"
        )
    return length


# -- shared request core (threaded and asyncio front ends) -----------------


def _parse_document(body: bytes) -> dict[str, Any]:
    try:
        document = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise ValueError(f"request body is not valid JSON: {error}") from None
    if not isinstance(document, dict):
        raise ValueError("request body must be a JSON object")
    return document


_ROUTE_LABELS = ("/plan", "/plan/batch", "/stats", "/healthz", "/metrics", "/slowlog")
"""Known routes, used verbatim as the ``route`` metric label; ``/trace/<id>``
collapses onto ``/trace`` and everything else onto ``other`` so the label's
cardinality stays bounded no matter what clients probe."""


def _route_label(path: str) -> str:
    if path in _ROUTE_LABELS:
        return path
    if path.startswith("/trace/"):
        return "/trace"
    return "other"


def dispatch_request(
    plan_service: "PlanBackend",
    method: str,
    path: str,
    body: bytes = b"",
    trace_id: str | None = None,
) -> tuple[int, Union[dict[str, Any], str]]:
    """Route one framed request against the service surface (blocking).

    This is the single request core both front ends call — the threaded
    handler directly, the asyncio server through its executor bridge — so
    status mapping stays identical by construction: 200 answers, 400
    malformed, 404 unknown path, 503 admission, 500 optimizer/internal.
    Framing concerns (reading the body, 413, timeouts) stay with the caller.

    ``trace_id`` is the caller-supplied ``X-Trace-Id``: a POST carrying one
    is traced even when tracing is off by default, and the id it ran under
    is echoed in the response payload for ``GET /trace/<id>``.  A ``str``
    payload (``GET /metrics``) is served as plain text, not JSON.
    """
    observability = getattr(plan_service, "obs", None)
    started = time.perf_counter()
    status, payload = _dispatch(plan_service, observability, method, path, body, trace_id)
    if observability is not None:
        obs_method = method if method in ("GET", "POST") else "other"
        observability.observe_http(
            _route_label(path), obs_method, status, time.perf_counter() - started
        )
    return status, payload


def _dispatch(
    plan_service: "PlanBackend",
    observability: "Observability | None",
    method: str,
    path: str,
    body: bytes,
    trace_id: str | None,
) -> tuple[int, Union[dict[str, Any], str]]:
    if method == "GET":
        return _dispatch_get(plan_service, observability, path)
    if method != "POST":
        return 501, {"error": f"unsupported method {method!r}"}
    traced = observability is not None and (observability.enabled or trace_id is not None)
    if not traced:
        return _dispatch_post(plan_service, path, body)
    with activate_trace(trace_id) as active:
        with trace_span("http.request", method=method, route=_route_label(path)) as root:
            status, payload = _dispatch_post(plan_service, path, body)
            root.annotate(status=status)
    observability.record_trace(active)
    if isinstance(payload, dict):
        payload = {**payload, "trace_id": active.trace_id}
    return status, payload


def _dispatch_get(
    plan_service: "PlanBackend",
    observability: "Observability | None",
    path: str,
) -> tuple[int, Union[dict[str, Any], str]]:
    if path == "/stats":
        try:
            return 200, plan_service.stats()
        except ReproError as error:
            return 500, {"error": str(error)}
        except Exception as error:  # noqa: BLE001 - a handler must answer
            return 500, {"error": f"internal error: {type(error).__name__}: {error}"}
    if path == "/healthz":
        return 200, {"status": "ok"}
    if path == "/metrics":
        if observability is None:
            return 404, {"error": "this backend exposes no metrics registry"}
        return 200, observability.registry.render()
    if path.startswith("/trace/"):
        if observability is None:
            return 404, {"error": "this backend stores no traces"}
        trace_id = path[len("/trace/") :]
        tree = observability.spans.tree(trace_id)
        if tree is None:
            return 404, {"error": f"unknown trace {trace_id!r}"}
        return 200, tree
    if path == "/slowlog":
        if observability is None:
            return 404, {"error": "this backend keeps no slow-request log"}
        return 200, {
            "threshold_seconds": observability.slow_log.threshold_seconds,
            "entries": observability.slow_log.entries(),
        }
    return 404, {"error": f"unknown path {path!r}"}


def _parse_plan(document: dict[str, Any]):
    """Extract ``(problem, budget)`` from a ``POST /plan`` document."""
    if "problem" in document:
        problem_document = document["problem"]
        budget = _validated_budget(document)
    else:
        problem_document = document
        budget = None
    return problem_from_dict(problem_document), budget


def _parse_batch(document: dict[str, Any]):
    """Extract ``(problems, budget)`` from a ``POST /plan/batch`` document."""
    problem_documents = document["problems"]
    if not isinstance(problem_documents, list) or not problem_documents:
        raise InvalidProblemError("'problems' must be a non-empty list")
    budget = _validated_budget(document)
    return [problem_from_dict(entry) for entry in problem_documents], budget


def _backend_error_status(error: Exception) -> tuple[int, dict[str, Any]]:
    """Map a backend exception to the shared HTTP status contract."""
    if isinstance(error, AdmissionError):
        return 503, {"error": str(error)}
    if isinstance(error, ReproError):
        return 500, {"error": str(error)}
    # A handler must answer, not leak: anything unexpected is a plain 500.
    return 500, {"error": f"internal error: {type(error).__name__}: {error}"}


def _dispatch_post(
    plan_service: "PlanBackend", path: str, body: bytes
) -> tuple[int, dict[str, Any]]:
    try:
        document = _parse_document(body)
    except ValueError as error:
        return 400, {"error": str(error)}
    if path == "/plan/batch":
        try:
            problems, budget = _parse_batch(document)
        except (KeyError, TypeError, ValueError, InvalidProblemError) as error:
            return 400, {"error": f"malformed batch request: {error}"}
        try:
            responses = plan_service.optimize_batch(problems, budget_seconds=budget)
        except Exception as error:  # noqa: BLE001 - mapped, never leaked
            return _backend_error_status(error)
        return 200, {"responses": [response_to_dict(response) for response in responses]}
    if path != "/plan":
        return 404, {"error": f"unknown path {path!r}"}
    try:
        problem, budget = _parse_plan(document)
    except (TypeError, ValueError, InvalidProblemError) as error:
        return 400, {"error": str(error)}
    try:
        response = plan_service.submit(problem, budget_seconds=budget)
    except Exception as error:  # noqa: BLE001 - mapped, never leaked
        return _backend_error_status(error)
    return 200, response_to_dict(response)


# -- the awaitable request core (native async shard path) -------------------


async def dispatch_request_async(
    plan_service: "PlanBackend",
    method: str,
    path: str,
    body: bytes = b"",
    trace_id: str | None = None,
) -> tuple[int, Union[dict[str, Any], str]]:
    """The awaitable mirror of :func:`dispatch_request` for POST routes.

    Shares every parse helper and the error-status mapping with the blocking
    core — identical 400/404/503/500 answers by construction — but answers
    through the backend's native ``submit_async`` / ``optimize_batch_async``
    surface (a :class:`~repro.sharding.router.ShardRouter` over process
    shards), so the whole request lifecycle stays on the event loop: no
    executor bridge, no per-request thread.  The trace activation wraps the
    ``await`` directly — the coroutine runs in the caller's context, so spans
    opened anywhere down the awaitable path (router fan-out, shard
    re-entry) stitch into the same tree the threaded path produces.
    """
    observability = getattr(plan_service, "obs", None)
    started = time.perf_counter()
    status, payload = await _dispatch_async(
        plan_service, observability, method, path, body, trace_id
    )
    if observability is not None:
        obs_method = method if method in ("GET", "POST") else "other"
        observability.observe_http(
            _route_label(path), obs_method, status, time.perf_counter() - started
        )
    return status, payload


async def _dispatch_async(
    plan_service: "PlanBackend",
    observability: "Observability | None",
    method: str,
    path: str,
    body: bytes,
    trace_id: str | None,
) -> tuple[int, Union[dict[str, Any], str]]:
    if method != "POST":
        # GETs (/stats crosses the blocking shard surface) stay on the
        # caller's auxiliary bridge lane; only plan traffic is awaitable.
        return 501, {"error": f"unsupported method {method!r}"}
    traced = observability is not None and (observability.enabled or trace_id is not None)
    if not traced:
        return await _dispatch_post_async(plan_service, path, body)
    with activate_trace(trace_id) as active:
        with trace_span("http.request", method=method, route=_route_label(path)) as root:
            status, payload = await _dispatch_post_async(plan_service, path, body)
            root.annotate(status=status)
    observability.record_trace(active)
    if isinstance(payload, dict):
        payload = {**payload, "trace_id": active.trace_id}
    return status, payload


async def _dispatch_post_async(
    plan_service: "PlanBackend", path: str, body: bytes
) -> tuple[int, dict[str, Any]]:
    try:
        document = _parse_document(body)
    except ValueError as error:
        return 400, {"error": str(error)}
    if path == "/plan/batch":
        try:
            problems, budget = _parse_batch(document)
        except (KeyError, TypeError, ValueError, InvalidProblemError) as error:
            return 400, {"error": f"malformed batch request: {error}"}
        try:
            responses = await plan_service.optimize_batch_async(
                problems, budget_seconds=budget
            )
        except Exception as error:  # noqa: BLE001 - mapped, never leaked
            return _backend_error_status(error)
        return 200, {"responses": [response_to_dict(response) for response in responses]}
    if path != "/plan":
        return 404, {"error": f"unknown path {path!r}"}
    try:
        problem, budget = _parse_plan(document)
    except (TypeError, ValueError, InvalidProblemError) as error:
        return 400, {"error": str(error)}
    try:
        response = await plan_service.submit_async(problem, budget_seconds=budget)
    except Exception as error:  # noqa: BLE001 - mapped, never leaked
        return _backend_error_status(error)
    return 200, response_to_dict(response)


class _PlanRequestHandler(BaseHTTPRequestHandler):
    """Frames requests and answers through :func:`dispatch_request`."""

    server: "PlanServer"
    protocol_version = "HTTP/1.1"

    def setup(self) -> None:
        # A per-socket timeout so a stalled client (half-sent body, idle
        # keep-alive) is disconnected instead of pinning this thread forever.
        self.timeout = self.server.request_timeout
        super().setup()

    # -- routing -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        with self.server._request_in_progress():
            status, payload = dispatch_request(self.server.plan_service, "GET", self.path)
            self._send_json(status, payload)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        with self.server._request_in_progress():
            try:
                # Read the body before routing: on a keep-alive connection an
                # unread body would be parsed as the next request line.
                body = self._read_body()
            except PayloadTooLargeError as error:
                # The body is deliberately left unread; _send_json closes the
                # connection on error statuses, keeping framing honest.
                self._send_json(413, {"error": str(error)})
                return
            except ValueError as error:
                self._send_json(400, {"error": str(error)})
                return
            status, payload = dispatch_request(
                self.server.plan_service,
                "POST",
                self.path,
                body,
                trace_id=self.headers.get("X-Trace-Id"),
            )
            self._send_json(status, payload)

    # -- plumbing ----------------------------------------------------------

    def _read_body(self) -> bytes:
        length = validated_content_length(
            self.headers.get("Content-Length"), self.server.max_body_bytes
        )
        body = self.rfile.read(length)
        if len(body) != length:
            raise ValueError(
                f"truncated request body ({len(body)} of {length} bytes)"
            )
        return body

    def _send_json(self, status: int, payload: Union[dict[str, Any], str]) -> None:
        if isinstance(payload, str):
            # GET /metrics serves the Prometheus text exposition format.
            body = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if status >= 400 or self.server._closing:
            # Error paths may leave request bytes unread (e.g. an oversized
            # or truncated body); closing keeps keep-alive in sync.  During a
            # graceful close, answered connections are released rather than
            # parked on keep-alive.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:
        """Silence the default stderr access log (the service has metrics)."""


class PlanServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` bound to one service (or shard router).

    ``max_connections`` optionally bounds concurrent handler threads (the
    accept loop blocks beyond it) — the production-shaped configuration, and
    the regime where slow clients visibly starve fast ones
    (``benchmarks/bench_async.py`` measures exactly that against the asyncio
    front end).  ``None`` keeps the historical unbounded thread-per-connection
    behaviour.
    """

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        plan_service: "PlanBackend",
        *,
        max_body_bytes: int = MAX_BODY_BYTES,
        max_connections: int | None = None,
        request_timeout: float = REQUEST_TIMEOUT_SECONDS,
    ) -> None:
        super().__init__(address, _PlanRequestHandler)
        self.plan_service = plan_service
        self.max_body_bytes = max_body_bytes
        self.request_timeout = request_timeout
        self._connection_slots = (
            threading.Semaphore(max_connections) if max_connections is not None else None
        )
        self._serving = False
        self._closing = False
        self._in_flight = 0  # open connections (slot accounting)
        self._busy = 0  # requests being processed (drain accounting)
        self._drained = threading.Condition()

    # -- lifecycle ---------------------------------------------------------

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        self._serving = True
        try:
            super().serve_forever(poll_interval)
        finally:
            self._serving = False

    def serve_in_background(self) -> threading.Thread:
        """Start :meth:`serve_forever` on a daemon thread and return it."""
        # Marked serving *before* the thread runs: a prompt close_gracefully
        # must route through shutdown() (which handshakes with the starting
        # loop) rather than closing the socket under it.
        self._serving = True
        thread = threading.Thread(target=self.serve_forever, daemon=True, name="plan-server")
        thread.start()
        return thread

    def close_gracefully(
        self, timeout: float = 5.0, *, close_backend: bool = False
    ) -> bool:
        """Stop accepting, drain in-flight *requests*, then close the socket.

        The drain waits only for requests being processed — an idle
        keep-alive connection (a handler parked between requests) does not
        pin it; its daemon thread is released by the socket timeout, and any
        request it answers during the drain is sent ``Connection: close``.
        Returns whether the drain completed inside ``timeout`` (with
        ``close_backend`` the service behind the server is closed last, so
        drained requests are answered first).
        """
        # Unblock an accept loop parked in the connection-slot acquire first:
        # shutdown() waits for serve_forever to exit, and it cannot while a
        # queued connection is waiting on a slot no handler will free in time.
        self._closing = True
        if self._serving:
            self.shutdown()  # stops the accept loop; in-flight handlers continue
        deadline = time.monotonic() + timeout
        with self._drained:
            while self._busy > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._drained.wait(timeout=remaining)
            drained = self._busy == 0
        self.server_close()
        if close_backend:
            self.plan_service.close()
        return drained

    # -- connection tracking -----------------------------------------------

    def process_request(self, request, client_address) -> None:
        if self._connection_slots is not None:
            # Blocks the accept loop when every slot is taken: the bounded
            # production regime (new connections wait in the listen backlog).
            # The wait is chunked so a graceful close can reclaim the loop —
            # a connection still queued at that point is dropped, which is
            # exactly what "stop accepting" means.
            while not self._connection_slots.acquire(timeout=0.1):
                if self._closing:
                    self.shutdown_request(request)
                    return
        with self._drained:
            self._in_flight += 1
        try:
            super().process_request(request, client_address)
        except BaseException:  # pragma: no cover - thread-spawn failure
            self._finish_connection()
            raise

    def process_request_thread(self, request, client_address) -> None:
        try:
            super().process_request_thread(request, client_address)
        finally:
            self._finish_connection()

    def _finish_connection(self) -> None:
        if self._connection_slots is not None:
            self._connection_slots.release()
        with self._drained:
            self._in_flight -= 1
            self._drained.notify_all()

    @contextlib.contextmanager
    def _request_in_progress(self):
        """Request-scoped drain accounting (handlers wrap each request)."""
        with self._drained:
            self._busy += 1
        try:
            yield
        finally:
            with self._drained:
                self._busy -= 1
                self._drained.notify_all()


def serve(
    plan_service: "PlanBackend",
    host: str = "127.0.0.1",
    port: int = 8080,
    **server_options: Any,
) -> PlanServer:
    """Bind a :class:`PlanServer` for ``plan_service`` (call ``serve_forever`` or
    :meth:`PlanServer.serve_in_background` on the result).  ``server_options``
    are forwarded (``max_body_bytes``, ``max_connections``, ``request_timeout``)."""
    return PlanServer((host, port), plan_service, **server_options)

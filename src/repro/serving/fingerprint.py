"""Canonical, permutation-invariant fingerprints of ordering problems.

A plan cache is only useful if structurally identical problems map to the same
key regardless of how their services happen to be indexed: the estimation
layer, the declarative query planner and ad-hoc callers all build
:class:`~repro.core.problem.OrderingProblem` instances in whatever order their
inputs arrive.  :func:`fingerprint_problem` therefore

1. **quantizes** every numeric parameter (costs, selectivities, transfer
   matrix, sink transfers) to a configurable number of decimal digits, so
   problems whose parameters differ only by estimation noise below the
   quantization step share a cache entry, and
2. **canonicalizes** the service order: services are sorted by their quantized
   parameter signature (cost, selectivity, sink transfer, the multisets of
   outgoing and incoming transfer costs), with the service name as the final
   deterministic tie-break.  Re-indexing the same services — the common case of
   "the same query arrived again" — always yields the same canonical order.

The returned :class:`ProblemFingerprint` also records the canonical
permutation, which is what lets the cache store plans *positionally*: a cached
plan is a sequence of canonical positions, translated back into the indices of
whichever equivalent problem is asking (see :meth:`ProblemFingerprint.to_order`
/ :meth:`ProblemFingerprint.from_order`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Sequence

from repro.core.problem import OrderingProblem
from repro.exceptions import ServingError

__all__ = ["ProblemFingerprint", "fingerprint_problem", "quantize"]

DEFAULT_PRECISION = 6
"""Default number of decimal digits kept by :func:`quantize`."""


def quantize(value: float, precision: int = DEFAULT_PRECISION) -> int:
    """Quantize ``value`` to an integer grid of ``10**-precision`` steps.

    Working on integers (rather than rounded floats) keeps the JSON payload
    that is hashed free of float-representation noise: ``0.1 + 0.2`` and
    ``0.3`` quantize to the same integer.
    """
    if precision < 0:
        raise ServingError(f"precision must be non-negative, got {precision!r}")
    return round(float(value) * 10**precision)


@dataclass(frozen=True)
class ProblemFingerprint:
    """A content hash of an :class:`OrderingProblem` plus its canonical permutation.

    Two fingerprints with equal :attr:`digest` describe problems whose
    quantized parameters are identical after canonical reordering; their
    cached plans are interchangeable once translated through
    :meth:`to_order` / :meth:`from_order`.
    """

    digest: str
    """Hex SHA-256 of the canonical quantized problem document."""

    precision: int
    """Decimal digits the parameters were quantized to."""

    size: int
    """Number of services of the fingerprinted problem."""

    canonical_order: tuple[int, ...]
    """Problem service indices listed in canonical order: entry ``p`` is the
    problem index of the service at canonical position ``p``."""

    @property
    def key(self) -> str:
        """The cache key (digest qualified by the quantization precision)."""
        return f"{self.digest}:p{self.precision}"

    def to_positions(self, order: Sequence[int]) -> tuple[int, ...]:
        """Translate a plan over problem indices into canonical positions."""
        position_of = {index: position for position, index in enumerate(self.canonical_order)}
        try:
            return tuple(position_of[index] for index in order)
        except KeyError as missing:
            raise ServingError(f"plan references unknown service index {missing}") from None

    def from_positions(self, positions: Sequence[int]) -> tuple[int, ...]:
        """Translate canonical positions back into this problem's service indices."""
        try:
            return tuple(self.canonical_order[position] for position in positions)
        except IndexError:
            raise ServingError(
                f"canonical plan {positions!r} does not fit a {self.size}-service problem"
            ) from None


def _signature(
    problem: OrderingProblem, index: int, precision: int
) -> tuple[int, int, int, tuple[int, ...], tuple[int, ...], str]:
    """The quantized sort key of one service (name is the last tie-break)."""
    size = problem.size
    outgoing = tuple(
        sorted(quantize(problem.transfer_cost(index, j), precision) for j in range(size) if j != index)
    )
    incoming = tuple(
        sorted(quantize(problem.transfer_cost(j, index), precision) for j in range(size) if j != index)
    )
    return (
        quantize(problem.costs[index], precision),
        quantize(problem.selectivities[index], precision),
        quantize(problem.sink_cost(index), precision),
        outgoing,
        incoming,
        problem.service(index).name,
    )


def fingerprint_problem(
    problem: OrderingProblem,
    precision: int = DEFAULT_PRECISION,
    include_names: bool = False,
) -> ProblemFingerprint:
    """Fingerprint ``problem`` for the plan cache.

    Parameters
    ----------
    problem:
        The instance to hash.
    precision:
        Decimal digits kept when quantizing parameters.  Lower values bucket
        nearby problems together (more cache hits, staler plans); the cache's
        drift-based revalidation compensates.
    include_names:
        When true, service names participate in the hash, so equal structure
        under different names yields different fingerprints.  Names always act
        as the deterministic tie-break of the canonical order either way.
    """
    size = problem.size
    canonical = tuple(
        sorted(range(size), key=lambda index: _signature(problem, index, precision))
    )
    position_of = {index: position for position, index in enumerate(canonical)}

    document: dict[str, object] = {
        "v": 1,
        "precision": precision,
        "size": size,
        "costs": [quantize(problem.costs[index], precision) for index in canonical],
        "selectivities": [
            quantize(problem.selectivities[index], precision) for index in canonical
        ],
        "transfer": [
            [quantize(problem.transfer_cost(i, j), precision) for j in canonical]
            for i in canonical
        ],
        "sink": [quantize(problem.sink_cost(index), precision) for index in canonical]
        if problem.sink_transfer is not None
        else None,
        "threads": [problem.service(index).threads for index in canonical],
        "precedence": sorted(
            (position_of[before], position_of[after])
            for before, after in (
                problem.precedence.edges() if problem.precedence is not None else ()
            )
        ),
    }
    if include_names:
        document["names"] = [problem.service(index).name for index in canonical]

    payload = json.dumps(document, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    return ProblemFingerprint(
        digest=digest,
        precision=precision,
        size=size,
        canonical_order=canonical,
    )

"""Plan-serving subsystem: fingerprint cache + optimizer portfolio + service.

The one-shot pipeline (build a problem, run an optimizer, print the plan)
becomes a long-running service here:

* :mod:`repro.serving.fingerprint` — canonical, permutation-invariant hashing
  of :class:`~repro.core.problem.OrderingProblem` instances,
* :mod:`repro.serving.cache` — thread-safe LRU + TTL plan cache with
  stale-while-revalidate and drift-based refresh,
* :mod:`repro.serving.store` — the pluggable storage backends behind the
  cache (:class:`LocalStore` in-proc, :class:`SharedStore` file-backed and
  shareable across shard processes),
* :mod:`repro.serving.portfolio` — deadline-budgeted races over the algorithm
  registry (greedy anytime seed, refined by beam search / branch-and-bound),
  on threads or on hard-cancellable processes (:mod:`repro.parallel`),
* :mod:`repro.serving.service` — the :class:`PlanService` façade with
  admission control, single-flight miss coalescing and batch optimization,
* :mod:`repro.serving.metrics` — per-request latency and quality metrics,
* :mod:`repro.serving.http` — a stdlib ``ThreadingHTTPServer`` JSON endpoint,
* :mod:`repro.serving.aserver` — the :mod:`asyncio` front end serving the
  same routes from one event loop: slow clients cost sockets, not threads.

Quickstart
----------
>>> from repro.serving import PlanService, PlanServiceConfig
>>> from repro.workloads import credit_card_screening
>>> service = PlanService(PlanServiceConfig(budget_seconds=0.5))
>>> first = service.submit(credit_card_screening())
>>> second = service.submit(credit_card_screening())
>>> first.cache_hit, second.cache_hit
(False, True)
>>> second.cost <= first.cost + 1e-9
True
"""

from repro.serving.aserver import AsyncPlanServer, AsyncServerHandle, serve_async
from repro.serving.cache import CachedPlan, CacheLookup, CacheStats, PlanCache, SingleFlight
from repro.serving.fingerprint import (
    DEFAULT_PRECISION,
    ProblemFingerprint,
    fingerprint_problem,
    quantize,
)
from repro.serving.http import (
    MAX_BODY_BYTES,
    PlanServer,
    dispatch_request,
    dispatch_request_async,
    response_from_dict,
    response_to_dict,
    serve,
)
from repro.serving.metrics import LatencySummary, ServingMetrics
from repro.serving.portfolio import (
    DEFAULT_PORTFOLIO,
    PORTFOLIO_BACKENDS,
    PortfolioOptimizer,
    PortfolioOptions,
    PortfolioResult,
    run_portfolio,
)
from repro.serving.service import PlanResponse, PlanService, PlanServiceConfig
from repro.serving.store import CacheStore, LocalStore, SharedStore

__all__ = [
    "DEFAULT_PORTFOLIO",
    "DEFAULT_PRECISION",
    "MAX_BODY_BYTES",
    "PORTFOLIO_BACKENDS",
    "AsyncPlanServer",
    "AsyncServerHandle",
    "CacheLookup",
    "CacheStats",
    "CacheStore",
    "CachedPlan",
    "LatencySummary",
    "LocalStore",
    "PlanCache",
    "PlanResponse",
    "PlanServer",
    "PlanService",
    "PlanServiceConfig",
    "PortfolioOptimizer",
    "PortfolioOptions",
    "PortfolioResult",
    "ProblemFingerprint",
    "ServingMetrics",
    "SharedStore",
    "SingleFlight",
    "dispatch_request",
    "dispatch_request_async",
    "fingerprint_problem",
    "quantize",
    "response_from_dict",
    "response_to_dict",
    "run_portfolio",
    "serve",
    "serve_async",
]

"""Command-line interface.

The CLI exposes the workflows a user of the library runs most often without
writing Python:

* ``repro generate``   — draw a random problem instance and save it as JSON,
* ``repro optimize``   — find the optimal (or a heuristic) ordering for a
  problem file and print the plan,
* ``repro simulate``   — execute a plan of a problem file in the
  discrete-event simulator and compare with the model,
* ``repro scenarios``  — list or optimize the named scenarios shipped with the
  library,
* ``repro experiment`` — run one of the reconstructed experiments E1–E8 and
  print its table,
* ``repro plan``       — answer plan requests through the serving subsystem
  (portfolio race under a latency budget, optionally cached),
* ``repro serve``      — run the long-running JSON/HTTP plan service,
* ``repro top``        — poll a running server's ``GET /metrics`` and render
  request and per-shard load,
* ``repro bench``      — run one of the repository's benchmark modules and
  write its JSON artifact,
* ``repro lint``       — run the repository's own static-analysis rules
  (concurrency, purity and wire-protocol invariants) over a source tree.

Every subcommand supports ``--json`` for machine-readable output where that is
meaningful.  The module is import-safe: ``main`` takes an ``argv`` list and
returns an exit code, which is what the tests drive.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
from typing import Sequence

from repro.core.optimizer import available_algorithms, optimize
from repro.exceptions import ReproError
from repro.experiments import REGISTRY
from repro.serialization import load_problem, result_to_dict, save_problem
from repro.simulation import SimulationConfig, simulate_plan
from repro.workloads import all_scenarios, default_spec, generate_problem
from repro.workloads.generator import WorkloadSpec

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for documentation and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Optimal service ordering for decentralized pipelined queries "
        "(reproduction of Tsamoura et al., PODC 2010).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a random problem instance")
    generate.add_argument("--services", type=int, default=8, help="number of services")
    generate.add_argument("--seed", type=int, default=0, help="random seed")
    generate.add_argument("--output", "-o", required=True, help="output JSON file")

    optimize_cmd = subparsers.add_parser("optimize", help="optimize the service ordering of a problem file")
    optimize_cmd.add_argument("problem", help="problem JSON file (see 'repro generate')")
    optimize_cmd.add_argument(
        "--algorithm",
        default="branch_and_bound",
        choices=available_algorithms(),
        help="optimization algorithm",
    )
    optimize_cmd.add_argument("--json", action="store_true", help="print the result as JSON")
    optimize_cmd.add_argument(
        "--kernel",
        default=None,
        choices=("auto", "scalar", "vector"),
        help="candidate-evaluation kernel: 'vector' batches whole candidate "
        "sets through numpy (install repro[fast]), 'scalar' stays pure "
        "Python, 'auto' picks per instance (default)",
    )

    simulate = subparsers.add_parser("simulate", help="simulate a plan of a problem file")
    simulate.add_argument("problem", help="problem JSON file")
    simulate.add_argument(
        "--order",
        help="comma-separated service indices; defaults to the branch-and-bound optimum",
    )
    simulate.add_argument("--tuples", type=int, default=1000, help="number of source tuples")
    simulate.add_argument("--block-size", type=int, default=1, help="tuples per shipped block")
    simulate.add_argument("--json", action="store_true", help="print the report as JSON")

    scenarios = subparsers.add_parser("scenarios", help="list or optimize the named scenarios")
    scenarios.add_argument("name", nargs="?", help="scenario name (omit to list all)")

    experiment = subparsers.add_parser("experiment", help="run one reconstructed experiment (E1..E8)")
    experiment.add_argument("experiment_id", help="experiment id, e.g. E2")

    plan = subparsers.add_parser(
        "plan", help="answer plan requests through the serving subsystem (cache + portfolio)"
    )
    plan.add_argument("problem", help="problem JSON file (see 'repro generate')")
    plan.add_argument(
        "--cached",
        action="store_true",
        help="route repeated submissions through the fingerprint plan cache",
    )
    plan.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="submit the problem this many times (with --cached, later ones hit the cache)",
    )
    plan.add_argument(
        "--budget",
        type=float,
        default=1.0,
        help="latency budget in seconds for the optimizer portfolio",
    )
    plan.add_argument("--json", action="store_true", help="print the responses as JSON")
    plan.add_argument(
        "--backend",
        default="threads",
        choices=("threads", "processes"),
        help="portfolio racing backend (processes terminates stragglers at the deadline)",
    )
    plan.add_argument(
        "--mp-context",
        default=None,
        choices=("fork", "forkserver", "spawn"),
        help="multiprocessing start method of the process backend "
        "(forkserver/spawn avoid forking from a threaded service)",
    )
    plan.add_argument(
        "--kernel",
        default="auto",
        choices=("auto", "scalar", "vector"),
        help="candidate-evaluation kernel of the portfolio's optimizers "
        "('vector' = numpy batch kernel, requires repro[fast])",
    )

    serve_cmd = subparsers.add_parser("serve", help="run the long-running JSON/HTTP plan service")
    serve_cmd.add_argument("--host", default="127.0.0.1", help="interface to bind")
    serve_cmd.add_argument("--port", type=int, default=8080, help="TCP port to bind (0 = ephemeral)")
    serve_cmd.add_argument(
        "--async",
        dest="use_async",
        action="store_true",
        help="serve through the asyncio front end (one event loop; slow "
        "clients cost sockets, not handler threads)",
    )
    serve_cmd.add_argument(
        "--graceful-timeout",
        type=float,
        default=5.0,
        help="seconds granted to in-flight requests when shutting down",
    )
    serve_cmd.add_argument(
        "--budget", type=float, default=1.0, help="latency budget in seconds per cache miss"
    )
    serve_cmd.add_argument(
        "--cache-capacity", type=int, default=1024, help="maximum number of cached plans"
    )
    serve_cmd.add_argument(
        "--ttl", type=float, default=300.0, help="cached plan lifetime in seconds (0 = no expiry)"
    )
    serve_cmd.add_argument(
        "--backend",
        default="threads",
        choices=("threads", "processes"),
        help="portfolio racing backend (processes terminates stragglers at the deadline)",
    )
    serve_cmd.add_argument(
        "--shards",
        type=int,
        default=1,
        help="number of PlanService shards behind a consistent-hash router "
        "(1 = a single unsharded service)",
    )
    serve_cmd.add_argument(
        "--shard-backend",
        default="processes",
        choices=("inproc", "processes"),
        help="where shards run: one OS process each (true multi-core serving) "
        "or all in this process",
    )
    serve_cmd.add_argument(
        "--mp-context",
        default=None,
        choices=("fork", "forkserver", "spawn"),
        help="multiprocessing start method for shard/portfolio/revalidation "
        "processes (forkserver/spawn avoid forking from a threaded service)",
    )
    serve_cmd.add_argument(
        "--share-cache-dir",
        default=None,
        help="directory of a file-backed plan store shared by every shard "
        "(warm plans survive rebalances); default: per-shard in-process store",
    )
    serve_cmd.add_argument(
        "--revalidation-backend",
        default="threads",
        choices=("threads", "pool"),
        help="run background drift/staleness refreshes on service threads or "
        "on a worker-process pool (off the request path)",
    )
    serve_cmd.add_argument(
        "--observability",
        action="store_true",
        help="enable request tracing, the span store and the slow-request "
        "log (GET /metrics serves Prometheus text either way)",
    )
    serve_cmd.add_argument(
        "--slow-threshold",
        type=float,
        default=None,
        help="log requests slower than this many seconds to GET /slowlog "
        "(implies nothing by itself: combine with --observability)",
    )
    serve_cmd.add_argument(
        "--kernel",
        default="auto",
        choices=("auto", "scalar", "vector"),
        help="candidate-evaluation kernel for every optimization this "
        "server (and its shard/pool processes) runs "
        "('vector' = numpy batch kernel, requires repro[fast])",
    )

    top = subparsers.add_parser(
        "top", help="poll a running server's GET /metrics and render per-shard load"
    )
    top.add_argument(
        "--url",
        default="http://127.0.0.1:8080",
        help="base URL of the running plan server (default: http://127.0.0.1:8080)",
    )
    top.add_argument(
        "--interval", type=float, default=2.0, help="seconds between polls (default: 2)"
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="number of polls before exiting (0 = poll until interrupted)",
    )
    top.add_argument("--json", action="store_true", help="print each poll as a JSON document")

    bench = subparsers.add_parser(
        "bench", help="run a benchmark module (benchmarks/bench_<name>.py) and write its JSON"
    )
    bench.add_argument("name", help="benchmark name, e.g. 'optimizers' or 'parallel'")
    bench.add_argument(
        "--benchmarks-dir",
        default="benchmarks",
        help="directory holding the bench_*.py modules (default: ./benchmarks); "
        "must come before the benchmark name — everything after it is forwarded",
    )
    bench.add_argument(
        "bench_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to the benchmark module (e.g. --quick -o out.json)",
    )

    lint = subparsers.add_parser(
        "lint",
        help="run the repository's static-analysis rules (RL001..) over a source tree",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="RLxxx",
        help="run only this rule (repeatable; also enables advisory rules like RL009)",
    )
    lint.add_argument(
        "--format",
        dest="output_format",
        default="text",
        choices=("text", "json"),
        help="report format (json is the schema CI consumes)",
    )
    lint.add_argument(
        "--baseline",
        default=".repro-lint-baseline.json",
        help="baseline file of grandfathered findings (default: .repro-lint-baseline.json)",
    )
    lint.add_argument(
        "--baseline-update",
        action="store_true",
        help="rewrite the baseline from this run's findings and exit 0",
    )

    report = subparsers.add_parser(
        "report", help="run every experiment and render the full evaluation report"
    )
    report.add_argument(
        "--full",
        action="store_true",
        help="use the full benchmark-scale parameters instead of the quick smoke-test scale",
    )
    report.add_argument("--output", "-o", help="write the markdown report to this file")

    return parser


def _command_generate(args: argparse.Namespace) -> int:
    spec: WorkloadSpec = default_spec(args.services)
    problem = generate_problem(spec, seed=args.seed)
    path = save_problem(problem, args.output)
    print(f"wrote {problem.size}-service problem {problem.name!r} to {path}")
    return 0


def _command_optimize(args: argparse.Namespace) -> int:
    if args.kernel is not None:
        from repro.core.vector import set_default_kernel

        set_default_kernel(args.kernel)
    problem = load_problem(args.problem)
    result = optimize(problem, algorithm=args.algorithm)
    if args.json:
        print(json.dumps(result_to_dict(result), indent=2))
    else:
        print(problem.describe())
        print()
        print(result.plan.describe())
        print()
        print(result.describe())
    return 0


def _parse_order(text: str, size: int) -> list[int]:
    try:
        order = [int(part) for part in text.split(",") if part.strip() != ""]
    except ValueError:
        raise ReproError(f"--order must be a comma-separated list of integers, got {text!r}") from None
    if sorted(order) != list(range(size)):
        raise ReproError(f"--order must be a permutation of 0..{size - 1}, got {order!r}")
    return order


def _command_simulate(args: argparse.Namespace) -> int:
    problem = load_problem(args.problem)
    if args.order:
        order = _parse_order(args.order, problem.size)
    else:
        order = list(optimize(problem, algorithm="branch_and_bound").order)
    report = simulate_plan(
        problem,
        order,
        SimulationConfig(tuple_count=args.tuples, block_size=args.block_size),
    )
    if args.json:
        payload = {
            "order": list(report.order),
            "predicted_cost": report.predicted_cost,
            "normalized_makespan": report.normalized_makespan,
            "relative_error": report.model_relative_error,
            "tuples_delivered": report.tuples_delivered,
            "makespan": report.makespan,
        }
        print(json.dumps(payload, indent=2))
    else:
        print(report.describe())
        print()
        print(report.to_table().to_markdown())
    return 0


def _command_plan(args: argparse.Namespace) -> int:
    from repro.serving import PlanService, PlanServiceConfig, response_to_dict

    if args.repeat < 1:
        raise ReproError(f"--repeat must be at least 1, got {args.repeat!r}")
    problem = load_problem(args.problem)
    config = PlanServiceConfig(
        budget_seconds=args.budget,
        cache_enabled=args.cached,
        stale_while_revalidate=args.cached,
        portfolio_backend=args.backend,
        mp_context=args.mp_context,
        kernel=args.kernel,
    )
    with PlanService(config) as service:
        responses = [service.submit(problem) for _ in range(args.repeat)]
        if args.json:
            print(json.dumps([response_to_dict(response) for response in responses], indent=2))
        else:
            for index, response in enumerate(responses):
                source = "cache" if response.cache_hit else "portfolio"
                print(
                    f"request {index}: cost={response.cost:.6g} via {source} "
                    f"({response.algorithm}), latency={response.latency_seconds * 1e3:.2f} ms"
                )
            print()
            print(f"plan: {' -> '.join(responses[-1].service_names)}")
            cache_stats = service.stats()["cache"]
            print(f"cache hit rate: {cache_stats['hit_rate']:.0%}")
            print(f"kernel: {service.active_kernel()} (requested {args.kernel})")
    return 0


def _wait_forever() -> None:  # pragma: no cover - interrupted, or patched in tests
    """Park the main thread behind a background server until Ctrl-C."""
    threading.Event().wait()


def _command_serve(args: argparse.Namespace) -> int:
    from repro.serving import PlanService, PlanServiceConfig, serve

    if args.shards < 1:
        raise ReproError(f"--shards must be at least 1, got {args.shards!r}")
    config = PlanServiceConfig(
        budget_seconds=args.budget,
        cache_capacity=args.cache_capacity,
        cache_ttl=args.ttl if args.ttl > 0 else None,
        portfolio_backend=args.backend,
        mp_context=args.mp_context,
        cache_store_dir=args.share_cache_dir,
        revalidation_backend=args.revalidation_backend,
        observability=args.observability,
        slow_request_seconds=args.slow_threshold,
        kernel=args.kernel,
    )
    if args.shards > 1:
        from repro.sharding import ShardRouter, ShardRouterConfig

        backend = ShardRouter(
            ShardRouterConfig(
                shards=args.shards,
                backend=args.shard_backend,
                service_config=config,
                shared_cache_dir=args.share_cache_dir,
            )
        )
        topology = f"{args.shards} {args.shard_backend} shards"
    else:
        backend = PlanService(config)
        topology = "1 service"
    with backend as service:
        try:
            if args.use_async:
                from repro.serving import serve_async

                front_end = serve_async(service, host=args.host, port=args.port)
                host, port = front_end.address
                # Process shards answer as event-loop futures (zero bridge
                # threads); in-proc services fall back to the bounded bridge.
                if front_end.server.native_async:
                    flavour = "native async shard path; "
                else:
                    flavour = "async front end; "
            else:
                front_end = serve(service, host=args.host, port=args.port)
                host, port = front_end.server_address[:2]
                flavour = ""
        except OSError as error:
            raise ReproError(
                f"cannot bind {args.host}:{args.port}: {error.strerror or error}"
            ) from error
        from repro.core.vector import resolve_kernel

        kernel = resolve_kernel(args.kernel if args.kernel != "auto" else None)
        print(
            f"plan service ({topology}, {kernel} kernel) listening on "
            f"http://{host}:{port} "
            f"({flavour}POST /plan, POST /plan/batch, GET /stats, GET /metrics)"
        )
        try:
            if args.use_async:
                _wait_forever()  # the event loop serves on its own thread
            else:
                # serve_forever runs on this thread, so when it returns (or
                # is interrupted) the accept loop is already down; draining
                # in-flight handlers is the graceful path's job.
                front_end.serve_forever()
        except KeyboardInterrupt:
            print("shutting down")
        finally:
            if args.use_async:
                front_end.close(timeout=args.graceful_timeout)
            else:
                front_end.close_gracefully(timeout=args.graceful_timeout)
    return 0


def _scrape_metrics(base_url: str) -> dict[str, dict[tuple[tuple[str, str], ...], float]]:
    """Fetch and parse ``GET /metrics`` of a running plan server."""
    import urllib.error
    import urllib.request

    from repro.obs import parse_prometheus_text

    url = base_url.rstrip("/") + "/metrics"
    try:
        with urllib.request.urlopen(url, timeout=5.0) as response:
            text = response.read().decode("utf-8")
    except (urllib.error.URLError, OSError, ValueError) as error:
        raise ReproError(f"cannot scrape {url}: {error}") from error
    return parse_prometheus_text(text)


def _top_snapshot(
    samples: dict[str, dict[tuple[tuple[str, str], ...], float]],
) -> dict[str, object]:
    """Collapse one scrape into the figures ``repro top`` renders."""
    from repro.obs import labelled

    def total(name: str) -> float:
        return sum(samples.get(name, {}).values())

    return {
        # A shard router's /metrics carries routing + HTTP series only (the
        # per-service counters live in the shard processes); absence is
        # recorded so the renderer can skip the line instead of showing 0.
        "has_service_counters": "repro_requests_answered_total" in samples,
        "answered": total("repro_requests_answered_total"),
        "by_source": labelled(samples.get("repro_requests_answered_total", {}), "source"),
        "rejected": total("repro_requests_rejected_total"),
        "failed": total("repro_requests_failed_total"),
        "http_requests": total("repro_http_requests_total"),
        "by_shard": labelled(samples.get("repro_router_requests_total", {}), "shard"),
        "kernel_evaluations": labelled(
            samples.get("repro_kernel_evaluations_total", {}), "kind"
        ),
    }


def _render_top(
    snapshot: dict[str, object],
    previous: dict[str, object] | None,
    interval: float,
    url: str,
    poll: int,
) -> str:
    """One human-readable ``repro top`` frame."""

    def rate(now: float, label: str, table: str = "") -> str:
        if previous is None:
            return ""
        if table:
            before = previous.get(table, {}).get(label, 0.0)  # type: ignore[union-attr]
        else:
            before = previous.get(label, 0.0)  # type: ignore[arg-type]
        return f"  (+{max(0.0, now - before) / interval:.1f}/s)"

    sources = ", ".join(
        f"{name}={int(value)}" for name, value in sorted(snapshot["by_source"].items())
    )
    lines = [f"repro top — {url}  (poll {poll})"]
    if snapshot.get("has_service_counters", True):
        lines.append(
            f"  requests: answered={int(snapshot['answered'])}"
            + (f" [{sources}]" if sources else "")
            + f"  rejected={int(snapshot['rejected'])}  failed={int(snapshot['failed'])}"
            + rate(snapshot["answered"], "answered")
        )
    lines.append(
        f"  http: {int(snapshot['http_requests'])} served"
        + rate(snapshot["http_requests"], "http_requests")
    )
    by_shard = snapshot["by_shard"]
    if by_shard:
        lines.append("  shard load (requests routed):")
        width = max(len(shard) for shard in by_shard)
        for shard, count in sorted(by_shard.items()):
            lines.append(
                f"    {shard:<{width}}  {int(count)}" + rate(count, shard, "by_shard")
            )
    kernel = snapshot["kernel_evaluations"]
    if kernel:
        lines.append(
            "  kernel evaluations: "
            + ", ".join(f"{kind}={int(count)}" for kind, count in sorted(kernel.items()))
        )
    return "\n".join(lines)


def _command_top(args: argparse.Namespace) -> int:
    import time

    if args.interval <= 0:
        raise ReproError(f"--interval must be positive, got {args.interval!r}")
    if args.iterations < 0:
        raise ReproError(f"--iterations must be >= 0, got {args.iterations!r}")
    previous: dict[str, object] | None = None
    poll = 0
    try:
        while True:
            poll += 1
            snapshot = _top_snapshot(_scrape_metrics(args.url))
            if args.json:
                print(json.dumps({"poll": poll, **snapshot}, sort_keys=True))
            else:
                print(_render_top(snapshot, previous, args.interval, args.url, poll))
            previous = snapshot
            if args.iterations and poll >= args.iterations:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0


def _command_scenarios(args: argparse.Namespace) -> int:
    scenarios = all_scenarios()
    if not args.name:
        print("available scenarios:")
        for name, problem in scenarios.items():
            print(f"  {name} ({problem.size} services)")
        return 0
    if args.name not in scenarios:
        raise ReproError(f"unknown scenario {args.name!r}; available: {sorted(scenarios)}")
    problem = scenarios[args.name]
    result = optimize(problem, algorithm="branch_and_bound")
    print(problem.describe())
    print()
    print(result.plan.describe())
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    experiment_id = args.experiment_id.upper()
    result = REGISTRY.run(experiment_id)
    print(result.to_markdown())
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    import importlib.util
    from pathlib import Path

    name = args.name
    if not name.startswith("bench_"):
        name = f"bench_{name}"
    path = Path(args.benchmarks_dir) / f"{name}.py"
    if not path.is_file():
        available = sorted(p.stem for p in Path(args.benchmarks_dir).glob("bench_*.py"))
        raise ReproError(
            f"no benchmark module at {path}; available: {', '.join(available) or '(none)'}"
        )
    spec = importlib.util.spec_from_file_location(name, path)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    # Register the module and its directory so it behaves like a normal
    # import: benchmarks that spawn worker processes pickle module-level
    # functions, which needs the parent's sys.modules entry to match and the
    # child (which inherits sys.path) to be able to re-import it by name.
    sys.modules[name] = module
    parent_dir = str(path.resolve().parent)
    if parent_dir not in sys.path:
        sys.path.insert(0, parent_dir)
    spec.loader.exec_module(module)
    if not hasattr(module, "main"):
        raise ReproError(f"{path} does not expose a main(argv) entry point")
    forwarded = list(args.bench_args)
    if forwarded and forwarded[0] == "--":
        forwarded = forwarded[1:]
    code = module.main(forwarded)
    return 0 if code is None else int(code)


def _command_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import Baseline, run_lint
    from repro.analysis.checkers import all_checkers

    root = Path.cwd()
    paths = [Path(path) for path in args.paths]
    missing = [str(path) for path in paths if not path.exists()]
    if missing:
        raise ReproError(f"no such path(s): {', '.join(missing)}")
    baseline_path = Path(args.baseline)
    try:
        baseline = Baseline.load(baseline_path)
    except (ValueError, json.JSONDecodeError) as error:
        raise ReproError(str(error)) from error
    try:
        report = run_lint(
            paths,
            root=root,
            checkers=all_checkers(),
            rules=args.rules,
            baseline=baseline,
        )
    except ValueError as error:
        raise ReproError(str(error)) from error

    if args.baseline_update:
        # Everything the run surfaced (new findings plus still-firing baseline
        # entries, with their reasons preserved) becomes the new baseline.
        survivors = report.findings + [finding for finding, _ in report.baselined]
        updated = Baseline.updated_from(survivors, baseline)
        updated.save(baseline_path)
        print(
            f"wrote {len(updated)} baseline entrie(s) to {baseline_path} "
            f"({len(report.findings)} new — justify their reasons before committing)"
        )
        return 0

    if args.output_format == "json":
        print(report.render_json())
    else:
        print(report.render_text())
    unjustified = baseline.unjustified()
    for entry in unjustified:
        print(
            f"baseline entry without justification: {entry.rule} {entry.path}: "
            f"{entry.message}",
            file=sys.stderr,
        )
    return 1 if (report.failed or unjustified) else 0


def _command_report(args: argparse.Namespace) -> int:
    from repro.experiments import generate_report, write_report

    if args.output:
        path = write_report(REGISTRY, args.output, quick=not args.full)
        print(f"wrote evaluation report to {path}")
    else:
        print(generate_report(REGISTRY, quick=not args.full))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    handlers = {
        "generate": _command_generate,
        "optimize": _command_optimize,
        "simulate": _command_simulate,
        "scenarios": _command_scenarios,
        "experiment": _command_experiment,
        "plan": _command_plan,
        "serve": _command_serve,
        "top": _command_top,
        "bench": _command_bench,
        "lint": _command_lint,
        "report": _command_report,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    raise SystemExit(main())

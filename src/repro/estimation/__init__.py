"""Parameter estimation: service statistics, problem calibration, adaptive re-optimization."""

from repro.estimation.adaptive import (
    AdaptiveReoptimizer,
    ParameterDrift,
    ReoptimizationDecision,
    compute_drift,
)
from repro.estimation.calibration import LinkObservation, ProblemCalibrator, observe_simulation
from repro.estimation.sampling import (
    OnlineStatistics,
    SelectivityEstimate,
    ServiceObserver,
    estimate_selectivity,
)

__all__ = [
    "AdaptiveReoptimizer",
    "LinkObservation",
    "OnlineStatistics",
    "ParameterDrift",
    "ProblemCalibrator",
    "ReoptimizationDecision",
    "SelectivityEstimate",
    "ServiceObserver",
    "compute_drift",
    "estimate_selectivity",
    "observe_simulation",
]

"""Adaptive re-optimization.

Service costs, selectivities and link characteristics drift while a
long-running query executes (load spikes, data-distribution changes, network
congestion).  The announcement's setting is static, but any deployment of the
algorithm runs it inside a monitor → re-estimate → re-optimize loop.  This
module provides that loop's decision logic:

* :func:`compute_drift` quantifies how far freshly estimated parameters have
  moved from the ones the current plan was optimized for, and
* :class:`AdaptiveReoptimizer` decides when the drift is large enough to pay
  for a re-optimization and whether the newly optimal plan is enough of an
  improvement to actually switch (switching has a cost: in-flight tuples have
  to be drained or re-routed).

The controller is deliberately framework-free: callers feed it re-estimated
:class:`~repro.core.problem.OrderingProblem` instances (e.g. produced by
:class:`repro.estimation.calibration.ProblemCalibrator` from execution traces)
and act on the returned decision.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.optimizer import optimize
from repro.core.problem import OrderingProblem
from repro.exceptions import EstimationError

__all__ = ["ParameterDrift", "ReoptimizationDecision", "AdaptiveReoptimizer", "compute_drift"]


def _relative_change(old: float, new: float) -> float:
    """Relative change between two non-negative parameters (0 when both are ~0)."""
    scale = max(abs(old), abs(new))
    if scale < 1e-12:
        return 0.0
    return abs(new - old) / scale


@dataclass(frozen=True)
class ParameterDrift:
    """How far re-estimated parameters moved from the currently assumed ones."""

    max_cost_drift: float
    """Largest relative change of any service's processing cost."""

    max_selectivity_drift: float
    """Largest relative change of any service's selectivity."""

    max_transfer_drift: float
    """Largest relative change of any pairwise transfer cost."""

    @property
    def overall(self) -> float:
        """The largest of the three component drifts."""
        return max(self.max_cost_drift, self.max_selectivity_drift, self.max_transfer_drift)

    def exceeds(self, threshold: float) -> bool:
        """Whether any component drift is beyond ``threshold``.

        This is the trigger condition shared by the adaptive re-optimization
        loop and the plan cache's drift-based revalidation.
        """
        return self.overall > threshold


def compute_drift(current: OrderingProblem, observed: OrderingProblem) -> ParameterDrift:
    """Compare two problems describing the same services (matched by name)."""
    if sorted(s.name for s in current.services) != sorted(s.name for s in observed.services):
        raise EstimationError(
            "cannot compute drift: the two problems describe different service sets"
        )
    index_map = [observed.service_index(service.name) for service in current.services]

    cost_drift = 0.0
    selectivity_drift = 0.0
    for current_index, observed_index in enumerate(index_map):
        cost_drift = max(
            cost_drift,
            _relative_change(current.costs[current_index], observed.costs[observed_index]),
        )
        selectivity_drift = max(
            selectivity_drift,
            _relative_change(
                current.selectivities[current_index], observed.selectivities[observed_index]
            ),
        )

    transfer_drift = 0.0
    for i in range(current.size):
        for j in range(current.size):
            if i == j:
                continue
            transfer_drift = max(
                transfer_drift,
                _relative_change(
                    current.transfer_cost(i, j),
                    observed.transfer_cost(index_map[i], index_map[j]),
                ),
            )
    return ParameterDrift(
        max_cost_drift=cost_drift,
        max_selectivity_drift=selectivity_drift,
        max_transfer_drift=transfer_drift,
    )


@dataclass(frozen=True)
class ReoptimizationDecision:
    """The outcome of one adaptation step."""

    reoptimized: bool
    """Whether a re-optimization was run at all (drift exceeded the threshold)."""

    switched: bool
    """Whether the controller adopted a new plan."""

    drift: ParameterDrift
    """The measured parameter drift that triggered (or did not trigger) the step."""

    current_plan_cost: float
    """Cost of the previously adopted plan under the *observed* parameters."""

    best_plan_cost: float
    """Cost of the best plan under the observed parameters (equals
    ``current_plan_cost`` when no re-optimization was run)."""

    @property
    def improvement(self) -> float:
        """Relative improvement the best plan offers over the current one."""
        if self.current_plan_cost <= 0:
            return 0.0
        return (self.current_plan_cost - self.best_plan_cost) / self.current_plan_cost


class AdaptiveReoptimizer:
    """Decides when to re-optimize a running pipeline and whether to switch plans."""

    def __init__(
        self,
        problem: OrderingProblem,
        drift_threshold: float = 0.05,
        improvement_threshold: float = 0.02,
        algorithm: str = "branch_and_bound",
    ) -> None:
        if drift_threshold < 0:
            raise ValueError("drift_threshold must be non-negative")
        if improvement_threshold < 0:
            raise ValueError("improvement_threshold must be non-negative")
        self.drift_threshold = drift_threshold
        self.improvement_threshold = improvement_threshold
        self.algorithm = algorithm
        self._problem = problem
        self._plan_order = tuple(optimize(problem, algorithm=algorithm).order)
        self._adaptations = 0

    # -- state ------------------------------------------------------------------

    @property
    def problem(self) -> OrderingProblem:
        """The problem the current plan was optimized for."""
        return self._problem

    @property
    def current_order(self) -> tuple[int, ...]:
        """The currently adopted plan, as indices of :attr:`problem`."""
        return self._plan_order

    @property
    def current_plan_names(self) -> tuple[str, ...]:
        """The currently adopted plan, as service names (stable across re-estimates)."""
        return tuple(self._problem.service(index).name for index in self._plan_order)

    @property
    def adaptations(self) -> int:
        """Number of times the controller switched plans."""
        return self._adaptations

    # -- adaptation ---------------------------------------------------------------

    def update(self, observed: OrderingProblem) -> ReoptimizationDecision:
        """Feed freshly estimated parameters and decide whether to switch plans.

        ``observed`` must describe the same services (matched by name); its
        indices may differ from the current problem's.
        """
        drift = compute_drift(self._problem, observed)
        observed_order = tuple(
            observed.service_index(name) for name in self.current_plan_names
        )
        current_cost = observed.cost(observed_order)

        if drift.overall < self.drift_threshold:
            return ReoptimizationDecision(
                reoptimized=False,
                switched=False,
                drift=drift,
                current_plan_cost=current_cost,
                best_plan_cost=current_cost,
            )

        best = optimize(observed, algorithm=self.algorithm)
        switched = (
            current_cost > 0
            and (current_cost - best.cost) / current_cost >= self.improvement_threshold
        )
        if switched:
            self._adaptations += 1
        # Whether or not we switch, the observed parameters become the new baseline,
        # so subsequent drift is measured against what we now believe to be true.
        self._problem = observed
        self._plan_order = best.plan.order if switched else observed_order
        return ReoptimizationDecision(
            reoptimized=True,
            switched=switched,
            drift=drift,
            current_plan_cost=current_cost,
            best_plan_cost=best.cost,
        )

"""Estimating service parameters from observed executions.

The optimizer needs ``c_i``, ``σ_i`` and ``t_{i,j}``; a deployment obtains
them by observing (or probing) the services.  This module provides the
statistical plumbing:

* :class:`OnlineStatistics` — numerically stable streaming mean/variance
  (Welford's algorithm), used for per-tuple processing times,
* :func:`estimate_selectivity` — selectivity estimate with a normal-
  approximation confidence interval from input/output counts,
* :class:`ServiceObserver` — accumulates per-call observations of one service
  and produces point estimates plus uncertainty.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import EstimationError

__all__ = [
    "OnlineStatistics",
    "SelectivityEstimate",
    "estimate_selectivity",
    "ServiceObserver",
]


class OnlineStatistics:
    """Streaming mean / variance / extrema (Welford's algorithm)."""

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._minimum = math.inf
        self._maximum = -math.inf

    def add(self, value: float) -> None:
        """Incorporate one observation."""
        value = float(value)
        if not math.isfinite(value):
            raise EstimationError(f"observations must be finite, got {value!r}")
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        self._minimum = min(self._minimum, value)
        self._maximum = max(self._maximum, value)

    def extend(self, values: list[float] | tuple[float, ...]) -> None:
        """Incorporate several observations."""
        for value in values:
            self.add(value)

    @property
    def count(self) -> int:
        """Number of observations seen."""
        return self._count

    @property
    def mean(self) -> float:
        """Sample mean (0 before any observation)."""
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0 with fewer than two observations)."""
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def stddev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def standard_error(self) -> float:
        """Standard error of the mean."""
        if self._count == 0:
            return 0.0
        return self.stddev / math.sqrt(self._count)

    @property
    def minimum(self) -> float:
        """Smallest observation (``inf`` before any observation)."""
        return self._minimum

    @property
    def maximum(self) -> float:
        """Largest observation (``-inf`` before any observation)."""
        return self._maximum

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation confidence interval of the mean."""
        margin = z * self.standard_error
        return (self.mean - margin, self.mean + margin)


@dataclass(frozen=True)
class SelectivityEstimate:
    """A selectivity point estimate with its confidence interval."""

    value: float
    lower: float
    upper: float
    inputs: int
    outputs: int

    @property
    def is_selective(self) -> bool:
        """Whether the service appears to filter tuples (σ <= 1)."""
        return self.value <= 1.0


def estimate_selectivity(inputs: int, outputs: int, z: float = 1.96) -> SelectivityEstimate:
    """Estimate σ = outputs / inputs with a normal-approximation interval.

    For selective services the per-tuple survival is Bernoulli(σ) and the
    binomial standard error applies; for proliferative services the same
    ratio-of-counts estimate is used with a Poisson-style error on the output
    count.  Both collapse to the plain ratio when counts are large.
    """
    if inputs <= 0:
        raise EstimationError("cannot estimate selectivity before any input tuple was observed")
    if outputs < 0:
        raise EstimationError("the output count cannot be negative")
    value = outputs / inputs
    if value <= 1.0:
        spread = math.sqrt(max(value * (1.0 - value), 0.0) / inputs)
    else:
        spread = math.sqrt(outputs) / inputs
    margin = z * spread
    return SelectivityEstimate(
        value=value,
        lower=max(value - margin, 0.0),
        upper=value + margin,
        inputs=inputs,
        outputs=outputs,
    )


class ServiceObserver:
    """Accumulates observations of one service and produces parameter estimates."""

    def __init__(self, name: str) -> None:
        if not name:
            raise EstimationError("a service observer needs a service name")
        self.name = name
        self._processing_times = OnlineStatistics()
        self._inputs = 0
        self._outputs = 0

    def record_call(self, processing_time: float, inputs: int = 1, outputs: int = 1) -> None:
        """Record one observed invocation (time for ``inputs`` tuples, ``outputs`` emitted)."""
        if processing_time < 0:
            raise EstimationError("processing_time must be non-negative")
        if inputs <= 0:
            raise EstimationError("inputs must be positive")
        if outputs < 0:
            raise EstimationError("outputs must be non-negative")
        # Store the per-tuple time so heterogeneous batch sizes can be mixed.
        self._processing_times.add(processing_time / inputs)
        self._inputs += inputs
        self._outputs += outputs

    @property
    def observations(self) -> int:
        """Number of recorded invocations."""
        return self._processing_times.count

    def cost_estimate(self) -> float:
        """Estimated per-tuple processing cost ``c_i``."""
        if self._processing_times.count == 0:
            raise EstimationError(f"no observations recorded for service {self.name!r}")
        return self._processing_times.mean

    def cost_confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Confidence interval of the per-tuple cost estimate."""
        return self._processing_times.confidence_interval(z)

    def selectivity_estimate(self, z: float = 1.96) -> SelectivityEstimate:
        """Estimated selectivity ``σ_i`` with its confidence interval."""
        return estimate_selectivity(self._inputs, self._outputs, z)

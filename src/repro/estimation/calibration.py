"""Calibrating a full ordering problem from observations.

:class:`ProblemCalibrator` collects

* per-service invocation observations (processing time, in/out counts) and
* per-link block-transfer measurements (block size, elapsed time)

and assembles the :class:`repro.core.problem.OrderingProblem` the optimizer
needs.  :func:`observe_simulation` produces such observations from a simulated
run, closing the loop estimation → optimization → execution that a real
deployment would run continuously.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cost_model import CommunicationCostMatrix
from repro.core.problem import OrderingProblem
from repro.core.service import Service
from repro.estimation.sampling import OnlineStatistics, ServiceObserver
from repro.exceptions import EstimationError
from repro.simulation.metrics import SimulationReport

__all__ = ["LinkObservation", "ProblemCalibrator", "observe_simulation"]


@dataclass(frozen=True)
class LinkObservation:
    """One measured block transfer between two services."""

    source: str
    destination: str
    block_size: int
    elapsed: float

    def per_tuple_cost(self) -> float:
        """The per-tuple transfer cost implied by this measurement."""
        if self.block_size <= 0:
            raise EstimationError("block_size must be positive")
        if self.elapsed < 0:
            raise EstimationError("elapsed must be non-negative")
        return self.elapsed / self.block_size


class ProblemCalibrator:
    """Builds an :class:`OrderingProblem` from service and link observations."""

    def __init__(self) -> None:
        self._observers: dict[str, ServiceObserver] = {}
        self._hosts: dict[str, str | None] = {}
        self._links: dict[tuple[str, str], OnlineStatistics] = {}

    # -- recording ------------------------------------------------------------

    def observer(self, service_name: str, host: str | None = None) -> ServiceObserver:
        """The (lazily created) observer of ``service_name``."""
        if service_name not in self._observers:
            self._observers[service_name] = ServiceObserver(service_name)
            self._hosts[service_name] = host
        elif host is not None:
            self._hosts[service_name] = host
        return self._observers[service_name]

    def record_service_call(
        self,
        service_name: str,
        processing_time: float,
        inputs: int = 1,
        outputs: int = 1,
        host: str | None = None,
    ) -> None:
        """Record one invocation of ``service_name``."""
        self.observer(service_name, host).record_call(processing_time, inputs, outputs)

    def record_transfer(self, observation: LinkObservation) -> None:
        """Record one block-transfer measurement."""
        key = (observation.source, observation.destination)
        self._links.setdefault(key, OnlineStatistics()).add(observation.per_tuple_cost())

    # -- assembly ---------------------------------------------------------------

    def service_names(self) -> list[str]:
        """Names of every observed service, in first-observation order."""
        return list(self._observers)

    def build_problem(
        self, default_transfer: float | None = None, name: str = "calibrated"
    ) -> OrderingProblem:
        """Assemble the calibrated ordering problem.

        ``default_transfer`` fills in service pairs without measurements; when
        it is ``None`` a missing pair raises :class:`EstimationError` (so silent
        mis-calibration cannot happen).
        """
        names = self.service_names()
        if not names:
            raise EstimationError("no service observations were recorded")
        services = []
        for service_name in names:
            observer = self._observers[service_name]
            services.append(
                Service(
                    name=service_name,
                    cost=observer.cost_estimate(),
                    selectivity=max(observer.selectivity_estimate().value, 1e-9),
                    host=self._hosts.get(service_name),
                )
            )
        index_of = {service_name: index for index, service_name in enumerate(names)}
        size = len(names)
        rows = [[0.0] * size for _ in range(size)]
        for i, source in enumerate(names):
            for j, destination in enumerate(names):
                if i == j:
                    continue
                stats = self._links.get((source, destination))
                if stats is not None and stats.count > 0:
                    rows[i][j] = stats.mean
                elif default_transfer is not None:
                    rows[i][j] = default_transfer
                else:
                    raise EstimationError(
                        f"no transfer measurements between {source!r} and {destination!r} "
                        "and no default_transfer was given"
                    )
        del index_of  # names double as indices; kept for readability above
        return OrderingProblem(services, CommunicationCostMatrix(rows), name=name)


def observe_simulation(
    calibrator: ProblemCalibrator, problem: OrderingProblem, report: SimulationReport
) -> None:
    """Feed the per-service activity of a simulated run into ``calibrator``.

    Processing time per call and in/out counts come straight from the
    simulation report; transfer costs are recovered from each stage's shipping
    time divided by the tuples it shipped.
    """
    order = report.order
    for metrics in report.services:
        service = problem.service(metrics.service_index)
        if metrics.tuples_in > 0:
            calibrator.record_service_call(
                service.name,
                processing_time=metrics.processing_time,
                inputs=metrics.tuples_in,
                outputs=metrics.tuples_out,
                host=service.host,
            )
        if metrics.tuples_out > 0 and metrics.position + 1 < len(order):
            downstream = problem.service(order[metrics.position + 1])
            calibrator.record_transfer(
                LinkObservation(
                    source=service.name,
                    destination=downstream.name,
                    block_size=metrics.tuples_out,
                    elapsed=metrics.transfer_time,
                )
            )

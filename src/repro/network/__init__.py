"""Network substrate: topologies, link models and communication-cost matrices."""

from repro.network.latency import LinkModel, per_tuple_cost
from repro.network.matrix import (
    clustered_matrix,
    interpolate_to_uniform,
    matrix_from_topology,
    random_matrix,
    random_placement,
)
from repro.network.topology import (
    Host,
    NetworkTopology,
    clustered_topology,
    euclidean_topology,
    random_topology,
    uniform_topology,
)

__all__ = [
    "Host",
    "LinkModel",
    "NetworkTopology",
    "clustered_matrix",
    "clustered_topology",
    "euclidean_topology",
    "interpolate_to_uniform",
    "matrix_from_topology",
    "per_tuple_cost",
    "random_matrix",
    "random_placement",
    "random_topology",
    "uniform_topology",
]

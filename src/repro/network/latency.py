"""Link-level cost model: from latency/bandwidth to per-tuple transfer costs.

The optimizer works with per-tuple transfer costs ``t_{i,j}``.  In a real
deployment tuples travel in *blocks* (the paper notes that ``t_{i,j}`` is then
the block transfer cost divided by the block size).  :class:`LinkModel`
captures a link's latency and bandwidth and converts a (tuple size, block
size) pair into the per-tuple cost the optimizer needs, which is also what the
calibration code in :mod:`repro.estimation` reconstructs from measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import require_non_negative, require_positive

__all__ = ["LinkModel", "per_tuple_cost"]


@dataclass(frozen=True)
class LinkModel:
    """A directed network link between two hosts.

    Parameters
    ----------
    latency:
        One-way latency per transfer (seconds per block, independent of size).
    bandwidth:
        Sustained throughput in bytes per second.  ``float("inf")`` models a
        link whose cost is pure latency (e.g. co-located services).
    """

    latency: float
    bandwidth: float

    def __post_init__(self) -> None:
        require_non_negative(self.latency, "latency")
        # Infinite bandwidth is explicitly allowed (pure-latency links, co-located services).
        if self.bandwidth != float("inf"):
            require_positive(self.bandwidth, "bandwidth")

    def block_cost(self, tuple_size: float, block_size: int) -> float:
        """Time to ship one block of ``block_size`` tuples of ``tuple_size`` bytes."""
        require_positive(tuple_size, "tuple_size")
        if block_size < 1:
            raise ValueError("block_size must be at least 1")
        payload = tuple_size * block_size
        transmission = 0.0 if self.bandwidth == float("inf") else payload / self.bandwidth
        return self.latency + transmission

    def per_tuple_cost(self, tuple_size: float, block_size: int = 1) -> float:
        """Average per-tuple transfer cost when tuples travel in blocks.

        This is exactly the quantity the paper plugs into Eq. 1: the block
        transfer cost divided by the number of tuples in the block.  Larger
        blocks amortise the latency component.
        """
        return self.block_cost(tuple_size, block_size) / block_size


def per_tuple_cost(
    latency: float, bandwidth: float, tuple_size: float, block_size: int = 1
) -> float:
    """Functional shorthand for :meth:`LinkModel.per_tuple_cost`."""
    return LinkModel(latency=latency, bandwidth=bandwidth).per_tuple_cost(tuple_size, block_size)

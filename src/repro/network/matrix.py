"""Building communication-cost matrices from topologies and placements.

The optimizer consumes a :class:`repro.core.cost_model.CommunicationCostMatrix`
of per-tuple costs ``t_{i,j}``.  This module derives such matrices from a
:class:`repro.network.topology.NetworkTopology` and a *placement* (which host
each service runs on), and offers the interpolation helper used by experiment
E4 to sweep smoothly from a uniform (centralized-looking) network to a fully
heterogeneous one.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.cost_model import CommunicationCostMatrix
from repro.network.topology import NetworkTopology
from repro.utils.rng import derive_rng
from repro.utils.validation import require_positive, require_probability

__all__ = [
    "matrix_from_topology",
    "random_placement",
    "interpolate_to_uniform",
    "random_matrix",
    "clustered_matrix",
]


def matrix_from_topology(
    topology: NetworkTopology,
    placement: Sequence[str],
    tuple_size: float = 1024.0,
    block_size: int = 1,
) -> CommunicationCostMatrix:
    """Per-tuple cost matrix for services placed on ``placement[i]`` hosts.

    Services placed on the same host communicate for free (in-memory handoff).
    """
    for host in placement:
        topology.host(host)  # raises KeyError for unknown hosts
    size = len(placement)
    rows = [
        [
            0.0
            if i == j
            else topology.per_tuple_cost(placement[i], placement[j], tuple_size, block_size)
            for j in range(size)
        ]
        for i in range(size)
    ]
    return CommunicationCostMatrix(rows)


def random_placement(
    topology: NetworkTopology, service_count: int, seed: int = 0, distinct: bool = True
) -> list[str]:
    """Assign ``service_count`` services to hosts of ``topology``.

    With ``distinct=True`` (the paper's setting: one service per host) the
    topology must have at least as many hosts as services.
    """
    require_positive(service_count, "service_count")
    rng = derive_rng(seed, "placement")
    names = topology.host_names()
    if distinct:
        if service_count > len(names):
            raise ValueError(
                f"cannot place {service_count} services on {len(names)} hosts distinctly"
            )
        return rng.sample(names, service_count)
    return [rng.choice(names) for _ in range(service_count)]


def interpolate_to_uniform(
    matrix: CommunicationCostMatrix, heterogeneity: float
) -> CommunicationCostMatrix:
    """Blend ``matrix`` with its uniform (mean-valued) counterpart.

    ``heterogeneity = 0`` returns the uniform matrix with the same mean,
    ``heterogeneity = 1`` returns ``matrix`` unchanged; intermediate values
    interpolate linearly.  The mean per-tuple cost is preserved across the
    sweep, so experiment E4 isolates the effect of *heterogeneity* from the
    effect of overall network speed.
    """
    heterogeneity = require_probability(heterogeneity, "heterogeneity")
    mean = matrix.mean_cost()
    size = matrix.size
    rows = [
        [
            0.0
            if i == j
            else heterogeneity * matrix.cost(i, j) + (1.0 - heterogeneity) * mean
            for j in range(size)
        ]
        for i in range(size)
    ]
    return CommunicationCostMatrix(rows)


def random_matrix(
    size: int,
    seed: int = 0,
    low: float = 0.0,
    high: float = 1.0,
    symmetric: bool = True,
) -> CommunicationCostMatrix:
    """A matrix of i.i.d. uniform per-tuple costs (convenience for tests/experiments)."""
    require_positive(size, "size")
    if low < 0 or high < low:
        raise ValueError(f"invalid cost range [{low}, {high}]")
    rng = derive_rng(seed, "random_matrix")
    rows = [[0.0] * size for _ in range(size)]
    for i in range(size):
        for j in range(size):
            if i == j:
                continue
            if symmetric and j < i:
                rows[i][j] = rows[j][i]
            else:
                rows[i][j] = rng.uniform(low, high)
    return CommunicationCostMatrix(rows)


def clustered_matrix(
    size: int,
    cluster_count: int = 2,
    seed: int = 0,
    intra_cost: float = 0.05,
    inter_cost: float = 1.0,
    jitter: float = 0.2,
) -> CommunicationCostMatrix:
    """A per-tuple cost matrix with a LAN/WAN cluster structure.

    Services are assigned round-robin to ``cluster_count`` clusters; costs
    within a cluster are around ``intra_cost`` and across clusters around
    ``inter_cost``, each perturbed multiplicatively by up to ``jitter``.
    """
    require_positive(size, "size")
    require_positive(cluster_count, "cluster_count")
    rng = derive_rng(seed, "clustered_matrix")
    cluster_of = [index % cluster_count for index in range(size)]
    rows = [[0.0] * size for _ in range(size)]
    for i in range(size):
        for j in range(size):
            if i == j:
                continue
            nominal = intra_cost if cluster_of[i] == cluster_of[j] else inter_cost
            factor = 1.0 + jitter * (2.0 * rng.random() - 1.0)
            rows[i][j] = max(nominal * factor, 0.0)
    return CommunicationCostMatrix(rows)

"""Synthetic network topologies hosting the services.

The paper's setting places every service on a different host; services ship
tuples directly to each other, so the per-pair transfer costs reflect the
network distance between their hosts.  This module provides the topology
generators the experiments use:

* :func:`uniform_topology` — every pair of hosts has the same link (the
  centralized special case of Srivastava et al.),
* :func:`random_topology` — i.i.d. random link latencies (unstructured
  heterogeneity),
* :func:`euclidean_topology` — hosts embedded in the unit square, latency
  proportional to Euclidean distance (a metric, possibly triangle-inequality
  respecting cost structure),
* :func:`clustered_topology` — hosts grouped into data centres: cheap
  intra-cluster links, expensive inter-cluster (WAN) links.  This is the
  regime where decentralized-aware ordering pays off most (experiment E4).

Each generator returns a :class:`NetworkTopology`, which can be turned into a
:class:`repro.core.cost_model.CommunicationCostMatrix` for a given service
placement via :mod:`repro.network.matrix`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.network.latency import LinkModel
from repro.utils.rng import derive_rng
from repro.utils.validation import require_non_negative, require_positive

__all__ = [
    "Host",
    "NetworkTopology",
    "uniform_topology",
    "random_topology",
    "euclidean_topology",
    "clustered_topology",
]


@dataclass(frozen=True)
class Host:
    """A machine that can host one or more services."""

    name: str
    position: tuple[float, float] | None = None
    """Optional 2-D coordinates (used by the Euclidean generator)."""

    cluster: str | None = None
    """Optional cluster/data-centre label (used by the clustered generator)."""


@dataclass
class NetworkTopology:
    """A set of hosts plus a directed link model for every ordered host pair."""

    hosts: list[Host]
    links: dict[tuple[str, str], LinkModel] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [host.name for host in self.hosts]
        if len(set(names)) != len(names):
            raise ValueError(f"host names must be unique, got {names!r}")

    @property
    def size(self) -> int:
        """Number of hosts."""
        return len(self.hosts)

    def host_names(self) -> list[str]:
        """Host names in declaration order."""
        return [host.name for host in self.hosts]

    def host(self, name: str) -> Host:
        """The host named ``name``."""
        for host in self.hosts:
            if host.name == name:
                return host
        raise KeyError(f"unknown host {name!r}")

    def link(self, source: str, destination: str) -> LinkModel:
        """The link from ``source`` to ``destination`` (zero-cost for co-located)."""
        if source == destination:
            return LinkModel(latency=0.0, bandwidth=float("inf"))
        try:
            return self.links[(source, destination)]
        except KeyError:
            raise KeyError(f"no link defined from {source!r} to {destination!r}") from None

    def set_link(self, source: str, destination: str, link: LinkModel, symmetric: bool = False) -> None:
        """Define (or overwrite) the link from ``source`` to ``destination``."""
        if source == destination:
            raise ValueError("links between a host and itself are implicit and cost nothing")
        self.links[(source, destination)] = link
        if symmetric:
            self.links[(destination, source)] = link

    def per_tuple_cost(
        self, source: str, destination: str, tuple_size: float, block_size: int = 1
    ) -> float:
        """Per-tuple transfer cost between two hosts under the given shipping granularity."""
        if source == destination:
            return 0.0
        return self.link(source, destination).per_tuple_cost(tuple_size, block_size)

    def describe(self) -> str:
        """Human-readable summary used by examples."""
        lines = [f"NetworkTopology with {self.size} hosts:"]
        for host in self.hosts:
            cluster = f" [{host.cluster}]" if host.cluster else ""
            lines.append(f"  {host.name}{cluster}")
        return "\n".join(lines)


def _host_names(count: int, prefix: str) -> list[str]:
    return [f"{prefix}{index}" for index in range(count)]


def uniform_topology(
    host_count: int,
    latency: float = 0.01,
    bandwidth: float = 1e7,
    prefix: str = "host",
) -> NetworkTopology:
    """Every ordered pair of hosts gets an identical link."""
    require_positive(host_count, "host_count")
    hosts = [Host(name) for name in _host_names(host_count, prefix)]
    topology = NetworkTopology(hosts)
    link = LinkModel(latency=latency, bandwidth=bandwidth)
    for source in topology.host_names():
        for destination in topology.host_names():
            if source != destination:
                topology.set_link(source, destination, link)
    return topology


def random_topology(
    host_count: int,
    seed: int = 0,
    latency_range: tuple[float, float] = (0.001, 0.1),
    bandwidth_range: tuple[float, float] = (1e6, 1e8),
    symmetric: bool = True,
    prefix: str = "host",
) -> NetworkTopology:
    """I.i.d. random latencies/bandwidths per host pair (unstructured heterogeneity)."""
    require_positive(host_count, "host_count")
    low, high = latency_range
    require_non_negative(low, "latency_range[0]")
    require_positive(high, "latency_range[1]")
    rng = derive_rng(seed, "random_topology")
    hosts = [Host(name) for name in _host_names(host_count, prefix)]
    topology = NetworkTopology(hosts)
    names = topology.host_names()
    for i, source in enumerate(names):
        for j, destination in enumerate(names):
            if i == j:
                continue
            if symmetric and j < i:
                continue
            link = LinkModel(
                latency=rng.uniform(low, high),
                bandwidth=rng.uniform(*bandwidth_range),
            )
            topology.set_link(source, destination, link, symmetric=symmetric)
    return topology


def euclidean_topology(
    host_count: int,
    seed: int = 0,
    latency_per_unit: float = 0.05,
    base_latency: float = 0.001,
    bandwidth: float = 1e7,
    prefix: str = "host",
) -> NetworkTopology:
    """Hosts placed uniformly in the unit square; latency grows with distance."""
    require_positive(host_count, "host_count")
    rng = derive_rng(seed, "euclidean_topology")
    hosts = [
        Host(name, position=(rng.random(), rng.random()))
        for name in _host_names(host_count, prefix)
    ]
    topology = NetworkTopology(hosts)
    for source in hosts:
        for destination in hosts:
            if source.name == destination.name:
                continue
            assert source.position is not None and destination.position is not None
            distance = math.dist(source.position, destination.position)
            topology.set_link(
                source.name,
                destination.name,
                LinkModel(latency=base_latency + latency_per_unit * distance, bandwidth=bandwidth),
            )
    return topology


def clustered_topology(
    cluster_count: int,
    hosts_per_cluster: int,
    seed: int = 0,
    intra_latency: float = 0.001,
    inter_latency: float = 0.05,
    latency_jitter: float = 0.2,
    intra_bandwidth: float = 1e9,
    inter_bandwidth: float = 1e7,
    prefix: str = "host",
) -> NetworkTopology:
    """Hosts grouped into data centres (LAN inside, WAN across).

    ``latency_jitter`` is the relative spread applied multiplicatively to each
    link's nominal latency, so that links within a class are not perfectly
    identical (as in any real deployment).
    """
    require_positive(cluster_count, "cluster_count")
    require_positive(hosts_per_cluster, "hosts_per_cluster")
    rng = derive_rng(seed, "clustered_topology")
    hosts: list[Host] = []
    for cluster_index in range(cluster_count):
        cluster = f"dc{cluster_index}"
        for host_index in range(hosts_per_cluster):
            hosts.append(Host(f"{prefix}{cluster_index}_{host_index}", cluster=cluster))
    topology = NetworkTopology(hosts)
    for source in hosts:
        for destination in hosts:
            if source.name == destination.name:
                continue
            same_cluster = source.cluster == destination.cluster
            nominal = intra_latency if same_cluster else inter_latency
            bandwidth = intra_bandwidth if same_cluster else inter_bandwidth
            jitter = 1.0 + latency_jitter * (2.0 * rng.random() - 1.0)
            topology.set_link(
                source.name,
                destination.name,
                LinkModel(latency=max(nominal * jitter, 1e-9), bandwidth=bandwidth),
            )
    return topology

"""JSON (de)serialization of problems, plans and results.

A deployment needs to move ordering problems between the component that
estimates parameters, the optimizer, and the nodes that execute the
choreography; the command-line interface (:mod:`repro.cli`) and the examples
use these helpers to read and write problems as plain JSON documents.

The document format is intentionally explicit and versioned::

    {
      "format": "repro/ordering-problem",
      "version": 1,
      "name": "credit-card-screening",
      "services": [{"name": ..., "cost": ..., "selectivity": ..., "host": ..., "threads": ...}],
      "transfer": [[0.0, ...], ...],
      "precedence": [[before, after], ...],
      "sink_transfer": [...] | null
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.cost_model import CommunicationCostMatrix
from repro.core.plan import Plan
from repro.core.precedence import PrecedenceGraph
from repro.core.problem import OrderingProblem
from repro.core.result import OptimizationResult
from repro.core.service import Service
from repro.exceptions import InvalidProblemError

__all__ = [
    "PROBLEM_FORMAT",
    "PROBLEM_FORMAT_VERSION",
    "PROBLEM_WIRE_VERSION",
    "problem_to_dict",
    "problem_from_dict",
    "problem_to_wire",
    "problem_from_wire",
    "save_problem",
    "load_problem",
    "plan_to_dict",
    "result_to_dict",
]

PROBLEM_FORMAT = "repro/ordering-problem"
"""Identifier stored in the ``format`` field of every problem document."""

PROBLEM_FORMAT_VERSION = 1
"""Current version of the problem document format."""


def problem_to_dict(problem: OrderingProblem) -> dict[str, Any]:
    """Serialise ``problem`` into a JSON-compatible dictionary."""
    return {
        "format": PROBLEM_FORMAT,
        "version": PROBLEM_FORMAT_VERSION,
        "name": problem.name,
        "services": [
            {
                "name": service.name,
                "cost": service.cost,
                "selectivity": service.selectivity,
                "host": service.host,
                "threads": service.threads,
            }
            for service in problem.services
        ],
        "transfer": problem.transfer.as_lists(),
        "precedence": [list(edge) for edge in problem.precedence.edges()]
        if problem.precedence is not None
        else [],
        "sink_transfer": list(problem.sink_transfer) if problem.sink_transfer is not None else None,
    }


def problem_from_dict(document: dict[str, Any]) -> OrderingProblem:
    """Reconstruct an :class:`OrderingProblem` from a dictionary.

    Raises :class:`InvalidProblemError` with a pointed message when the
    document is malformed or has an unsupported format/version.
    """
    if not isinstance(document, dict):
        raise InvalidProblemError(f"expected a JSON object, got {type(document).__name__}")
    format_name = document.get("format", PROBLEM_FORMAT)
    if format_name != PROBLEM_FORMAT:
        raise InvalidProblemError(f"unsupported document format {format_name!r}")
    version = document.get("version", PROBLEM_FORMAT_VERSION)
    if version != PROBLEM_FORMAT_VERSION:
        raise InvalidProblemError(f"unsupported problem format version {version!r}")

    try:
        service_entries = document["services"]
        transfer_rows = document["transfer"]
    except KeyError as missing:
        raise InvalidProblemError(f"problem document is missing the {missing} field") from None
    if not isinstance(service_entries, list) or not service_entries:
        raise InvalidProblemError("the 'services' field must be a non-empty list")

    services = []
    for index, entry in enumerate(service_entries):
        if not isinstance(entry, dict) or "name" not in entry:
            raise InvalidProblemError(f"service entry {index} is malformed: {entry!r}")
        services.append(
            Service(
                name=entry["name"],
                cost=entry.get("cost", 0.0),
                selectivity=entry.get("selectivity", 1.0),
                host=entry.get("host"),
                threads=int(entry.get("threads", 1)),
            )
        )

    transfer = CommunicationCostMatrix(transfer_rows)

    precedence = None
    edges = document.get("precedence") or []
    if edges:
        precedence = PrecedenceGraph(len(services))
        for edge in edges:
            if not isinstance(edge, (list, tuple)) or len(edge) != 2:
                raise InvalidProblemError(f"precedence edge {edge!r} must be a [before, after] pair")
            precedence.add(int(edge[0]), int(edge[1]))

    return OrderingProblem(
        services,
        transfer,
        precedence=precedence,
        sink_transfer=document.get("sink_transfer"),
        name=document.get("name", ""),
    )


PROBLEM_WIRE_VERSION = 1
"""Version tag leading every wire payload produced by :func:`problem_to_wire`."""


def problem_to_wire(problem: OrderingProblem) -> tuple:
    """Encode ``problem`` as a compact, hashable tuple of flat arrays.

    This is the codec the parallel execution engine (:mod:`repro.parallel`)
    ships across process boundaries: everything is a nested tuple of
    primitives — costs, selectivities, transfer rows, sink transfers, and the
    precedence constraints collapsed into per-service predecessor *bitmasks* —
    so pickling never walks the :class:`OrderingProblem` object graph
    (services, matrices, cached evaluation kernel).  The payload is hashable,
    which is what lets worker processes key their warm per-problem evaluator
    caches on it directly.

    Round trip: :func:`problem_from_wire` rebuilds a problem whose parameters
    are bitwise identical to the original's (no quantization is applied), so
    costs computed on either side of the boundary agree exactly.
    """
    precedence = problem.precedence
    if precedence is not None and precedence.has_constraints:
        masks = [0] * problem.size
        for before, after in precedence.edges():
            masks[after] |= 1 << before
        predecessor_masks: tuple[int, ...] | None = tuple(masks)
    else:
        predecessor_masks = None
    sink = problem.sink_transfer
    return (
        PROBLEM_WIRE_VERSION,
        problem.name,
        tuple(service.name for service in problem.services),
        problem.costs,
        problem.selectivities,
        tuple(problem.transfer.row(i) for i in range(problem.size)),
        predecessor_masks,
        tuple(sink) if sink is not None else None,
        tuple(service.host for service in problem.services),
        tuple(service.threads for service in problem.services),
    )


def problem_from_wire(payload: tuple) -> OrderingProblem:
    """Rebuild an :class:`OrderingProblem` from a :func:`problem_to_wire` payload."""
    if not isinstance(payload, tuple) or not payload:
        raise InvalidProblemError(f"malformed wire payload: {type(payload).__name__}")
    if payload[0] != PROBLEM_WIRE_VERSION:
        raise InvalidProblemError(f"unsupported problem wire version {payload[0]!r}")
    try:
        (_, name, names, costs, selectivities, rows, predecessor_masks, sink, hosts, threads) = (
            payload
        )
    except ValueError:
        raise InvalidProblemError(
            f"problem wire payload has {len(payload)} fields, expected 10"
        ) from None
    services = [
        Service(
            name=names[i], cost=costs[i], selectivity=selectivities[i], host=hosts[i],
            threads=threads[i],
        )
        for i in range(len(names))
    ]
    precedence = None
    if predecessor_masks is not None:
        precedence = PrecedenceGraph(len(services))
        for after, mask in enumerate(predecessor_masks):
            while mask:
                bit = mask & -mask
                precedence.add(bit.bit_length() - 1, after)
                mask ^= bit
    return OrderingProblem(
        services,
        CommunicationCostMatrix([list(row) for row in rows]),
        precedence=precedence,
        sink_transfer=sink,
        name=name,
    )


def save_problem(problem: OrderingProblem, path: str | Path) -> Path:
    """Write ``problem`` to ``path`` as pretty-printed JSON and return the path."""
    path = Path(path)
    path.write_text(json.dumps(problem_to_dict(problem), indent=2) + "\n", encoding="utf-8")
    return path


def load_problem(path: str | Path) -> OrderingProblem:
    """Read a problem document from ``path``."""
    path = Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise InvalidProblemError(f"{path} does not contain valid JSON: {error}") from error
    return problem_from_dict(document)


def plan_to_dict(plan: Plan) -> dict[str, Any]:
    """Serialise a plan (order, names, per-stage breakdown) for reports or APIs."""
    return {
        "order": list(plan.order),
        "services": list(plan.service_names),
        "cost": plan.cost,
        "stages": [
            {
                "position": stage.position,
                "service": plan.problem.service(stage.service_index).name,
                "input_rate": stage.input_rate,
                "processing": stage.processing,
                "transfer": stage.transfer,
                "term": stage.total,
            }
            for stage in plan.stage_costs()
        ],
    }


def result_to_dict(result: OptimizationResult) -> dict[str, Any]:
    """Serialise an optimization result (plan + statistics) for reports or APIs."""
    document = result.as_dict()
    document["plan"] = plan_to_dict(result.plan)
    return document

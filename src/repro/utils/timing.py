"""Small timing helpers used by optimizers and the experiment harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "format_duration"]


@dataclass
class Stopwatch:
    """A restartable wall-clock stopwatch based on :func:`time.perf_counter`.

    The optimizers use it both to report elapsed time in their statistics and
    to enforce optional time limits.
    """

    _start: float | None = field(default=None, repr=False)
    _accumulated: float = 0.0

    def start(self) -> "Stopwatch":
        """Start (or resume) the stopwatch and return ``self`` for chaining."""
        if self._start is None:
            self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the stopwatch and return the total elapsed seconds so far."""
        if self._start is not None:
            self._accumulated += time.perf_counter() - self._start
            self._start = None
        return self._accumulated

    def reset(self) -> None:
        """Reset the stopwatch to zero and stop it."""
        self._start = None
        self._accumulated = 0.0

    @property
    def running(self) -> bool:
        """Whether the stopwatch is currently running."""
        return self._start is not None

    @property
    def elapsed(self) -> float:
        """Elapsed seconds, including the in-flight interval when running."""
        total = self._accumulated
        if self._start is not None:
            total += time.perf_counter() - self._start
        return total

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def format_duration(seconds: float) -> str:
    """Format a duration for human-readable experiment reports.

    >>> format_duration(0.00042)
    '0.42 ms'
    >>> format_duration(3.5)
    '3.50 s'
    >>> format_duration(125)
    '2 min 5.0 s'
    """
    if seconds < 0:
        raise ValueError("duration must be non-negative")
    if seconds < 1e-3:
        return f"{seconds * 1e6:.2f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    if seconds < 60.0:
        return f"{seconds:.2f} s"
    minutes, rest = divmod(seconds, 60.0)
    return f"{int(minutes)} min {rest:.1f} s"

"""Deterministic random-number helpers.

All stochastic components of the library (workload generators, the simulator's
stochastic filtering mode, randomized heuristics) accept an explicit seed and
derive their generators through this module, so that every experiment in
``benchmarks/`` is exactly reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

__all__ = ["SeedSequence", "derive_rng", "spawn_seeds"]

_DERIVE_MODULUS = 2**63 - 25  # large prime below 2**63, keeps derived seeds well mixed
_DERIVE_MULTIPLIER = 6364136223846793005
_DERIVE_INCREMENT = 1442695040888963407


def _mix(seed: int, salt: int) -> int:
    """Mix ``seed`` and ``salt`` into a new deterministic 63-bit value."""
    value = (seed * _DERIVE_MULTIPLIER + salt * _DERIVE_INCREMENT + 1) % _DERIVE_MODULUS
    # One extra scrambling round so that consecutive salts do not produce
    # consecutive outputs.
    value = (value * _DERIVE_MULTIPLIER + _DERIVE_INCREMENT) % _DERIVE_MODULUS
    return value


def derive_rng(seed: int, *salts: int | str) -> random.Random:
    """Return a :class:`random.Random` deterministically derived from ``seed``.

    ``salts`` distinguishes independent streams that share a master seed, e.g.
    ``derive_rng(7, "selectivity")`` and ``derive_rng(7, "cost")`` are
    independent but reproducible.
    """
    value = int(seed)
    for salt in salts:
        if isinstance(salt, str):
            salt_value = sum((index + 1) * byte for index, byte in enumerate(salt.encode("utf-8")))
        else:
            salt_value = int(salt)
        value = _mix(value, salt_value)
    return random.Random(value)


def spawn_seeds(seed: int, count: int) -> list[int]:
    """Return ``count`` deterministic child seeds derived from ``seed``."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return [_mix(int(seed), index + 1) for index in range(count)]


@dataclass
class SeedSequence:
    """An iterator over deterministic child seeds of a master seed.

    Example
    -------
    >>> seq = SeedSequence(42)
    >>> a, b = seq.next(), seq.next()
    >>> a != b
    True
    """

    seed: int
    _cursor: int = 0

    def next(self) -> int:
        """Return the next child seed."""
        self._cursor += 1
        return _mix(int(self.seed), self._cursor)

    def next_rng(self) -> random.Random:
        """Return a :class:`random.Random` seeded with the next child seed."""
        return random.Random(self.next())

    def take(self, count: int) -> list[int]:
        """Return the next ``count`` child seeds as a list."""
        return [self.next() for _ in range(count)]

    def __iter__(self) -> Iterator[int]:
        while True:
            yield self.next()

"""Runtime provenance for benchmark artifacts.

Benchmark JSON files are committed to the repository, so a number measured on
one machine will be read on another.  :func:`runtime_provenance` captures the
facts a reader needs to judge comparability — interpreter, platform, numpy
version and the BLAS numpy was built against — in one JSON-ready dict.

Everything degrades gracefully: without numpy the numpy/BLAS fields are
``None``, and BLAS introspection failures (the ``show_config`` API has moved
between numpy releases) never propagate.
"""

from __future__ import annotations

import platform
import sys
from typing import Any


def _blas_info() -> dict[str, Any] | None:
    """Name/version of the BLAS numpy links, or ``None`` if undiscoverable."""
    try:
        import numpy as np

        config = np.show_config(mode="dicts")  # numpy >= 1.25
    except Exception:
        return None
    if not isinstance(config, dict):
        return None
    blas = config.get("Build Dependencies", {}).get("blas", {})
    if not isinstance(blas, dict):
        return None
    info = {key: blas[key] for key in ("name", "version") if blas.get(key)}
    return info or None


def runtime_provenance() -> dict[str, Any]:
    """A JSON-ready snapshot of the interpreter/numpy/BLAS this process runs on."""
    try:
        import numpy as np

        numpy_version: str | None = np.__version__
    except ImportError:
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "executable": sys.executable,
        "system": platform.system(),
        "machine": platform.machine(),
        "numpy": numpy_version,
        "blas": _blas_info() if numpy_version is not None else None,
    }

"""Shared utilities: seeded RNG helpers, timers, table rendering, validation."""

from repro.utils.provenance import runtime_provenance
from repro.utils.rng import SeedSequence, derive_rng, spawn_seeds
from repro.utils.timing import Stopwatch, format_duration
from repro.utils.tables import Table, format_markdown_table
from repro.utils.validation import (
    require,
    require_finite,
    require_non_negative,
    require_positive,
    require_probability,
)

__all__ = [
    "SeedSequence",
    "derive_rng",
    "spawn_seeds",
    "Stopwatch",
    "format_duration",
    "Table",
    "format_markdown_table",
    "require",
    "require_finite",
    "require_non_negative",
    "require_positive",
    "require_probability",
    "runtime_provenance",
]

"""Argument-validation helpers shared across the package.

These helpers keep validation messages uniform and make the preconditions of
public constructors explicit and testable.
"""

from __future__ import annotations

import math
from typing import NoReturn

__all__ = [
    "require",
    "require_finite",
    "require_non_negative",
    "require_positive",
    "require_probability",
]


def _fail(message: str, exception: type[Exception]) -> NoReturn:
    raise exception(message)


def require(condition: bool, message: str, exception: type[Exception] = ValueError) -> None:
    """Raise ``exception`` with ``message`` unless ``condition`` holds."""
    if not condition:
        _fail(message, exception)


def require_finite(value: float, name: str, exception: type[Exception] = ValueError) -> float:
    """Validate that ``value`` is a finite real number and return it as ``float``."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        _fail(f"{name} must be a real number, got {value!r}", exception)
    if not math.isfinite(value):
        _fail(f"{name} must be finite, got {value!r}", exception)
    return value


def require_non_negative(value: float, name: str, exception: type[Exception] = ValueError) -> float:
    """Validate that ``value`` is finite and ``>= 0`` and return it as ``float``."""
    value = require_finite(value, name, exception)
    if value < 0:
        _fail(f"{name} must be non-negative, got {value!r}", exception)
    return value


def require_positive(value: float, name: str, exception: type[Exception] = ValueError) -> float:
    """Validate that ``value`` is finite and ``> 0`` and return it as ``float``."""
    value = require_finite(value, name, exception)
    if value <= 0:
        _fail(f"{name} must be positive, got {value!r}", exception)
    return value


def require_probability(value: float, name: str, exception: type[Exception] = ValueError) -> float:
    """Validate that ``value`` lies in ``[0, 1]`` and return it as ``float``."""
    value = require_finite(value, name, exception)
    if not 0.0 <= value <= 1.0:
        _fail(f"{name} must lie in [0, 1], got {value!r}", exception)
    return value

"""Lightweight tabular output used by the experiment harness.

The benchmark harness prints the rows a paper table would contain.  The
:class:`Table` helper keeps column alignment readable both on a terminal and
when pasted into ``EXPERIMENTS.md`` as GitHub-flavoured markdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

__all__ = ["Table", "format_markdown_table"]


def _render_cell(value: Any, float_format: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def format_markdown_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    float_format: str = ".4g",
) -> str:
    """Render ``headers``/``rows`` as a GitHub-flavoured markdown table."""
    rendered_rows = [[_render_cell(cell, float_format) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns: {row!r}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        padded = [cell.ljust(widths[index]) for index, cell in enumerate(cells)]
        return "| " + " | ".join(padded) + " |"

    separator = "|" + "|".join("-" * (width + 2) for width in widths) + "|"
    parts = [line(list(headers)), separator]
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


@dataclass
class Table:
    """An append-only table of experiment rows.

    Example
    -------
    >>> table = Table(["n", "cost"], title="demo")
    >>> table.add_row(n=3, cost=1.5)
    >>> print(table.to_markdown())  # doctest: +NORMALIZE_WHITESPACE
    | n | cost |
    |---|------|
    | 3 | 1.5  |
    """

    headers: list[str]
    title: str = ""
    float_format: str = ".4g"
    rows: list[list[Any]] = field(default_factory=list)

    def add_row(self, *values: Any, **named: Any) -> None:
        """Append a row, either positionally or by header name."""
        if values and named:
            raise ValueError("pass either positional values or keyword values, not both")
        if named:
            missing = [header for header in self.headers if header not in named]
            if missing:
                raise ValueError(f"missing values for columns {missing}")
            unknown = [name for name in named if name not in self.headers]
            if unknown:
                raise ValueError(f"unknown columns {unknown}")
            row = [named[header] for header in self.headers]
        else:
            if len(values) != len(self.headers):
                raise ValueError(
                    f"expected {len(self.headers)} values, got {len(values)}"
                )
            row = list(values)
        self.rows.append(row)

    def column(self, header: str) -> list[Any]:
        """Return all values of the named column."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def to_markdown(self) -> str:
        """Render the table (with its title, when set) as markdown."""
        body = format_markdown_table(self.headers, self.rows, self.float_format)
        if self.title:
            return f"### {self.title}\n\n{body}"
        return body

    def to_dicts(self) -> list[dict[str, Any]]:
        """Return the rows as dictionaries keyed by header."""
        return [dict(zip(self.headers, row)) for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

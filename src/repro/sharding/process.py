"""Process-backed shards: one :class:`~repro.serving.service.PlanService` per child.

An in-proc shard shares the parent's GIL, so N in-proc shards buy isolation
and routing structure but not CPU.  A :class:`ProcessShard` moves the whole
service — cache, portfolio, admission control — into its own OS process:

* problems travel as the compact array payloads of
  :func:`repro.serialization.problem_to_wire` (the wire codec that already
  carries the optimizer pool's traffic), and answers come back as the flat
  primitive documents of :func:`repro.serving.http.response_to_dict` — no
  pickled object graphs in either direction;
* inside the child, each request is handled on an executor thread, so one
  shard process serves concurrent submissions exactly like the threaded
  service does (admission control included);
* the parent side multiplexes: any number of router threads may call
  :meth:`ProcessShard.submit` / :meth:`ProcessShard.optimize_batch`
  concurrently — answers are correlated to waiters by request id through the
  process-wide :class:`~repro.sharding.multiplexer.ResponseMultiplexer`, one
  selector thread over *all* shards' response pipes rather than one parked
  reader thread per shard.

Shard-side failures are re-raised in the parent with their original type
where it matters (:class:`~repro.exceptions.AdmissionError` must keep
meaning HTTP 503); a shard process dying fails its in-flight requests with
:class:`~repro.exceptions.ShardingError` instead of hanging them.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

from repro.core.problem import OrderingProblem
from repro.exceptions import (
    AdmissionError,
    OptimizationError,
    ReproError,
    ServingError,
    ShardingError,
)
from repro.obs.trace import Span, activate_trace, current_trace, emit_spans, trace_span
from repro.parallel.pool import preferred_context
from repro.serialization import problem_from_wire, problem_to_wire
from repro.serving.http import response_from_dict, response_to_dict
from repro.serving.service import PlanResponse, PlanService, PlanServiceConfig
from repro.sharding.multiplexer import ResponseMultiplexer, default_multiplexer

__all__ = ["ProcessShard"]

_SHUTDOWN = None
"""Sentinel the shard child interprets as 'drain and exit'."""

_POLL_SECONDS = 0.25
"""Grace added to close() joins (one multiplexer poll interval)."""

_ERROR_TYPES = {
    "AdmissionError": AdmissionError,
    "OptimizationError": OptimizationError,
    "ServingError": ServingError,
    "ShardingError": ShardingError,
}
"""Shard-side error types re-raised with their own class in the parent."""


def _shard_service_main(requests, responses, config: PlanServiceConfig, shard_id: str) -> None:
    """Child entry point: serve requests until the shutdown sentinel."""
    import multiprocessing
    import signal

    # A foreground Ctrl-C delivers SIGINT to the whole process group; shard
    # shutdown is coordinated by the parent (sentinel, then terminate), so
    # the child must not die mid-request with a KeyboardInterrupt traceback.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # The parent starts shards daemonic (an abandoned shard must never block
    # interpreter exit), but the inherited daemon flag would forbid this
    # service's own worker children — process-backend portfolio races and
    # refresh pools.  Clear it here, where it has no other effect: the
    # parent's exit handling keys off its own Process object, and the
    # grandchildren are daemonic themselves.
    multiprocessing.current_process()._config["daemon"] = False
    service = PlanService(config)
    executor = ThreadPoolExecutor(
        max_workers=config.max_in_flight + 2, thread_name_prefix="shard-request"
    )

    def answer_one(kind: str, item: tuple):
        if kind == "submit":
            payload, budget = item[2], item[3]
            response = service.submit(problem_from_wire(payload), budget_seconds=budget)
            return response_to_dict(response)
        if kind == "batch":
            payloads, budget = item[2], item[3]
            problems = [problem_from_wire(payload) for payload in payloads]
            return [
                response_to_dict(response)
                for response in service.optimize_batch(problems, budget_seconds=budget)
            ]
        if kind == "stats":
            return service.stats()
        if kind == "keys":
            return service.cache.keys()
        raise ShardingError(f"unknown shard operation {kind!r}")

    def handle(item) -> None:
        kind, request_id, trace = item[0], item[1], item[-1]
        spans: list = []
        try:
            if trace is None:
                answer = answer_one(kind, item)
            else:
                # Re-enter the caller's trace: everything the service does in
                # this process lands under one shard.<kind> span, and the
                # finished spans ship back with the answer for stitching.
                with activate_trace(trace[0], parent_id=trace[1]) as active:
                    try:
                        with trace_span("shard." + kind, shard=shard_id):
                            answer = answer_one(kind, item)
                    finally:
                        spans = [
                            span.to_dict() if isinstance(span, Span) else dict(span)
                            for span in active.spans
                        ]
        except ReproError as error:
            responses.put((request_id, False, (type(error).__name__, str(error)), spans))
        except Exception as error:  # noqa: BLE001 - a lost answer hangs the parent
            # Anything escaping here (e.g. a TypeError from rejected
            # algorithm options) must still produce a response: the parent's
            # waiter has no timeout and the process stays alive, so a
            # swallowed exception would hang the router thread forever.
            responses.put(
                (request_id, False, ("ShardingError", f"{type(error).__name__}: {error}"), spans)
            )
        else:
            responses.put((request_id, True, answer, spans))

    while True:
        item = requests.get()
        if item is _SHUTDOWN or item is None:
            break
        executor.submit(handle, item)
    executor.shutdown(wait=True)
    service.close()


class _Waiter:
    """One parent-side caller blocked on a shard answer.

    The waiter protocol is two methods: :meth:`complete` is invoked exactly
    once — by the multiplexer's dispatch, by the death sweep, or by
    :meth:`ProcessShard.close` — with the answer triple, and :meth:`wait`
    blocks the calling thread until then.  :class:`_AsyncWaiter` implements
    the same ``complete`` contract against an event-loop future, which is
    what lets the multiplexer resolve asyncio callers without knowing about
    event loops.
    """

    __slots__ = ("done", "ok", "payload", "spans")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.ok = False
        self.payload: object = None
        self.spans: list = []

    def complete(self, ok: bool, payload: object, spans: list) -> None:
        self.ok = ok
        self.payload = payload
        self.spans = spans
        self.done.set()

    def wait(self) -> tuple[bool, object, list]:
        self.done.wait()
        return self.ok, self.payload, self.spans


class _AsyncWaiter:
    """A loop-aware waiter: completion resolves an :mod:`asyncio` future.

    Created on the event loop (:meth:`ProcessShard._call_async`); completed
    from the multiplexer thread (answer or death sweep) or whatever thread
    runs :meth:`ProcessShard.close` — always via ``call_soon_threadsafe``,
    so the future's result lands on its own loop without a bridge thread.
    A future already cancelled (deadline) or resolved is left untouched.
    """

    __slots__ = ("loop", "future")

    def __init__(self, loop, future) -> None:
        self.loop = loop
        self.future = future

    def complete(self, ok: bool, payload: object, spans: list) -> None:
        try:
            self.loop.call_soon_threadsafe(self._resolve, ok, payload, spans)
        except RuntimeError:  # pragma: no cover - the loop closed mid-flight
            pass

    def _resolve(self, ok: bool, payload: object, spans: list) -> None:
        if not self.future.done():
            self.future.set_result((ok, payload, spans))


class ProcessShard:
    """A :class:`PlanService` running in a dedicated child process.

    ``multiplexer`` injects the answer-correlation loop; by default every
    shard in the process shares :func:`default_multiplexer`, so N shards are
    served by one selector thread instead of N reader threads.
    """

    def __init__(
        self,
        shard_id: str,
        config: PlanServiceConfig,
        mp_context: str | None = None,
        multiplexer: ResponseMultiplexer | None = None,
    ) -> None:
        self.shard_id = shard_id
        context = preferred_context(mp_context)
        self._requests = context.Queue()
        self._responses = context.Queue()
        self._process = context.Process(
            target=_shard_service_main,
            args=(self._requests, self._responses, config, shard_id),
            daemon=True,
            name=f"plan-shard-{shard_id}",
        )
        self._process.start()
        self._lock = threading.Lock()
        self._next_request_id = 0
        self._waiters: dict[int, _Waiter] = {}
        self._closed = threading.Event()
        self.multiplexer = multiplexer if multiplexer is not None else default_multiplexer()
        self._port = self.multiplexer.register(
            self._responses,
            on_message=self._dispatch,
            alive=self._process.is_alive,
            on_death=self._on_death,
        )

    # -- shard surface (duck-typed like PlanService) -----------------------

    def submit(
        self,
        problem: OrderingProblem,
        budget_seconds: float | None = None,
        fingerprint: object | None = None,
    ) -> PlanResponse:
        # ``fingerprint`` is accepted for surface parity with in-proc shards
        # but not shipped: the child re-fingerprints in its own process.
        document = self._call(("submit", problem_to_wire(problem), budget_seconds))
        return response_from_dict(document)

    def optimize_batch(
        self,
        problems: Sequence[OrderingProblem],
        budget_seconds: float | None = None,
        fingerprints: Sequence[object] | None = None,
    ) -> list[PlanResponse]:
        if not problems:
            return []
        payloads = [problem_to_wire(problem) for problem in problems]
        documents = self._call(("batch", payloads, budget_seconds))
        return [response_from_dict(document) for document in documents]

    async def submit_async(
        self,
        problem: OrderingProblem,
        budget_seconds: float | None = None,
        fingerprint: object | None = None,
    ) -> PlanResponse:
        """Awaitable :meth:`submit`: the answer resolves on the event loop.

        No bridge thread is involved anywhere on the path — the request goes
        onto the shard's queue from this coroutine, and the multiplexer's
        dispatch completes the future via ``call_soon_threadsafe``.
        """
        document = await self._call_async(("submit", problem_to_wire(problem), budget_seconds))
        return response_from_dict(document)

    async def optimize_batch_async(
        self,
        problems: Sequence[OrderingProblem],
        budget_seconds: float | None = None,
        fingerprints: Sequence[object] | None = None,
    ) -> list[PlanResponse]:
        """Awaitable :meth:`optimize_batch` (same wire path as :meth:`submit_async`)."""
        if not problems:
            return []
        payloads = [problem_to_wire(problem) for problem in problems]
        documents = await self._call_async(("batch", payloads, budget_seconds))
        return [response_from_dict(document) for document in documents]

    def stats(self) -> dict[str, object]:
        return self._call(("stats",))

    def cache_keys(self) -> list[str]:
        return self._call(("keys",))

    def close(self, timeout: float = 5.0) -> None:
        """Stop the shard process (idempotent); stragglers are terminated."""
        if self._closed.is_set():
            return
        self._closed.set()
        try:
            self._requests.put(_SHUTDOWN)
        except (OSError, ValueError):  # pragma: no cover - queue already torn down
            pass
        self._process.join(timeout=timeout)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=timeout)
        # Unregister before closing the channel: the multiplexer tolerates the
        # closure race, but must stop dispatching for this shard first.
        self.multiplexer.unregister(self._port)
        self._fail_waiters("the shard was closed with requests in flight")
        self._requests.close()
        self._responses.close()

    # -- internals ---------------------------------------------------------

    def _send(self, operation: tuple, waiter) -> int:
        """Register ``waiter`` and enqueue one operation; returns its id."""
        if self._closed.is_set():
            raise ShardingError(f"shard {self.shard_id!r} has been closed")
        with self._lock:
            request_id = self._next_request_id
            self._next_request_id += 1
            self._waiters[request_id] = waiter
        kind, *rest = operation
        # The trace rides as the operation's last element; the child re-enters
        # it and ships its spans back on the waiter.  On the async path the
        # coroutine runs inside the caller's activation (contextvars flow into
        # tasks), so the same read works for both.
        self._requests.put((kind, request_id, *rest, current_trace()))
        return request_id

    def _result(self, ok: bool, payload: object, spans: list):
        """Fold shipped spans back and unwrap one answer (typed re-raise)."""
        if spans:
            emit_spans(spans)
        if ok:
            return payload
        error_type, message = payload  # type: ignore[misc]
        raise _ERROR_TYPES.get(error_type, ShardingError)(
            f"shard {self.shard_id!r}: {message}"
        )

    def _call(self, operation: tuple):
        """Send one operation to the shard and block for its answer."""
        waiter = _Waiter()
        self._send(operation, waiter)
        return self._result(*waiter.wait())

    async def _call_async(self, operation: tuple):
        """Send one operation and await its answer as an event-loop future."""
        import asyncio

        loop = asyncio.get_running_loop()
        future = loop.create_future()
        waiter = _AsyncWaiter(loop, future)
        request_id = self._send(operation, waiter)
        try:
            ok, payload, spans = await future
        except asyncio.CancelledError:
            # A cancelled caller (deadline, connection teardown) must not
            # leave its waiter registered: the shard's late answer would be
            # routed to a dead future.  complete() on the popped waiter is a
            # no-op because the future is already cancelled.
            with self._lock:
                self._waiters.pop(request_id, None)
            raise
        return self._result(ok, payload, spans)

    def _dispatch(self, item: tuple) -> None:
        """Multiplexer callback: route one shard answer to its waiter."""
        request_id, ok, payload, *extra = item
        with self._lock:
            waiter = self._waiters.pop(request_id, None)
        if waiter is None:
            return
        waiter.complete(ok, payload, extra[0] if extra else [])

    def _on_death(self) -> None:
        """Multiplexer callback: the shard process died with nothing buffered.

        Swept at the poll cadence until :meth:`close` unregisters the port,
        so ``_call`` registrations racing the death are failed too instead of
        hanging forever.
        """
        self._fail_waiters(f"shard process died (exit code {self._process.exitcode})")

    def _fail_waiters(self, message: str) -> None:
        with self._lock:
            waiters, self._waiters = dict(self._waiters), {}
        for waiter in waiters.values():
            waiter.complete(False, ("ShardingError", message), [])

"""The sharded serving tier: consistent-hash routing over PlanService shards.

One :class:`~repro.serving.service.PlanService` answers from one process —
one cache, one admission gate, one portfolio pool.  This package scales the
serving stack horizontally:

* :mod:`repro.sharding.ring` — a consistent-hash ring with virtual nodes:
  deterministic placement of fingerprint keys, ~1/N key movement on resize,
* :mod:`repro.sharding.router` — :class:`ShardRouter`, fanning ``submit`` /
  ``optimize_batch`` out to N shards and re-merging responses in order; the
  same duck-typed surface as a single service, so the HTTP front end
  (:mod:`repro.serving.http`) and the CLI bind to either,
* :mod:`repro.sharding.process` — :class:`ProcessShard`, a whole service in
  its own OS process behind the array wire codec, which is what makes N
  shards use N cores,
* :mod:`repro.sharding.multiplexer` — :class:`ResponseMultiplexer`, the one
  selector loop correlating every process shard's answers (N shards cost one
  thread, not N reader threads), shared by the sync router and the asyncio
  front end,

with warm plans optionally shared between shards through a
:class:`~repro.serving.store.SharedStore` (``shared_cache_dir``), so a key
rebalanced to another shard stays a cache hit.
"""

from repro.sharding.multiplexer import ResponseMultiplexer, default_multiplexer
from repro.sharding.process import ProcessShard
from repro.sharding.ring import DEFAULT_VIRTUAL_NODES, HashRing
from repro.sharding.router import SHARD_BACKENDS, ShardRouter, ShardRouterConfig

__all__ = [
    "DEFAULT_VIRTUAL_NODES",
    "SHARD_BACKENDS",
    "HashRing",
    "ProcessShard",
    "ResponseMultiplexer",
    "ShardRouter",
    "ShardRouterConfig",
    "default_multiplexer",
]

"""One selector loop over every process shard's response pipe.

A :class:`~repro.sharding.process.ProcessShard` used to pin one dedicated
reader thread per shard in the router process, each blocking on its own
response queue — N shards cost N parked threads before a single request
flows.  The :class:`ResponseMultiplexer` flattens that: *one* thread waits on
all registered shards' response pipes at once
(:func:`multiprocessing.connection.wait`, the stdlib's selector over pipe
file descriptors) and dispatches each ``(request_id, ok, payload)`` answer to
the owning shard's correlation callback.

The multiplexer is deliberately front-end-agnostic: the synchronous
:class:`~repro.sharding.router.ShardRouter` and the asyncio front end
(:mod:`repro.serving.aserver`) drive the same shards, so they share the same
process-wide multiplexer (:func:`default_multiplexer`) — shard count scales
without the thread count following it.

Registration is keyed by small :class:`_Port` handles: a shard registers its
response queue plus three callbacks (``on_message`` for answers, ``alive``
for liveness probing, ``on_death`` to fail its waiters) and unregisters on
close.  Liveness is swept at the poll cadence, but only for ports with no
answer bytes pending, so buffered answers of a crashing shard are still
delivered before its waiters are failed — the same ordering the per-shard
reader threads guaranteed.  The sweep timer only runs while at least one
shard is registered: an idle multiplexer parks in the selector without a
timeout and wakes on the self-pipe, costing zero scheduled wake-ups.

The shard-side completion callbacks may be *loop-aware*
(:class:`repro.sharding.process.ProcessShard` registers waiters that resolve
``asyncio`` futures via ``loop.call_soon_threadsafe``); the multiplexer
itself stays agnostic — it calls ``on_message`` on its own thread and the
waiter decides whether to signal a blocking event or an event-loop future.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import queue
import threading
import time
from typing import Callable

__all__ = ["ResponseMultiplexer", "default_multiplexer"]

_POLL_SECONDS = 0.25
"""Default wait timeout: the cadence of the dead-shard liveness sweep.
Overridable per instance (``poll_seconds=``) and, for the process-wide
default multiplexer, via the ``REPRO_MUX_POLL_SECONDS`` environment variable
— tests of the death sweep set it low instead of sleeping 250 ms per
assertion."""

_POLL_ENV_VAR = "REPRO_MUX_POLL_SECONDS"


def _default_poll_seconds() -> float:
    """The default multiplexer's sweep cadence (env-overridable, validated)."""
    raw = os.environ.get(_POLL_ENV_VAR, "").strip()
    if not raw:
        return _POLL_SECONDS
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"{_POLL_ENV_VAR} must be a positive number of seconds, got {raw!r}"
        ) from None
    if value <= 0:
        raise ValueError(
            f"{_POLL_ENV_VAR} must be a positive number of seconds, got {raw!r}"
        )
    return value


class _Port:
    """One registered shard response channel."""

    __slots__ = ("response_queue", "reader", "on_message", "alive", "on_death")

    def __init__(
        self,
        response_queue,
        on_message: Callable[[tuple], None],
        alive: Callable[[], bool] | None,
        on_death: Callable[[], None] | None,
    ) -> None:
        self.response_queue = response_queue
        # The queue's receiving Connection — what the selector waits on.  A
        # private attribute, but a stable one (CPython's mp.Queue has carried
        # it unchanged for over a decade), and the whole point: readiness
        # without a blocking get() per shard.
        self.reader = response_queue._reader
        self.on_message = on_message
        self.alive = alive
        self.on_death = on_death


class ResponseMultiplexer:
    """A single thread correlating every registered shard's answers.

    Thread-safe: ports may be registered/unregistered from any thread while
    the loop runs.  The loop thread starts lazily on the first registration
    and idles at the poll cadence when no ports are registered.
    """

    def __init__(self, name: str = "shard-mux", poll_seconds: float = _POLL_SECONDS) -> None:
        self._name = name
        self._poll_seconds = poll_seconds
        self._lock = threading.Lock()
        self._ports: set[_Port] = set()  # guarded-by: _lock
        self._thread: threading.Thread | None = None  # guarded-by: _lock
        self._stopped = threading.Event()
        # Dispatch accounting (only the loop thread writes, so plain ints).
        self._dispatched = 0
        self._dropped = 0
        # A self-pipe: registration changes wake the selector immediately
        # instead of waiting out the current poll timeout.
        self._wake_recv, self._wake_send = multiprocessing.Pipe(duplex=False)

    # -- registration ------------------------------------------------------

    def register(
        self,
        response_queue,
        on_message: Callable[[tuple], None],
        alive: Callable[[], bool] | None = None,
        on_death: Callable[[], None] | None = None,
    ) -> _Port:
        """Start correlating ``response_queue``; returns the port handle."""
        with self._lock:
            if self._stopped.is_set():
                raise RuntimeError("the response multiplexer has been closed")
            port = _Port(response_queue, on_message, alive, on_death)
            self._ports.add(port)
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._run, name=self._name, daemon=True
                )
                self._thread.start()
        self._wake()
        return port

    def unregister(self, port: _Port) -> None:
        """Stop correlating ``port`` (idempotent).

        The caller may close the underlying queue immediately afterwards: a
        selector pass racing the closure sees a dead file descriptor, which
        the loop tolerates and drops on its next rebuild.
        """
        with self._lock:
            self._ports.discard(port)
        self._wake()

    def ports(self) -> int:
        """Number of registered shard channels (introspection/tests)."""
        with self._lock:
            return len(self._ports)

    def stats(self) -> dict[str, int]:
        """Dispatch counters: answers routed to callbacks, and drops.

        A *drop* is a message consumed off a port's queue whose callback
        raised or whose payload failed to decode — its waiter is failed by
        the owner's death sweep or close, never hung.
        """
        with self._lock:
            return {
                "ports": len(self._ports),
                "dispatched": self._dispatched,
                "dropped": self._dropped,
            }

    @property
    def thread_name(self) -> str | None:
        """Name of the running loop thread, or ``None`` before first use."""
        with self._lock:
            return self._thread.name if self._thread is not None else None

    def close(self) -> None:
        """Stop the loop thread (idempotent; for tests — the process-wide
        default multiplexer lives as long as the process)."""
        self._stopped.set()
        self._wake()
        with self._lock:
            thread = self._thread
        if thread is not None:
            thread.join(timeout=2 * self._poll_seconds + 1.0)

    # -- the loop ----------------------------------------------------------

    def _wake(self) -> None:
        try:
            self._wake_send.send_bytes(b"w")
        except (OSError, ValueError):  # pragma: no cover - closed during teardown
            pass

    def _run(self) -> None:
        last_sweep = time.monotonic()
        while not self._stopped.is_set():
            try:
                last_sweep = self._run_once(last_sweep)
            except OSError:
                # A port's queue was closed between snapshot and wait (shard
                # shutdown race); drop the stale snapshot and rebuild.
                continue
            except Exception:  # noqa: BLE001 - one loop serves every shard
                # Nothing may kill the process-wide selector thread: a dead
                # loop would hang every shard's waiters forever.
                continue

    def _run_once(self, last_sweep: float) -> float:
        with self._lock:
            ports = list(self._ports)
        waitables = [port.reader for port in ports] + [self._wake_recv]
        # The poll timeout exists only to drive the dead-shard liveness
        # sweep; with no shard registered there is nothing to sweep, so the
        # idle loop parks without a timeout and wakes on the self-pipe.
        timeout = self._poll_seconds if ports else None
        ready = multiprocessing.connection.wait(waitables, timeout=timeout)
        if self._stopped.is_set():
            return last_sweep
        ready_set = set(ready)
        if self._wake_recv in ready_set:
            self._drain_wakeups()
        for port in ports:
            if port.reader in ready_set:
                self._drain_port(port)
        now = time.monotonic()
        if now - last_sweep >= self._poll_seconds:
            last_sweep = now
            self._sweep_dead(ports)
        return last_sweep

    def _drain_wakeups(self) -> None:
        try:
            while self._wake_recv.poll():
                self._wake_recv.recv_bytes()
        except (EOFError, OSError):  # pragma: no cover - closed during teardown
            pass

    def _drain_port(self, port: _Port) -> None:
        while True:
            try:
                item = port.response_queue.get_nowait()
            except queue.Empty:
                return
            except (EOFError, OSError, ValueError):
                # The channel died under us (shard torn down mid-drain);
                # in-flight waiters are failed by the owner's close/sweep.
                return
            except Exception:  # noqa: BLE001 - e.g. an unpicklable payload
                # The message bytes were consumed; skip it and keep draining.
                # Its waiter is failed by the owner's death sweep or close.
                self._dropped += 1
                continue
            try:
                port.on_message(item)
                self._dispatched += 1
            except Exception:  # pragma: no cover - callbacks must not kill the loop
                self._dropped += 1

    def _sweep_dead(self, ports: list[_Port]) -> None:
        """Fail waiters of shards whose process died with nothing left to read."""
        for port in ports:
            if port.alive is None or port.on_death is None:
                continue
            try:
                pending = port.reader.poll()
            except (OSError, ValueError):
                pending = False
            if pending or port.alive():
                continue
            try:
                port.on_death()
            except Exception:  # pragma: no cover - callbacks must not kill the loop
                pass


_default_lock = threading.Lock()
_default: ResponseMultiplexer | None = None


def default_multiplexer() -> ResponseMultiplexer:
    """The process-wide multiplexer every :class:`ProcessShard` shares.

    One loop thread correlates all shards of all routers (and any standalone
    shards) in this process; it lives for the life of the process.
    """
    global _default
    with _default_lock:
        if _default is None:
            _default = ResponseMultiplexer(poll_seconds=_default_poll_seconds())
        return _default

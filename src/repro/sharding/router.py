"""The :class:`ShardRouter`: one serving surface over N `PlanService` shards.

The router is the seam the scale-out architecture plugs into: it exposes the
same duck-typed surface as a single :class:`~repro.serving.service.PlanService`
(``submit`` / ``optimize_batch`` / ``stats`` / ``close``), so the HTTP front
end and the CLI bind to either interchangeably, while behind it

* every request is **routed by fingerprint key** over a consistent-hash ring
  (:mod:`repro.sharding.ring`) — structurally identical problems always land
  on the same shard, so each shard's cache and single-flight keep their full
  effectiveness and no plan is optimized on two shards;
* **batches are split per shard** and fanned out concurrently, each sub-batch
  answered through the shard's own bulk path (one admission, per-batch
  fingerprint dedup), and the responses re-merged in request order;
* shards are **in-proc** (`backend="inproc"`: N services in this process —
  routing structure and cache isolation, one GIL) or **processes**
  (`backend="processes"`: each shard is its own OS process behind the wire
  codec, so cold optimization scales across cores);
* :meth:`ShardRouter.add_shard` / :meth:`ShardRouter.remove_shard` resize the
  tier live; consistent hashing keeps movement to ~1/N of the key space, and
  a :class:`~repro.serving.store.SharedStore` (``shared_cache_dir``) makes
  even the moved keys warm on their new shard.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.problem import OrderingProblem
from repro.exceptions import ShardingError
from repro.obs import Observability, ObservabilityConfig, capture, trace_span
from repro.serving.fingerprint import fingerprint_problem
from repro.serving.service import PlanResponse, PlanService, PlanServiceConfig
from repro.serving.store import SharedStore
from repro.sharding.process import ProcessShard
from repro.sharding.ring import DEFAULT_VIRTUAL_NODES, HashRing

__all__ = ["SHARD_BACKENDS", "ShardRouterConfig", "ShardRouter"]

SHARD_BACKENDS = ("inproc", "processes")
"""Supported shard backends (same process vs one OS process per shard)."""


@dataclass(frozen=True)
class ShardRouterConfig:
    """Tunables of a :class:`ShardRouter`."""

    shards: int = 2
    """Number of shards started up front (resizable live via
    :meth:`ShardRouter.add_shard` / :meth:`ShardRouter.remove_shard`)."""

    backend: str = "inproc"
    """``"inproc"`` (N services in this process) or ``"processes"`` (one OS
    process per shard, requests crossing via the wire codec)."""

    virtual_nodes: int = DEFAULT_VIRTUAL_NODES
    """Ring points per shard (see :class:`~repro.sharding.ring.HashRing`)."""

    service_config: PlanServiceConfig = field(default_factory=PlanServiceConfig)
    """Configuration every shard's :class:`PlanService` is built from (its
    ``mp_context`` also picks the start method of process shards)."""

    shared_cache_dir: str | None = None
    """Directory of a :class:`~repro.serving.store.SharedStore` all shards
    point at, so warm plans survive rebalances and are shared across shards;
    ``None`` gives each shard its own in-process store.  The directory is
    one cache — its capacity bounds the *tier's* entries, and every shard's
    ``cache`` size/keys report the shared directory."""

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ShardingError(f"a router needs at least 1 shard, got {self.shards!r}")
        if self.backend not in SHARD_BACKENDS:
            raise ShardingError(
                f"unknown shard backend {self.backend!r}; "
                f"available: {', '.join(SHARD_BACKENDS)}"
            )


class _InProcShard:
    """A shard living in the router's own process."""

    def __init__(self, shard_id: str, config: ShardRouterConfig) -> None:
        self.shard_id = shard_id
        store = (
            SharedStore(
                config.shared_cache_dir, capacity=config.service_config.cache_capacity
            )
            if config.shared_cache_dir is not None
            else None
        )
        self.service = PlanService(config.service_config, cache_store=store)

    def submit(self, problem, budget_seconds=None, fingerprint=None) -> PlanResponse:
        return self.service.submit(
            problem, budget_seconds=budget_seconds, fingerprint=fingerprint
        )

    def optimize_batch(
        self, problems, budget_seconds=None, fingerprints=None
    ) -> list[PlanResponse]:
        return self.service.optimize_batch(
            problems, budget_seconds=budget_seconds, fingerprints=fingerprints
        )

    def stats(self) -> dict[str, object]:
        return self.service.stats()

    def cache_keys(self) -> list[str]:
        return self.service.cache.keys()

    def close(self) -> None:
        self.service.close()


class ShardRouter:
    """Routes plan requests over N shards by consistent-hashed fingerprint."""

    def __init__(self, config: ShardRouterConfig | None = None) -> None:
        self.config = config if config is not None else ShardRouterConfig()
        # The router's own observability bundle: routing counters plus the
        # span store/slow log of the front-end process (shard processes carry
        # their own registries; their spans are shipped back and stitched
        # here).  Tracing follows the service config's flag.
        service_config = self.config.service_config
        self.obs = Observability(
            ObservabilityConfig(
                enabled=service_config.observability,
                slow_request_seconds=service_config.slow_request_seconds,
            )
        )
        self._routed = self.obs.registry.counter(
            "repro_router_requests_total",
            "Requests routed (single submissions and batch members), by shard.",
            labelnames=("shard",),
        )
        self._ring = HashRing(virtual_nodes=self.config.virtual_nodes)
        self._shards: dict[str, object] = {}
        self._multiplexer = None
        self._next_shard_index = 0
        # Guards ring + shard-map mutation (resize); request routing only
        # reads under it briefly, never across an optimization.
        self._lock = threading.RLock()
        self._closed = threading.Event()
        try:
            for _ in range(self.config.shards):
                self.add_shard()
        except BaseException:
            # A failed startup (e.g. the 3rd of 4 shard processes refusing
            # to spawn) must not leak the shards already running.
            for shard in self._shards.values():
                shard.close()
            raise
        self._fanout = ThreadPoolExecutor(
            max_workers=max(4, 2 * self.config.shards), thread_name_prefix="shard-fanout"
        )

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Close every shard (idempotent)."""
        if self._closed.is_set():
            return
        self._closed.set()
        self._fanout.shutdown(wait=False, cancel_futures=True)
        with self._lock:
            shards = list(self._shards.values())
        for shard in shards:
            shard.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- topology ----------------------------------------------------------

    @property
    def multiplexer(self):
        """The multiplexer this router's process shards answer through (one
        selector loop for all of them — see
        :mod:`repro.sharding.multiplexer`), or ``None`` before any process
        shard exists (e.g. the in-proc backend, which needs no response
        correlation)."""
        return self._multiplexer

    @property
    def shard_ids(self) -> tuple[str, ...]:
        with self._lock:
            return self._ring.nodes

    def shard_for(self, key: str) -> str:
        """The shard id owning fingerprint cache key ``key``."""
        with self._lock:
            return self._ring.node_for(key)

    def add_shard(self) -> str:
        """Start one more shard and place it on the ring; returns its id."""
        if self._closed.is_set():
            raise ShardingError("the shard router has been closed")
        with self._lock:
            shard_id = f"shard-{self._next_shard_index}"
            self._next_shard_index += 1
            shard = self._build_shard(shard_id)
            self._shards[shard_id] = shard
            self._ring.add_node(shard_id)
            return shard_id

    def remove_shard(self, shard_id: str) -> None:
        """Take ``shard_id`` off the ring and shut it down."""
        with self._lock:
            if shard_id not in self._shards:
                raise ShardingError(f"unknown shard {shard_id!r}")
            if len(self._shards) == 1:
                raise ShardingError("cannot remove the last shard")
            self._ring.remove_node(shard_id)
            shard = self._shards.pop(shard_id)
        shard.close()

    def _build_shard(self, shard_id: str):
        if self.config.backend == "processes":
            service_config = self.config.service_config
            if self.config.shared_cache_dir is not None:
                # The child builds its own SharedStore over the same directory.
                service_config = dataclasses.replace(
                    service_config, cache_store_dir=self.config.shared_cache_dir
                )
            if self._multiplexer is None:
                from repro.sharding.multiplexer import default_multiplexer

                self._multiplexer = default_multiplexer()
            return ProcessShard(
                shard_id,
                service_config,
                mp_context=service_config.mp_context,
                multiplexer=self._multiplexer,
            )
        return _InProcShard(shard_id, self.config)

    # -- serving surface (duck-typed like PlanService) ---------------------

    def submit(
        self, problem: OrderingProblem, budget_seconds: float | None = None
    ) -> PlanResponse:
        """Answer one request on the shard owning the problem's fingerprint."""
        if self._closed.is_set():
            raise ShardingError("the shard router has been closed")
        with trace_span("router.submit") as span:
            fingerprint = fingerprint_problem(
                problem, self.config.service_config.fingerprint_precision
            )
            with self._lock:
                shard_id = self._ring.node_for(fingerprint.key)
                shard = self._shards[shard_id]
            span.annotate(shard=shard_id)
            self._routed.inc(shard=shard_id)
            # The fingerprint travels along so an in-proc shard's service skips
            # the re-hash (a process shard recomputes in its own process).
            return shard.submit(
                problem, budget_seconds=budget_seconds, fingerprint=fingerprint
            )

    def optimize_batch(
        self, problems: Sequence[OrderingProblem], budget_seconds: float | None = None
    ) -> list[PlanResponse]:
        """Split a batch per owning shard, fan out, re-merge in request order."""
        if self._closed.is_set():
            raise ShardingError("the shard router has been closed")
        if not problems:
            return []
        precision = self.config.service_config.fingerprint_precision
        # Fingerprinting is O(batch) hashing work — do it before taking the
        # lock, which only guards the ring/shard-map snapshot.
        fingerprints = [fingerprint_problem(problem, precision) for problem in problems]
        groups: dict[str, list[int]] = {}
        with self._lock:
            for index, fingerprint in enumerate(fingerprints):
                groups.setdefault(self._ring.node_for(fingerprint.key), []).append(index)
            shards = {shard_id: self._shards[shard_id] for shard_id in groups}

        # Fanout threads don't inherit the ambient trace contextvar; hand the
        # captured activation to each sub-batch span explicitly.
        context = capture()

        def fan_out(shard, shard_problems, shard_fingerprints, shard_id):
            with trace_span(
                "router.fanout", context=context, shard=shard_id, size=len(shard_problems)
            ):
                return shard.optimize_batch(shard_problems, budget_seconds, shard_fingerprints)

        for shard_id, indices in groups.items():
            self._routed.inc(len(indices), shard=shard_id)
        futures = {
            shard_id: self._fanout.submit(
                fan_out,
                shards[shard_id],
                [problems[index] for index in indices],
                [fingerprints[index] for index in indices],
                shard_id,
            )
            for shard_id, indices in groups.items()
        }
        responses: list[PlanResponse | None] = [None] * len(problems)
        first_error: BaseException | None = None
        for shard_id, indices in sorted(groups.items()):
            try:
                shard_responses = futures[shard_id].result()
            except BaseException as error:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = error
                continue
            for index, response in zip(indices, shard_responses):
                responses[index] = response
        if first_error is not None:
            raise first_error
        assert all(response is not None for response in responses)
        return responses  # type: ignore[return-value]

    # -- native async surface (process shards) -----------------------------

    @property
    def supports_async(self) -> bool:
        """Whether the native awaitable path exists: every process shard
        completes answers as event-loop futures through the multiplexer, so
        ``submit_async`` / ``optimize_batch_async`` never touch a bridge
        thread.  In-proc shards run the optimization on the caller's thread
        and have nothing to await — they stay on the blocking surface."""
        return self.config.backend == "processes"

    def _async_shard(self, shard_id: str, shard):
        if not hasattr(shard, "submit_async"):
            raise ShardingError(
                f"shard {shard_id!r} ({self.config.backend} backend) has no "
                "async submit path; use the blocking surface or process shards"
            )
        return shard

    async def _awaited(self, awaitable, timeout_seconds: float | None):
        """Run ``awaitable`` under the request deadline (3.10-compatible).

        A deadline hit cancels the shard call — which deregisters its waiter,
        so a late answer is dropped instead of resolving a dead future — and
        surfaces as a typed :class:`ShardingError`.
        """
        if timeout_seconds is None:
            return await awaitable
        try:
            return await asyncio.wait_for(awaitable, timeout_seconds)
        except (TimeoutError, asyncio.TimeoutError):
            raise ShardingError(
                f"shard answer deadline of {timeout_seconds} s exceeded"
            ) from None

    async def submit_async(
        self,
        problem: OrderingProblem,
        budget_seconds: float | None = None,
        timeout_seconds: float | None = None,
    ) -> PlanResponse:
        """Awaitable :meth:`submit`: same routing, zero bridge threads.

        The coroutine runs inside the caller's trace activation (contextvars
        flow into tasks), so the ``router.submit`` span nests under the front
        end's ``http.request`` span exactly like the blocking path.
        """
        if self._closed.is_set():
            raise ShardingError("the shard router has been closed")
        with trace_span("router.submit") as span:
            fingerprint = fingerprint_problem(
                problem, self.config.service_config.fingerprint_precision
            )
            with self._lock:
                shard_id = self._ring.node_for(fingerprint.key)
                shard = self._shards[shard_id]
            span.annotate(shard=shard_id)
            self._routed.inc(shard=shard_id)
            shard = self._async_shard(shard_id, shard)
            return await self._awaited(
                shard.submit_async(
                    problem, budget_seconds=budget_seconds, fingerprint=fingerprint
                ),
                timeout_seconds,
            )

    async def optimize_batch_async(
        self,
        problems: Sequence[OrderingProblem],
        budget_seconds: float | None = None,
        timeout_seconds: float | None = None,
    ) -> list[PlanResponse]:
        """Awaitable :meth:`optimize_batch`: per-shard fan-out via
        :func:`asyncio.gather` on the event loop (no fan-out thread pool),
        re-merged in request order with the same first-error semantics as the
        blocking path (errors compared in sorted shard order)."""
        if self._closed.is_set():
            raise ShardingError("the shard router has been closed")
        if not problems:
            return []
        precision = self.config.service_config.fingerprint_precision
        fingerprints = [fingerprint_problem(problem, precision) for problem in problems]
        groups: dict[str, list[int]] = {}
        with self._lock:
            for index, fingerprint in enumerate(fingerprints):
                groups.setdefault(self._ring.node_for(fingerprint.key), []).append(index)
            shards = {
                shard_id: self._async_shard(shard_id, self._shards[shard_id])
                for shard_id in groups
            }

        async def fan_out(shard, shard_problems, shard_fingerprints, shard_id):
            # Each gathered sub-call is its own task with its own copy of the
            # caller's context, so the fan-out span nests under the ambient
            # activation without the explicit capture() the thread pool needs.
            with trace_span("router.fanout", shard=shard_id, size=len(shard_problems)):
                return await shard.optimize_batch_async(
                    shard_problems, budget_seconds, shard_fingerprints
                )

        for shard_id, indices in groups.items():
            self._routed.inc(len(indices), shard=shard_id)
        ordered = sorted(groups.items())
        results = await self._awaited(
            asyncio.gather(
                *(
                    fan_out(
                        shards[shard_id],
                        [problems[index] for index in indices],
                        [fingerprints[index] for index in indices],
                        shard_id,
                    )
                    for shard_id, indices in ordered
                ),
                return_exceptions=True,
            ),
            timeout_seconds,
        )
        responses: list[PlanResponse | None] = [None] * len(problems)
        first_error: BaseException | None = None
        for (shard_id, indices), shard_responses in zip(ordered, results):
            if isinstance(shard_responses, BaseException):
                if first_error is None:
                    first_error = shard_responses
                continue
            for index, response in zip(indices, shard_responses):
                responses[index] = response
        if first_error is not None:
            raise first_error
        assert all(response is not None for response in responses)
        return responses  # type: ignore[return-value]

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict[str, object]:
        """Aggregated counters across shards, plus the per-shard breakdown."""
        with self._lock:
            shards = dict(self._shards)
        per_shard = {shard_id: shard.stats() for shard_id, shard in sorted(shards.items())}
        # With a shared store every shard reports the same directory, so its
        # size must be counted once, not once per shard.
        store_views = {
            json.dumps(stats["cache"].get("store", {}), sort_keys=True)
            for stats in per_shard.values()
        }
        shared_single_store = len(per_shard) > 1 and len(store_views) == 1 and (
            next(iter(per_shard.values()))["cache"].get("store", {}).get("backend")
            == "shared"
        )
        cache_totals: dict[str, float] = {}
        request_totals = {"answered": 0, "rejected": 0, "failed": 0, "coalesced": 0}
        by_source: dict[str, int] = {}
        for shard_index, stats in enumerate(per_shard.values()):
            for counter, value in stats["cache"].items():
                if not isinstance(value, (int, float)) or counter == "hit_rate":
                    continue
                if counter == "size" and shared_single_store and shard_index > 0:
                    continue  # every shard reports the same shared directory
                cache_totals[counter] = cache_totals.get(counter, 0) + value
            requests = stats["requests"]
            for counter in request_totals:
                request_totals[counter] += requests[counter]
            for source, count in requests["by_source"].items():
                by_source[source] = by_source.get(source, 0) + count
        lookups = (
            cache_totals.get("hits", 0)
            + cache_totals.get("stale_hits", 0)
            + cache_totals.get("misses", 0)
        )
        cache_totals["hit_rate"] = (
            (cache_totals.get("hits", 0) + cache_totals.get("stale_hits", 0)) / lookups
            if lookups
            else 0.0
        )
        routed_by_shard = {
            key[0]: int(value) for key, value in sorted(self._routed.values().items())
        }
        return {
            "shards": len(per_shard),
            "backend": self.config.backend,
            "cache": cache_totals,
            "requests": {**request_totals, "by_source": by_source},
            "routing": {
                "by_shard": routed_by_shard,
                "total": sum(routed_by_shard.values()),
            },
            "per_shard": per_shard,
        }

    def cache_keys(self) -> dict[str, list[str]]:
        """Every shard's cached fingerprint keys (rebalance measurements)."""
        with self._lock:
            shards = dict(self._shards)
        return {shard_id: shard.cache_keys() for shard_id, shard in sorted(shards.items())}

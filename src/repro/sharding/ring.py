"""A consistent-hash ring over fingerprint keys.

The sharded serving tier partitions the fingerprint space over N
:class:`~repro.serving.service.PlanService` shards.  Naive modulo hashing
(``hash(key) % N``) would remap almost *every* key whenever N changes —
catastrophic for a warm plan cache.  A consistent-hash ring remaps only the
keys a resize actually has to move:

* every shard owns ``virtual_nodes`` pseudo-random **points** on a 64-bit
  ring (``blake2b(f"{shard}#{i}")``), so ownership arcs interleave finely and
  load spreads evenly even for a handful of shards;
* a key belongs to the shard owning the first point at or clockwise after the
  key's own hash (wrapping at the top);
* adding a shard steals arcs *only for the new shard* — an expected ``K/(N+1)``
  of K keys move, every one of them onto the new shard — and removing a shard
  redistributes *only that shard's* keys.  Both properties are asserted
  exactly (not statistically) by the hypothesis suite in
  ``tests/sharding/test_ring.py``.

Placement is deterministic: two rings built from the same shard ids agree on
every key, which is what lets independent processes (the router, a shard
doing self-lookups, an offline rebalance measurement) compute identical
routing tables without coordination.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Mapping, Sequence

from repro.exceptions import ShardingError

__all__ = ["HashRing", "DEFAULT_VIRTUAL_NODES"]

DEFAULT_VIRTUAL_NODES = 128
"""Ring points per node: enough for <~10% arc imbalance at small N."""


def ring_hash(value: str) -> int:
    """The 64-bit ring position of ``value`` (deterministic across processes)."""
    return int.from_bytes(
        hashlib.blake2b(value.encode("utf-8"), digest_size=8).digest(), "big"
    )


class HashRing:
    """Consistent hashing with virtual nodes over string keys."""

    def __init__(
        self, nodes: Iterable[str] = (), virtual_nodes: int = DEFAULT_VIRTUAL_NODES
    ) -> None:
        if virtual_nodes < 1:
            raise ShardingError(f"virtual_nodes must be at least 1, got {virtual_nodes!r}")
        self.virtual_nodes = virtual_nodes
        self._nodes: set[str] = set()
        self._points: list[tuple[int, str]] = []
        for node in nodes:
            self.add_node(node)

    # -- membership --------------------------------------------------------

    @property
    def nodes(self) -> tuple[str, ...]:
        """The ring's nodes, sorted (deterministic iteration order)."""
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add_node(self, node: str) -> None:
        """Place ``node``'s virtual points on the ring."""
        if not node:
            raise ShardingError("a ring node needs a non-empty id")
        if node in self._nodes:
            raise ShardingError(f"node {node!r} is already on the ring")
        self._nodes.add(node)
        for index in range(self.virtual_nodes):
            bisect.insort(self._points, (ring_hash(f"{node}#{index}"), node))

    def remove_node(self, node: str) -> None:
        """Remove ``node`` and all its virtual points."""
        if node not in self._nodes:
            raise ShardingError(f"node {node!r} is not on the ring")
        self._nodes.discard(node)
        self._points = [point for point in self._points if point[1] != node]

    # -- placement ---------------------------------------------------------

    def node_for(self, key: str) -> str:
        """The node owning ``key``: first ring point at or after the key's hash."""
        if not self._points:
            raise ShardingError("the ring has no nodes")
        position = ring_hash(key)
        index = bisect.bisect_left(self._points, (position, ""))
        if index == len(self._points):
            index = 0  # wrap past the top of the ring
        return self._points[index][1]

    def placement(self, keys: Sequence[str]) -> Mapping[str, str]:
        """Key → node for every key (the rebalance measurements diff two of these)."""
        return {key: self.node_for(key) for key in keys}

"""Request-scoped trace spans that survive thread and process boundaries.

A request entering the serving stack crosses five layers — front end, router,
shard process, service, portfolio/worker process — and the question "where
did the time go?" needs one tree of timed spans per request, stitched from
whatever processes the request touched.  The design is deliberately small:

* :class:`Span` — one timed operation: ``trace_id`` (shared by the whole
  request), ``span_id``, ``parent_id``, a name, a wall-clock ``start``, a
  perf-counter ``duration`` and a flat ``annotations`` dict of primitives.
  Spans serialise to plain dicts (:meth:`Span.to_dict`) so they cross
  process boundaries inside existing response payloads — no new channels.
* an **ambient activation** held in a :class:`contextvars.ContextVar`:
  :func:`activate_trace` enters a trace scope (minting or adopting a
  ``trace_id``) and collects every span finished under it;
  :func:`trace_span` opens a child span of whatever is currently active.
  With *no* active trace, :func:`trace_span` yields the shared
  :data:`NOOP_SPAN` — one contextvar read and a ``None`` check, which is the
  entire disabled-path cost the benchmark budget (< 5% warm p50) rides on.
* explicit **handoff** for the places ambient context does not flow:
  executor threads (:func:`capture` the activation, pass it as
  ``trace_span(..., context=...)``) and process boundaries
  (:func:`current_trace` collapses the activation to a ``(trace_id,
  parent_span_id)`` tuple for the wire; the remote side re-enters with
  :func:`activate_trace` and ships its finished spans back, where
  :func:`emit_spans` folds them into the caller's collection).
  ``asyncio`` needs *neither*: contextvars flow into coroutines and into
  tasks spawned by ``asyncio.gather`` automatically, so the native async
  shard path simply activates the trace around the ``await``
  (:func:`repro.serving.http.dispatch_request_async`) and every span opened
  down the awaitable chain — router fan-out, shard wire call — lands in the
  same tree the threaded path produces, with no positional hand-off.

The collector is a plain list shared by the activation and every child scope;
appends are atomic under the GIL, so racing portfolio threads may finish
spans concurrently without a lock.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import time
from typing import Any, Iterable, Mapping

__all__ = [
    "NOOP_SPAN",
    "ActiveTrace",
    "Span",
    "activate_trace",
    "capture",
    "current_trace",
    "emit_spans",
    "new_trace_id",
    "span_from_dict",
    "trace_span",
]


# Ids are a per-process random prefix plus a counter, not uuid4: a span is
# minted on the warm-cache hot path, and uuid4 costs microseconds where the
# counter costs nanoseconds.  The prefix keeps ids unique across the
# processes whose spans stitch into one tree; re-randomized after fork so
# race/pool/shard children never mint the parent's sequence.
_id_prefix = os.urandom(8).hex()
_span_prefix = _id_prefix[:8]
_id_counter = itertools.count(1)


def _reseed_ids() -> None:
    global _id_prefix, _span_prefix, _id_counter
    _id_prefix = os.urandom(8).hex()
    _span_prefix = _id_prefix[:8]
    _id_counter = itertools.count(1)


if hasattr(os, "register_at_fork"):  # pragma: no branch - always true on POSIX
    os.register_at_fork(after_in_child=_reseed_ids)


def new_trace_id() -> str:
    """A fresh 32-hex-character trace id."""
    return _id_prefix + format(next(_id_counter) & 0xFFFFFFFFFFFFFFFF, "016x")


def _new_span_id() -> str:
    return _span_prefix + format(next(_id_counter) & 0xFFFFFFFF, "08x")


class Span:
    """One timed operation of a traced request."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "start", "duration", "_annotations")

    def __init__(
        self,
        trace_id: str,
        name: str,
        parent_id: str | None = None,
        span_id: str | None = None,
        start: float | None = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id if span_id is not None else _new_span_id()
        self.parent_id = parent_id
        self.name = name
        # Span starts leave the process on the trace wire format and must be
        # comparable across machines; durations are measured separately.
        # repro-lint: disable=RL002 — epoch timestamp by design (cross-process wire format)
        self.start = start if start is not None else time.time()
        self.duration = 0.0
        # Lazily materialised: most spans carry no annotations, and the dict
        # allocation is measurable on the per-request hot path.
        self._annotations: dict[str, Any] | None = None

    @property
    def annotations(self) -> dict[str, Any]:
        """The span's annotations (materialised on first access)."""
        if self._annotations is None:
            self._annotations = {}
        return self._annotations

    def annotate(self, **annotations: Any) -> "Span":
        """Attach primitive key/value annotations (JSON-safe values only)."""
        if self._annotations is None:
            self._annotations = annotations
        else:
            self._annotations.update(annotations)
        return self

    def to_dict(self) -> dict[str, Any]:
        """Flatten for the wire / the span store (primitives only)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "annotations": dict(self._annotations) if self._annotations else {},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, trace={self.trace_id[:8]}, "
            f"duration={self.duration * 1e3:.2f}ms)"
        )


def span_from_dict(document: Mapping[str, Any]) -> Span:
    """Rebuild a :class:`Span` from :meth:`Span.to_dict` output."""
    span = Span(
        trace_id=str(document["trace_id"]),
        name=str(document["name"]),
        parent_id=document.get("parent_id"),
        span_id=str(document["span_id"]),
        start=float(document["start"]),
    )
    span.duration = float(document.get("duration", 0.0))
    annotations = document.get("annotations")
    if annotations:
        span._annotations = dict(annotations)
    return span


class _NoopSpan:
    """The shared do-nothing span yielded when no trace is active."""

    __slots__ = ()
    trace_id = None
    span_id = None
    parent_id = None
    name = ""
    start = 0.0
    duration = 0.0

    def annotate(self, **annotations: Any) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class ActiveTrace:
    """One entered trace scope: the ambient parent for new spans."""

    __slots__ = ("trace_id", "span_id", "spans")

    def __init__(self, trace_id: str, span_id: str | None, spans: list) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.spans = spans


# Holds either an ActiveTrace (a trace scope) or a trace_span scope acting
# as the nested activation — both expose (trace_id, span_id, spans).
_current: contextvars.ContextVar["ActiveTrace | trace_span | None"] = contextvars.ContextVar(
    "repro_active_trace", default=None
)


def capture() -> "ActiveTrace | trace_span | None":
    """The current activation, for handing to another thread's ``trace_span``."""
    return _current.get()


def current_trace() -> tuple[str, str | None] | None:
    """``(trace_id, parent_span_id)`` for the wire, or ``None`` untraced."""
    active = _current.get()
    if active is None:
        return None
    return (active.trace_id, active.span_id)


def emit_spans(spans: Iterable[Mapping[str, Any] | Span]) -> None:
    """Fold remotely produced spans (wire dicts) into the active collection."""
    active = _current.get()
    if active is None:
        return
    active.spans.extend(spans)


class activate_trace:
    """Enter a trace scope; ``with activate_trace(trace_id) as active: ...``.

    ``trace_id=None`` mints a fresh id (the front end's case);
    ``parent_id`` re-parents spans under a remote caller's span (the shard
    child's case).  The yielded :class:`ActiveTrace` exposes ``trace_id``
    and the ``spans`` list every span finished in scope lands in.
    """

    __slots__ = ("_trace_id", "_parent_id", "_token", "active")

    def __init__(self, trace_id: str | None = None, parent_id: str | None = None) -> None:
        self._trace_id = trace_id
        self._parent_id = parent_id
        self._token: contextvars.Token | None = None
        self.active: ActiveTrace | None = None

    def __enter__(self) -> ActiveTrace:
        trace_id = self._trace_id if self._trace_id else new_trace_id()
        self.active = ActiveTrace(trace_id, self._parent_id, [])
        self._token = _current.set(self.active)
        return self.active

    def __exit__(self, *exc_info: object) -> None:
        assert self._token is not None
        _current.reset(self._token)


class trace_span:
    """Open a span under the active trace (or ``context``); no-op untraced.

    ``with trace_span("cache.get") as span: ... span.annotate(outcome="hit")``
    — on exit the span's duration is taken from a perf counter and the span
    joins the activation's collection.  ``context`` passes an explicitly
    :func:`capture`-d activation for code running on executor threads, where
    the contextvar does not flow; the span still nests correctly because the
    scope sets the *current thread's* contextvar for its duration.  Keyword
    ``annotations`` are attached at open time.
    """

    __slots__ = (
        "_name",
        "_context",
        "_annotations",
        "_span",
        "_token",
        "_t0",
        "trace_id",
        "span_id",
        "spans",
    )

    def __init__(
        self, name: str, context: ActiveTrace | None = None, **annotations: Any
    ) -> None:
        self._name = name
        self._context = context
        self._annotations = annotations
        self._span: Span | None = None
        self._token: contextvars.Token | None = None

    def __enter__(self):
        active = self._context if self._context is not None else _current.get()
        if active is None:
            return NOOP_SPAN
        span = Span(active.trace_id, self._name, parent_id=active.span_id)
        if self._annotations:
            span._annotations = dict(self._annotations)
        self._span = span
        # The scope object doubles as the nested activation: it exposes the
        # same (trace_id, span_id, spans) triple an ActiveTrace would, which
        # spares one allocation per span on the request hot path.  The
        # attributes stay valid after exit, so a capture() taken inside the
        # scope keeps working from another thread.
        self.trace_id = active.trace_id
        self.span_id = span.span_id
        self.spans = active.spans
        self._token = _current.set(self)
        self._t0 = time.perf_counter()
        return span

    def __exit__(self, *exc_info: object) -> None:
        if self._span is None:
            return
        self._span.duration = time.perf_counter() - self._t0
        assert self._token is not None
        self.spans.append(self._span)
        _current.reset(self._token)

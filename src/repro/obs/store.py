"""Where finished traces go: a ring-buffer span store and a slow-request log.

The store answers ``GET /trace/<id>`` without any external collector: the
front end records each completed request's spans here, bounded to the most
recent ``capacity`` traces (a ring buffer over an :class:`OrderedDict`), and
:meth:`SpanStore.tree` stitches one trace's spans — local and shipped back
from shard/worker processes alike — into a parent/child tree ordered by
start time.  Spans whose parent is missing (dropped by eviction, or produced
by a process whose root arrived first) surface as roots instead of
disappearing, so a partially collected trace still renders.

:class:`SlowLog` keeps the most recent N requests whose root span exceeded a
configurable latency threshold — the "what was slow lately?" question
answered without scraping a histogram.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from typing import Any, Iterable, Mapping

from repro.exceptions import ObservabilityError
from repro.obs.trace import Span

__all__ = ["SlowLog", "SpanStore"]

DEFAULT_TRACE_CAPACITY = 256
"""Traces retained by a :class:`SpanStore` before the oldest is evicted."""

DEFAULT_SLOW_LOG_CAPACITY = 128
"""Slow-request entries retained by a :class:`SlowLog`."""


def _as_dict(span: Span | Mapping[str, Any]) -> dict[str, Any]:
    return span.to_dict() if isinstance(span, Span) else dict(span)


class SpanStore:
    """The most recent ``capacity`` traces, keyed by trace id."""

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY) -> None:
        if capacity < 1:
            raise ObservabilityError(f"capacity must be at least 1, got {capacity!r}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, list[Span | Mapping[str, Any]]]" = OrderedDict()  # guarded-by: _lock

    def add(self, trace_id: str, spans: Iterable[Span | Mapping[str, Any]]) -> None:
        """Append ``spans`` to ``trace_id`` (created and marked recent).

        Spans are stored as handed in — finished :class:`Span` objects or
        wire dicts — and flattened lazily on read: recording happens on the
        request path, reading on the rare ``GET /trace/<id>``.
        """
        documents = list(spans)
        with self._lock:
            existing = self._traces.get(trace_id)
            if existing is None:
                self._traces[trace_id] = documents
            else:
                existing.extend(documents)
                self._traces.move_to_end(trace_id)
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)

    def get(self, trace_id: str) -> list[dict[str, Any]] | None:
        """The flat span documents of one trace (insertion order), or ``None``."""
        with self._lock:
            spans = self._traces.get(trace_id)
            if spans is None:
                return None
            spans = list(spans)
        return [_as_dict(span) for span in spans]

    def tree(self, trace_id: str) -> dict[str, Any] | None:
        """One trace stitched into a parent/child tree, or ``None`` unknown.

        Returns ``{"trace_id", "span_count", "duration_seconds", "roots"}``
        where every node is its span document plus a ``children`` list,
        children ordered by start time.  Spans with an unknown parent become
        roots, so trees survive partial collection.
        """
        spans = self.get(trace_id)
        if spans is None:
            return None
        nodes = {span["span_id"]: {**span, "children": []} for span in spans}
        roots: list[dict[str, Any]] = []
        for span in spans:
            node = nodes[span["span_id"]]
            parent = nodes.get(span.get("parent_id") or "")
            if parent is None or parent is node:
                roots.append(node)
            else:
                parent["children"].append(node)
        for node in nodes.values():
            node["children"].sort(key=lambda child: child["start"])
        roots.sort(key=lambda node: node["start"])
        return {
            "trace_id": trace_id,
            "span_count": len(spans),
            "duration_seconds": max((span["duration"] for span in roots), default=0.0),
            "roots": roots,
        }

    def trace_ids(self) -> list[str]:
        """Retained trace ids, oldest first."""
        with self._lock:
            return list(self._traces)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


class SlowLog:
    """A bounded log of requests slower than ``threshold_seconds``.

    ``threshold_seconds=None`` disables recording entirely (the default when
    no ``slow_request_seconds`` is configured).
    """

    def __init__(
        self,
        threshold_seconds: float | None,
        capacity: int = DEFAULT_SLOW_LOG_CAPACITY,
    ) -> None:
        if threshold_seconds is not None and threshold_seconds < 0:
            raise ObservabilityError(
                f"threshold_seconds must be non-negative, got {threshold_seconds!r}"
            )
        if capacity < 1:
            raise ObservabilityError(f"capacity must be at least 1, got {capacity!r}")
        self.threshold_seconds = threshold_seconds
        self._lock = threading.Lock()
        self._entries: deque[dict[str, Any]] = deque(maxlen=capacity)  # guarded-by: _lock

    def record(self, span: Span | Mapping[str, Any]) -> bool:
        """Log ``span`` if it breaches the threshold; returns whether it did."""
        if self.threshold_seconds is None:
            return False
        duration = span.duration if isinstance(span, Span) else span.get("duration", 0.0)
        if duration < self.threshold_seconds:
            return False
        document = _as_dict(span)
        with self._lock:
            self._entries.append(
                {
                    "trace_id": document.get("trace_id"),
                    "name": document.get("name"),
                    "start": document.get("start"),
                    "duration_seconds": document.get("duration"),
                    "annotations": dict(document.get("annotations", {})),
                }
            )
        return True

    def entries(self) -> list[dict[str, Any]]:
        """Logged entries, oldest first."""
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

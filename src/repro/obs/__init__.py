"""Observability for the serving stack: metrics, traces, slow-request log.

The stack spans five layers (fingerprint cache → portfolio → optimizer pool →
consistent-hash shards → HTTP front ends); this package is the stdlib-only
instrumentation layer that makes a slow request explainable and a hot shard
visible:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry`: named counters,
  gauges and fixed-bucket histograms with labels, rendered in the Prometheus
  text format by ``GET /metrics`` on both front ends, and parsed back by the
  ``repro top`` CLI.
* :mod:`repro.obs.trace` — request-scoped :class:`~repro.obs.trace.Span`
  trees: a ``trace_id`` minted at the front end (or adopted from an
  ``X-Trace-Id`` header) flows through service, cache, portfolio and across
  the shard/pool process boundaries; remote spans ship back inside existing
  response payloads and stitch into one tree.  When tracing is off, spans
  are a shared no-op object — the off-path cost is one contextvar read.
* :mod:`repro.obs.store` — :class:`~repro.obs.store.SpanStore` (ring buffer
  behind ``GET /trace/<id>``) and :class:`~repro.obs.store.SlowLog`
  (requests beyond a configurable latency threshold).

:class:`Observability` bundles the three per owning component (a
``PlanService`` or a ``ShardRouter`` each carry their own, so per-shard
counters stay per-shard); :class:`ObservabilityConfig` is the knob surface
(:attr:`~repro.serving.service.PlanServiceConfig.observability` plumbs it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.exceptions import ObservabilityError
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    labelled,
    parse_prometheus_text,
)
from repro.obs.store import (
    DEFAULT_SLOW_LOG_CAPACITY,
    DEFAULT_TRACE_CAPACITY,
    SlowLog,
    SpanStore,
)
from repro.obs.trace import (
    NOOP_SPAN,
    ActiveTrace,
    Span,
    activate_trace,
    capture,
    current_trace,
    emit_spans,
    new_trace_id,
    span_from_dict,
    trace_span,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SLOW_LOG_CAPACITY",
    "DEFAULT_TRACE_CAPACITY",
    "NOOP_SPAN",
    "ActiveTrace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "ObservabilityConfig",
    "SlowLog",
    "Span",
    "SpanStore",
    "activate_trace",
    "capture",
    "current_trace",
    "emit_spans",
    "labelled",
    "new_trace_id",
    "parse_prometheus_text",
    "span_from_dict",
    "trace_span",
]


@dataclass(frozen=True)
class ObservabilityConfig:
    """Tunables of one :class:`Observability` bundle."""

    enabled: bool = False
    """Whether trace spans are produced and collected.  Metrics counters are
    always live (they are a handful of locked adds); tracing is the part
    with per-request allocation, hence the flag."""

    slow_request_seconds: float | None = None
    """Root spans at least this slow enter the slow log (``None`` disables)."""

    trace_capacity: int = DEFAULT_TRACE_CAPACITY
    """Traces the ring-buffer span store retains."""

    slow_log_capacity: int = DEFAULT_SLOW_LOG_CAPACITY
    """Entries the slow log retains."""

    def __post_init__(self) -> None:
        if self.slow_request_seconds is not None and self.slow_request_seconds < 0:
            raise ObservabilityError(
                f"slow_request_seconds must be non-negative, "
                f"got {self.slow_request_seconds!r}"
            )
        if self.trace_capacity < 1:
            raise ObservabilityError(
                f"trace_capacity must be at least 1, got {self.trace_capacity!r}"
            )
        if self.slow_log_capacity < 1:
            raise ObservabilityError(
                f"slow_log_capacity must be at least 1, got {self.slow_log_capacity!r}"
            )


class Observability:
    """One component's registry + span store + slow log, behind one config."""

    def __init__(self, config: ObservabilityConfig | None = None) -> None:
        self.config = config if config is not None else ObservabilityConfig()
        self.registry = MetricsRegistry()
        self.spans = SpanStore(capacity=self.config.trace_capacity)
        self.slow_log = SlowLog(
            self.config.slow_request_seconds, capacity=self.config.slow_log_capacity
        )
        self._http_requests = self.registry.counter(
            "repro_http_requests_total",
            "HTTP requests served, by route, method and status.",
            labelnames=("route", "method", "status"),
        )
        self._http_latency = self.registry.histogram(
            "repro_http_request_seconds",
            "End-to-end HTTP request latency, by route.",
            labelnames=("route",),
        )

    @property
    def enabled(self) -> bool:
        """Whether tracing is on (metrics are always on)."""
        return self.config.enabled

    # -- recording ---------------------------------------------------------

    def observe_http(self, route: str, method: str, status: int, duration: float) -> None:
        """Count one served HTTP request and feed the latency histogram."""
        self._http_requests.inc(route=route, method=method, status=status)
        self._http_latency.observe(duration, route=route)

    def record_trace(self, active: ActiveTrace) -> None:
        """Store a finished activation's spans; slow roots enter the slow log.

        Spans are handed to the store as-is (finished :class:`Span` objects
        or wire dicts) — flattening to documents happens lazily when a trace
        is actually read, keeping this request-path call cheap.
        """
        spans = list(active.spans)
        if not spans:
            return
        self.spans.add(active.trace_id, spans)
        if self.slow_log.threshold_seconds is not None:
            for span in spans:
                parent = (
                    span.parent_id if isinstance(span, Span) else span.get("parent_id")
                )
                if parent is None:
                    self.slow_log.record(span)

"""A process-local metrics registry with Prometheus text exposition.

The serving stack needs counters ("requests answered, by source"), gauges
("cache entries right now") and latency histograms that one scrape endpoint
can render — without taking a dependency on a metrics client library.  This
module is that registry, stdlib-only:

* :class:`Counter` / :class:`Gauge` / :class:`Histogram` — named metrics with
  optional label dimensions.  Every mutation takes the metric's own lock, so
  counters are *exact* under concurrency (no lost increments), which the
  tier-1 suite asserts with 8 hammering threads.
* :class:`MetricsRegistry` — the per-process (or per-service) collection.
  ``counter()``/``gauge()``/``histogram()`` are get-or-create, so independent
  subsystems can name the same metric and share the series.
  :meth:`MetricsRegistry.render` emits the Prometheus text exposition format
  (``# HELP``/``# TYPE`` comments, ``name{label="v"} value`` samples,
  cumulative ``_bucket``/``_sum``/``_count`` histogram series), which is what
  ``GET /metrics`` serves on both HTTP front ends.
* render-time callbacks (:meth:`MetricsRegistry.register_callback`) let
  owners refresh gauges that are cheaper to sample than to track (cache
  size, kernel profile counters) exactly once per scrape.
* :func:`parse_prometheus_text` — the matching parser, used by the
  ``repro top`` CLI and the tests; round-trips everything ``render`` emits.

Histograms use *fixed* bucket boundaries chosen at creation
(:data:`DEFAULT_LATENCY_BUCKETS` spans 0.5 ms – 10 s), so merging scrapes
across processes or over time is just addition — the property Prometheus'
own client enforces for the same reason.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Callable, Iterable, Mapping, Sequence

from repro.exceptions import ObservabilityError

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "labelled",
    "parse_prometheus_text",
]

DEFAULT_LATENCY_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)
"""Default histogram boundaries (seconds): 0.5 ms cache hits to 10 s races."""

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _validate_name(name: str, what: str) -> str:
    if not _NAME_RE.match(name):
        raise ObservabilityError(f"invalid {what} name {name!r}")
    return name


def _format_value(value: float) -> str:
    """A Prometheus sample value: integers without a trailing ``.0``."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class _Metric:
    """Shared machinery of every metric kind: naming, labels, one lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()) -> None:
        self.name = _validate_name(name, "metric")
        self.help = help
        self.labelnames = tuple(_validate_name(label, "label") for label in labelnames)
        if not all(_LABEL_RE.match(label) for label in self.labelnames):
            raise ObservabilityError(f"invalid label names {self.labelnames!r}")
        self._lock = threading.Lock()

    def _key(self, labels: Mapping[str, object]) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ObservabilityError(
                f"metric {self.name!r} takes labels {self.labelnames!r}, "
                f"got {tuple(sorted(labels))!r}"
            )
        return tuple(str(labels[label]) for label in self.labelnames)

    def _render_labels(self, key: tuple[str, ...], extra: str = "") -> str:
        pairs = [
            f'{label}="{_escape_label_value(value)}"'
            for label, value in zip(self.labelnames, key)
        ]
        if extra:
            pairs.append(extra)
        return "{" + ",".join(pairs) + "}" if pairs else ""

    def render(self) -> list[str]:  # pragma: no cover - overridden by every kind
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically non-decreasing sum, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._series: dict[tuple[str, ...], float] = {}  # guarded-by: _lock

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (>= 0); ``inc(0)`` pre-touches a labelled series."""
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc({amount!r}))"
            )
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            return self._series.get(key, 0.0)

    def values(self) -> dict[tuple[str, ...], float]:
        """Every labelled series (``{(): total}`` for an unlabelled counter)."""
        with self._lock:
            return dict(self._series)

    def render(self) -> list[str]:
        with self._lock:
            series = sorted(self._series.items())
        if not series and not self.labelnames:
            series = [((), 0.0)]
        return [
            f"{self.name}{self._render_labels(key)} {_format_value(value)}"
            for key, value in series
        ]


class Gauge(_Metric):
    """A value that goes up and down (pending requests, cache entries)."""

    kind = "gauge"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._series: dict[tuple[str, ...], float] = {}  # guarded-by: _lock

    def set(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            return self._series.get(key, 0.0)

    def render(self) -> list[str]:
        with self._lock:
            series = sorted(self._series.items())
        if not series and not self.labelnames:
            series = [((), 0.0)]
        return [
            f"{self.name}{self._render_labels(key)} {_format_value(value)}"
            for key, value in series
        ]


class Histogram(_Metric):
    """Fixed-bucket cumulative histogram (Prometheus ``_bucket``/``_sum``/``_count``)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        labelnames: Sequence[str] = (),
    ) -> None:
        super().__init__(name, help, labelnames)
        boundaries = tuple(float(bound) for bound in buckets)
        if not boundaries or list(boundaries) != sorted(set(boundaries)):
            raise ObservabilityError(
                f"histogram {name!r} buckets must be strictly increasing, got {buckets!r}"
            )
        self.buckets = boundaries
        # Per label key: ([per-bucket counts..., +Inf count], sum).
        self._series: dict[tuple[str, ...], tuple[list[int], float]] = {}  # guarded-by: _lock

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            entry = self._series.get(key)
            if entry is None:
                entry = ([0] * (len(self.buckets) + 1), 0.0)
                self._series[key] = entry
            counts, total = entry
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[index] += 1
                    break
            else:
                counts[-1] += 1
            self._series[key] = (counts, total + value)

    def snapshot(self, **labels: object) -> dict[str, object]:
        """``{"count", "sum", "buckets": {le: cumulative}}`` of one series."""
        key = self._key(labels)
        with self._lock:
            entry = self._series.get(key)
            counts, total = entry if entry is not None else ([0] * (len(self.buckets) + 1), 0.0)
            counts = list(counts)
        cumulative: dict[float, int] = {}
        running = 0
        for bound, count in zip((*self.buckets, math.inf), counts):
            running += count
            cumulative[bound] = running
        return {"count": running, "sum": total, "buckets": cumulative}

    def render(self) -> list[str]:
        with self._lock:
            series = sorted((key, (list(counts), total)) for key, (counts, total) in self._series.items())
        lines: list[str] = []
        for key, (counts, total) in series:
            running = 0
            for bound, count in zip(self.buckets, counts):
                running += count
                le = 'le="{}"'.format(_format_value(bound))
                lines.append(f"{self.name}_bucket{self._render_labels(key, le)} {running}")
            running += counts[-1]
            inf_label = 'le="+Inf"'
            lines.append(
                f"{self.name}_bucket{self._render_labels(key, inf_label)} {running}"
            )
            lines.append(f"{self.name}_sum{self._render_labels(key)} {_format_value(total)}")
            lines.append(f"{self.name}_count{self._render_labels(key)} {running}")
        return lines


class MetricsRegistry:
    """A named collection of metrics with get-or-create registration."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}  # guarded-by: _lock
        self._callbacks: list[Callable[[], None]] = []  # guarded-by: _lock

    # -- registration ------------------------------------------------------

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        labelnames: Sequence[str] = (),
    ) -> Histogram:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, Histogram) or existing.labelnames != tuple(labelnames):
                    raise ObservabilityError(
                        f"metric {name!r} is already registered as a "
                        f"{existing.kind} with labels {existing.labelnames!r}"
                    )
                return existing
            metric = Histogram(name, help, buckets, labelnames)
            self._metrics[name] = metric
            return metric

    def _get_or_create(self, cls, name: str, help: str, labelnames: Sequence[str]):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                    raise ObservabilityError(
                        f"metric {name!r} is already registered as a "
                        f"{existing.kind} with labels {existing.labelnames!r}"
                    )
                return existing
            metric = cls(name, help, labelnames)
            self._metrics[name] = metric
            return metric

    def get(self, name: str) -> _Metric | None:
        """The registered metric named ``name``, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def register_callback(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` at the start of every :meth:`render` (gauge refresh)."""
        with self._lock:
            self._callbacks.append(callback)

    # -- exposition --------------------------------------------------------

    def render(self) -> str:
        """The whole registry in the Prometheus text exposition format."""
        with self._lock:
            callbacks = list(self._callbacks)
        for callback in callbacks:
            try:
                callback()
            except Exception:  # noqa: BLE001 - a scrape must never fail on a refresh
                pass
        with self._lock:
            metrics = sorted(self._metrics.items())
        lines: list[str] = []
        for name, metric in metrics:
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus_text(
    text: str,
) -> dict[str, dict[tuple[tuple[str, str], ...], float]]:
    """Parse :meth:`MetricsRegistry.render` output (or any Prometheus text).

    Returns ``{metric_name: {((label, value), ...): sample}}``; unlabelled
    samples use the empty tuple as key.  Comment and blank lines are skipped,
    malformed sample lines ignored — the parser serves a live CLI, not a
    validator.
    """
    samples: dict[str, dict[tuple[tuple[str, str], ...], float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            continue
        raw = match.group("value")
        try:
            value = float(raw.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError:
            continue
        labels = tuple(
            (name, text_value.replace('\\"', '"').replace("\\n", "\n").replace("\\\\", "\\"))
            for name, text_value in _LABEL_PAIR_RE.findall(match.group("labels") or "")
        )
        samples.setdefault(match.group("name"), {})[labels] = value
    return samples


def labelled(
    samples: Mapping[tuple[tuple[str, str], ...], float], label: str
) -> dict[str, float]:
    """Collapse one metric's samples onto a single label dimension.

    ``labelled(parsed["repro_router_requests_total"], "shard")`` gives
    ``{"shard-0": 12.0, ...}`` — what ``repro top`` renders.  Samples missing
    the label are skipped; duplicates (other label dims) are summed.
    """
    collapsed: dict[str, float] = {}
    for key, value in samples.items():
        for name, label_value in key:
            if name == label:
                collapsed[label_value] = collapsed.get(label_value, 0.0) + value
                break
    return collapsed

"""repro — optimal service ordering for decentralized pipelined queries.

A production-quality reproduction of

    E. Tsamoura, A. Gounaris, Y. Manolopoulos,
    "Brief Announcement: On the Quest of Optimal Service Ordering in
    Decentralized Queries", PODC 2010.

The package is organised as follows:

* :mod:`repro.core` — the bottleneck cost model, the branch-and-bound
  optimizer built on the paper's three lemmas, and every baseline algorithm.
* :mod:`repro.network` — synthetic network topologies and communication-cost
  matrices (the decentralized substrate).
* :mod:`repro.simulation` — a discrete-event simulator of pipelined
  decentralized (choreographed) query execution.
* :mod:`repro.workloads` — random instance generators and named scenarios.
* :mod:`repro.workflow` — a declarative query layer that lowers SQL-like
  queries over services to ordering problems and choreography instructions.
* :mod:`repro.estimation` — estimating service costs, selectivities and
  transfer costs from observations.
* :mod:`repro.experiments` — the reconstructed evaluation (experiments E1–E8).

Quickstart
----------
>>> from repro import OrderingProblem, CommunicationCostMatrix, optimize
>>> problem = OrderingProblem.from_parameters(
...     costs=[2.0, 1.0, 4.0],
...     selectivities=[0.5, 0.9, 0.3],
...     transfer=CommunicationCostMatrix([[0, 1, 5], [2, 0, 1], [4, 2, 0]]),
... )
>>> result = optimize(problem, algorithm="branch_and_bound")
>>> result.optimal
True
"""

from repro.core import (
    BranchAndBoundOptimizer,
    BranchAndBoundOptions,
    CommunicationCostMatrix,
    GreedyOptimizer,
    GreedyStrategy,
    OptimizationResult,
    OrderingProblem,
    Plan,
    PrecedenceGraph,
    SearchStatistics,
    Service,
    ServiceRegistry,
    available_algorithms,
    branch_and_bound,
    compare,
    optimize,
)
from repro.exceptions import ReproError

__version__ = "1.0.0"

__all__ = [
    "BranchAndBoundOptimizer",
    "BranchAndBoundOptions",
    "CommunicationCostMatrix",
    "GreedyOptimizer",
    "GreedyStrategy",
    "OptimizationResult",
    "OrderingProblem",
    "Plan",
    "PrecedenceGraph",
    "ReproError",
    "SearchStatistics",
    "Service",
    "ServiceRegistry",
    "available_algorithms",
    "branch_and_bound",
    "compare",
    "optimize",
    "__version__",
]

"""The committed baseline: grandfathered findings with written justifications.

A new rule applied to an old codebase surfaces findings that are real but not
*new*; fixing them all before the rule can land would hold correctness
tooling hostage to a cleanup.  The baseline is the escape hatch with
receipts: a committed JSON file listing the findings a rule is allowed to
keep reporting, each with a one-line ``reason``.  ``repro lint`` subtracts
baselined findings from the failure set, so only *new* violations break the
build — while the baseline file itself documents the debt.

Matching deliberately ignores line numbers (see
:attr:`~repro.analysis.model.Finding.baseline_key`): unrelated edits must not
resurrect a grandfathered finding.  ``--baseline-update`` rewrites the file
from the current run, dropping entries that no longer fire and preserving the
reasons of those that persist; fresh entries get a placeholder reason that a
reviewer is expected to replace before committing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.model import Finding

__all__ = ["Baseline", "BaselineEntry", "UNREVIEWED_REASON"]

BASELINE_VERSION = 1

UNREVIEWED_REASON = "TODO: justify this grandfathered finding before committing"
"""Placeholder reason ``--baseline-update`` writes for fresh entries."""


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding and the written reason it is tolerated."""

    rule: str
    path: str
    message: str
    reason: str

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.message)


class Baseline:
    """The set of grandfathered findings, loaded from / saved to JSON."""

    def __init__(self, entries: Sequence[BaselineEntry] = ()) -> None:
        self.entries = list(entries)
        self._by_key = {entry.key: entry for entry in self.entries}

    # -- queries -----------------------------------------------------------

    def match(self, finding: Finding) -> BaselineEntry | None:
        """The entry grandfathering ``finding``, or ``None`` if it is new."""
        return self._by_key.get(finding.baseline_key)

    def __len__(self) -> int:
        return len(self.entries)

    def unjustified(self) -> list[BaselineEntry]:
        """Entries still carrying the placeholder reason."""
        return [
            entry
            for entry in self.entries
            if not entry.reason.strip() or entry.reason == UNREVIEWED_REASON
        ]

    # -- persistence -------------------------------------------------------

    @staticmethod
    def load(path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return Baseline()
        document = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(document, dict) or document.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline file {path}: expected version {BASELINE_VERSION}"
            )
        entries = [
            BaselineEntry(
                rule=str(raw["rule"]),
                path=str(raw["path"]),
                message=str(raw["message"]),
                reason=str(raw.get("reason", "")),
            )
            for raw in document.get("entries", [])
        ]
        return Baseline(entries)

    def save(self, path: Path) -> None:
        document = {
            "version": BASELINE_VERSION,
            "entries": [
                {
                    "rule": entry.rule,
                    "path": entry.path,
                    "message": entry.message,
                    "reason": entry.reason,
                }
                for entry in sorted(self.entries, key=lambda entry: entry.key)
            ],
        }
        path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")

    @staticmethod
    def updated_from(findings: Iterable[Finding], previous: "Baseline") -> "Baseline":
        """A fresh baseline grandfathering exactly ``findings``.

        Reasons of persisting entries are preserved; entries whose finding no
        longer fires are dropped; new entries get :data:`UNREVIEWED_REASON`.
        """
        entries = []
        seen: set[tuple[str, str, str]] = set()
        for finding in findings:
            if finding.baseline_key in seen:
                continue
            seen.add(finding.baseline_key)
            existing = previous.match(finding)
            entries.append(
                BaselineEntry(
                    rule=finding.rule,
                    path=finding.path,
                    message=finding.message,
                    reason=existing.reason if existing is not None else UNREVIEWED_REASON,
                )
            )
        return Baseline(entries)

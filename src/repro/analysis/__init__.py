"""``repro.analysis`` — the stack's own static-analysis engine.

A stdlib-only AST lint that encodes the invariants this codebase has
actually bled for: no blocking calls on the event loop, monotonic clocks
for durations, lock discipline for annotated shared state, optional-numpy
hygiene, fork safety, wire-codec parity, seeded randomness, and span
hygiene.  See ``repro lint --help`` and the README's "Static analysis"
section; the package passes its own lint.
"""

from repro.analysis.baseline import Baseline, BaselineEntry, UNREVIEWED_REASON
from repro.analysis.engine import Checker, LintReport, discover_files, run_lint
from repro.analysis.index import FunctionScopeVisitor, Module, ModuleIndex
from repro.analysis.model import Finding, Severity
from repro.analysis.suppress import Suppression, parse_directives, suppressed_rules

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Checker",
    "Finding",
    "FunctionScopeVisitor",
    "LintReport",
    "Module",
    "ModuleIndex",
    "Severity",
    "Suppression",
    "UNREVIEWED_REASON",
    "discover_files",
    "parse_directives",
    "run_lint",
    "suppressed_rules",
]

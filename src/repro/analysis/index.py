"""A parsed-once module index: ASTs, comments, imports, name resolution.

Every checker needs the same ground truth — the parse tree of each file, the
comments (Python's AST drops them), which names are bound to which imported
modules, and which lines carry code.  The :class:`ModuleIndex` computes all
of it exactly once per file and hands checkers :class:`Module` records, so a
lint run over N files with M rules costs N parses, not N×M.

Name resolution is the piece that makes rules robust against aliasing: a
checker asking "is this call ``time.time()``?" must also catch
``import time as t; t.time()`` and ``from time import time; time()``.
:meth:`Module.resolve` folds a ``Name``/``Attribute`` chain into a dotted
path through the module's import table (collected from *every* import
statement in the file, including function-local lazy imports), so rule
specifications are written once, against canonical dotted names.
"""

from __future__ import annotations

import ast
import io
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.model import Finding, Severity
from repro.analysis.suppress import Suppression, parse_directives

__all__ = ["Module", "ModuleIndex", "FunctionScopeVisitor"]


def _collect_comments(source: str) -> tuple[dict[int, str], frozenset[int]]:
    """``({line: comment_text}, lines_with_code)`` via the tokenizer.

    Comment text excludes the leading ``#``.  A tokenization error (the file
    already failed to parse, or a stray control character) degrades to "no
    comments" — the caller reports the parse failure separately.
    """
    comments: dict[int, str] = {}
    code_lines: set[int] = set()
    boring = {
        tokenize.COMMENT,
        tokenize.NL,
        tokenize.NEWLINE,
        tokenize.INDENT,
        tokenize.DEDENT,
        tokenize.ENCODING,
        tokenize.ENDMARKER,
    }
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string.lstrip("#")
            elif token.type not in boring:
                for line in range(token.start[0], token.end[0] + 1):
                    code_lines.add(line)
    except (tokenize.TokenError, IndentationError):
        pass
    return comments, frozenset(code_lines)


@dataclass
class Module:
    """One indexed source file."""

    path: Path
    """Absolute path on disk."""

    rel: str
    """Path relative to the lint root, ``/``-separated (finding coordinates)."""

    dotted: str
    """Best-effort dotted module name (``repro.obs.trace``), for relative imports."""

    source: str
    tree: ast.Module
    comments: dict[int, str]
    """Line → comment text (without the leading ``#``)."""

    code_lines: frozenset[int]
    """Lines carrying non-comment source."""

    suppressions: list[Suppression]
    aliases: dict[str, str] = field(default_factory=dict)
    """Local binding → dotted import path (``np`` → ``numpy``)."""

    def resolve(self, node: ast.AST) -> str | None:
        """Fold a ``Name``/``Attribute`` chain into a dotted path, or ``None``.

        The chain's root ``Name`` goes through the import table; an unimported
        root resolves to its bare id (so builtins like ``open`` resolve), and
        anything rooted in a non-name expression (``self.x``, a call result,
        a subscript) resolves to ``None`` — the checker then falls back to
        method-name heuristics if it has any.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def comment_in_range(self, first: int, last: int, marker: str) -> str | None:
        """The first comment between lines ``first``..``last`` containing ``marker``."""
        for line in range(first, last + 1):
            text = self.comments.get(line)
            if text is not None and marker in text:
                return text
        return None


def _module_dotted_name(rel: str) -> str:
    """``src/repro/obs/trace.py`` → ``repro.obs.trace`` (best effort)."""
    parts = rel.split("/")
    if parts and parts[0] in ("src", "lib"):
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part)


def _collect_aliases(tree: ast.Module, dotted: str) -> dict[str, str]:
    """Every import binding in the file, including function-local ones."""
    aliases: dict[str, str] = {}
    package_parts = dotted.split(".")[:-1] if dotted else []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.asname is not None:
                    aliases[name.asname] = name.name
                else:
                    # ``import a.b`` binds ``a``; resolve(a.b.c) then walks
                    # the attribute chain back onto the dotted path.
                    aliases[name.name.split(".")[0]] = name.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = package_parts[: len(package_parts) - node.level + 1]
                base = ".".join(base_parts + ([node.module] if node.module else []))
            else:
                base = node.module or ""
            for name in node.names:
                if name.name == "*":
                    continue
                bound = name.asname if name.asname is not None else name.name
                aliases[bound] = f"{base}.{name.name}" if base else name.name
    return aliases


class ModuleIndex:
    """The parsed-once collection of every file under lint."""

    def __init__(self, modules: list[Module], errors: list[Finding]) -> None:
        self.modules = modules
        self.errors = errors
        """Files that failed to parse (reported as ``LINT000`` findings)."""

    @staticmethod
    def build(files: Iterable[Path], root: Path) -> "ModuleIndex":
        modules: list[Module] = []
        errors: list[Finding] = []
        for path in sorted(files):
            rel = path.resolve().relative_to(root.resolve()).as_posix()
            try:
                source = path.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=str(path))
            except (OSError, SyntaxError, ValueError) as error:
                errors.append(
                    Finding(
                        rule="LINT000",
                        path=rel,
                        line=getattr(error, "lineno", None) or 1,
                        message=f"cannot parse: {error}",
                        severity=Severity.ERROR,
                    )
                )
                continue
            comments, code_lines = _collect_comments(source)
            suppressions, malformed = parse_directives(comments, code_lines, rel)
            errors.extend(malformed)
            dotted = _module_dotted_name(rel)
            modules.append(
                Module(
                    path=path,
                    rel=rel,
                    dotted=dotted,
                    source=source,
                    tree=tree,
                    comments=comments,
                    code_lines=code_lines,
                    suppressions=suppressions,
                    aliases=_collect_aliases(tree, dotted),
                )
            )
        return ModuleIndex(modules, errors)

    def __iter__(self) -> Iterator[Module]:
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)


class FunctionScopeVisitor(ast.NodeVisitor):
    """A visitor base that tracks the function-definition stack.

    Checkers that care about *where* a node sits — inside an ``async def``,
    at module import time, nested in a closure — subclass this and read
    :attr:`stack` / :meth:`in_async` / :meth:`at_module_level` instead of
    re-implementing the bookkeeping.
    """

    def __init__(self) -> None:
        self.stack: list[ast.AST] = []

    # -- scope queries -----------------------------------------------------

    def in_async(self) -> bool:
        """Inside an ``async def`` body, with no sync def/lambda in between.

        Code in a nested sync function is *defined* on the loop but runs
        wherever it is called (typically an executor), so only the innermost
        function kind decides.
        """
        for node in reversed(self.stack):
            if isinstance(node, ast.AsyncFunctionDef):
                return True
            if isinstance(node, (ast.FunctionDef, ast.Lambda)):
                return False
        return False

    def at_module_level(self) -> bool:
        """Outside every function body (class bodies run at import time too)."""
        return not any(
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
            for node in self.stack
        )

    # -- traversal ---------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_scope(node)

    def _visit_scope(self, node: ast.AST) -> None:
        self.stack.append(node)
        try:
            self.generic_visit(node)
        finally:
            self.stack.pop()

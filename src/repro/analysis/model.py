"""The findings model of the static-analysis engine.

A finding is one violated invariant at one source location: the rule that
fired, a severity, ``path:line``, a message saying *what* is wrong and a fix
hint saying *what to do about it*.  Findings are value objects — hashable,
totally ordered by location — so the engine can diff a run against a
baseline, deduplicate, and render deterministically.

Severities carry the exit-code policy: ``ERROR`` and ``WARNING`` findings
fail a lint run, ``INFO`` findings (the advisory rules, e.g. the RL009
dead-symbol report) never do.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["Finding", "Severity"]


class Severity(enum.Enum):
    """How hard a rule's finding fails a lint run."""

    ERROR = "error"
    """A violated invariant the codebase has bled for; fails the run."""

    WARNING = "warning"
    """A suspicious pattern worth a human look; fails the run."""

    INFO = "info"
    """Advisory output (reports, sweeps); never fails the run."""

    @property
    def fails(self) -> bool:
        """Whether a finding of this severity makes ``repro lint`` exit non-zero."""
        return self is not Severity.INFO


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    """Rule identifier, e.g. ``"RL002"`` (or ``"LINT000"`` for engine errors)."""

    path: str
    """Path of the offending file, relative to the lint root, ``/``-separated."""

    line: int
    """1-based source line the finding anchors to."""

    message: str
    """What is wrong, specifically (drives baseline matching — keep stable)."""

    severity: Severity = Severity.ERROR
    """How hard this finding fails the run."""

    hint: str = ""
    """What to do about it (fix recipe, or the suppression to justify)."""

    column: int = field(default=0, compare=False)
    """0-based column offset (display only; excluded from identity)."""

    @property
    def location(self) -> str:
        """``path:line`` for text rendering."""
        return f"{self.path}:{self.line}"

    @property
    def baseline_key(self) -> tuple[str, str, str]:
        """Identity used to match against baseline entries.

        Deliberately excludes the line number: a baselined finding must not
        resurface because unrelated edits shifted the file.
        """
        return (self.rule, self.path, self.message)

    def sort_key(self) -> tuple[str, int, str, str]:
        return (self.path, self.line, self.rule, self.message)

    def to_dict(self) -> dict[str, Any]:
        """Flatten for ``--format json`` output."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "hint": self.hint,
        }

    @staticmethod
    def from_dict(document: Mapping[str, Any]) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output."""
        return Finding(
            rule=str(document["rule"]),
            path=str(document["path"]),
            line=int(document["line"]),
            message=str(document["message"]),
            severity=Severity(document.get("severity", "error")),
            hint=str(document.get("hint", "")),
            column=int(document.get("column", 0)),
        )

    def render(self) -> str:
        """One text-format line: ``path:line: RULE severity: message``."""
        text = f"{self.location}: {self.rule} {self.severity.value}: {self.message}"
        if self.hint:
            text += f"  [{self.hint}]"
        return text

"""The lint engine: run every checker over a parsed-once index, report.

The engine owns everything rule-agnostic: file discovery, the
:class:`~repro.analysis.index.ModuleIndex` build, applying inline
suppressions (:mod:`repro.analysis.suppress`), subtracting the committed
baseline (:mod:`repro.analysis.baseline`), and rendering text/JSON reports.
Checkers are plugins behind the :class:`Checker` protocol — a rule id, a
severity, and a ``check(module, index)`` generator — registered in
:mod:`repro.analysis.checkers`.

The exit-code contract (what CI keys on): a run **fails** iff it produced at
least one finding that is neither suppressed nor baselined and whose severity
fails (:attr:`~repro.analysis.model.Severity.fails` — ``info`` rules never
fail a run).  Suppressed and baselined findings are counted, not printed, so
a clean run's output stays one summary line.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Protocol, Sequence

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.index import Module, ModuleIndex
from repro.analysis.model import Finding, Severity
from repro.analysis.suppress import ENGINE_RULE, suppressed_rules

__all__ = ["Checker", "LintReport", "run_lint", "discover_files"]


class Checker(Protocol):
    """The pluggable rule interface."""

    rule: str
    """Rule identifier (``"RL001"``)."""

    name: str
    """Short slug (``"no-blocking-in-async"``)."""

    description: str
    """One line: the invariant this rule encodes."""

    severity: Severity
    """Default severity of this rule's findings."""

    default: bool
    """Whether the rule runs without an explicit ``--rule`` selection."""

    def check(self, module: Module, index: ModuleIndex) -> Iterable[Finding]:
        """Yield findings for one module (the index serves cross-file rules)."""
        ...


@dataclass
class LintReport:
    """Outcome of one lint run."""

    root: str
    files: int
    findings: list[Finding]
    """Active findings: not suppressed, not baselined; sorted by location."""

    suppressed: int
    """Findings silenced by inline directives."""

    baselined: list[tuple[Finding, BaselineEntry]]
    """Findings matched (and silenced) by the committed baseline."""

    rules_run: list[str] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        """Whether this run should exit non-zero."""
        return any(finding.severity.fails for finding in self.findings)

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    # -- rendering ---------------------------------------------------------

    def render_text(self) -> str:
        lines = [finding.render() for finding in self.findings]
        by_rule = ", ".join(f"{rule}={count}" for rule, count in self.by_rule().items())
        lines.append(
            f"repro lint: {len(self.findings)} finding(s)"
            + (f" [{by_rule}]" if by_rule else "")
            + f", {self.suppressed} suppressed, {len(self.baselined)} baselined, "
            f"{self.files} file(s), rules: {', '.join(self.rules_run)}"
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        document = {
            "version": 1,
            "root": self.root,
            "files": self.files,
            "rules": list(self.rules_run),
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressed": self.suppressed,
            "baselined": [
                {**finding.to_dict(), "reason": entry.reason}
                for finding, entry in self.baselined
            ],
            "summary": {"by_rule": self.by_rule(), "failed": self.failed},
        }
        return json.dumps(document, indent=2)


def discover_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into the ``.py`` files to lint."""
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if "__pycache__" not in candidate.parts
            )
        elif path.suffix == ".py":
            files.append(path)
    return files


def run_lint(
    paths: Sequence[Path],
    *,
    root: Path,
    checkers: Sequence[Checker],
    rules: Sequence[str] | None = None,
    baseline: Baseline | None = None,
) -> LintReport:
    """Lint ``paths`` with ``checkers`` and return the report.

    ``rules`` narrows the run to the named rule ids (and implicitly enables
    non-default rules like the RL009 dead-symbol report); ``None`` runs every
    default checker.  Engine findings (parse failures, malformed or
    unknown-rule suppression directives) are always reported — broken lint
    metadata must never silence itself.
    """
    known_rules = {checker.rule for checker in checkers} | {ENGINE_RULE}
    if rules is not None:
        unknown = sorted(set(rules) - known_rules)
        if unknown:
            raise ValueError(
                f"unknown rule id(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known_rules))}"
            )
        selected = [checker for checker in checkers if checker.rule in set(rules)]
    else:
        selected = [checker for checker in checkers if checker.default]

    index = ModuleIndex.build(discover_files(paths), root)
    collected: list[Finding] = list(index.errors)
    for module in index:
        for checker in selected:
            collected.extend(checker.check(module, index))
        # Directive hygiene: a suppression naming a rule the engine does not
        # know is a typo that would silence nothing — report it.
        for suppression in module.suppressions:
            for rule in suppression.rules:
                if rule not in known_rules:
                    collected.append(
                        Finding(
                            rule=ENGINE_RULE,
                            path=module.rel,
                            line=suppression.comment_line,
                            message=f"suppression names unknown rule {rule!r}",
                            severity=Severity.ERROR,
                            hint=f"known rules: {', '.join(sorted(known_rules))}",
                        )
                    )

    suppression_map = {
        module.rel: suppressed_rules(module.suppressions) for module in index
    }
    baseline = baseline if baseline is not None else Baseline()
    active: list[Finding] = []
    suppressed = 0
    baselined: list[tuple[Finding, BaselineEntry]] = []
    for finding in collected:
        silenced = suppression_map.get(finding.path, {}).get(finding.line, set())
        if finding.rule in silenced and finding.rule != ENGINE_RULE:
            suppressed += 1
            continue
        entry = baseline.match(finding)
        if entry is not None:
            baselined.append((finding, entry))
            continue
        active.append(finding)
    active.sort(key=Finding.sort_key)
    return LintReport(
        root=str(root),
        files=len(index),
        findings=active,
        suppressed=suppressed,
        baselined=baselined,
        rules_run=sorted(checker.rule for checker in selected),
    )

"""RL007 — seeded randomness in the deterministic directories.

The optimizer's results must be reproducible run-to-run: benchmark deltas,
golden-file tests, and cross-shard consistency all assume that the same
problem yields the same plan.  A call to the *module-level* ``random``
functions (``random.random()``, ``random.choice()``, ...) consults the
process-global, time-seeded RNG — nondeterminism that silently leaks into
plans and metrics.  Inside ``core/``, ``serving/`` and ``parallel/`` the
sanctioned spelling is an explicit ``random.Random(seed)`` instance threaded
from the caller (see ``ServingMetrics``'s reservoir), so this rule bans the
module-level functions there, through any alias, including
``numpy.random.*`` (``default_rng(seed)`` is the allowed numpy form).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.index import Module, ModuleIndex
from repro.analysis.model import Finding, Severity

__all__ = ["SeededRandomnessChecker"]

_SCOPED_DIRS = frozenset({"core", "serving", "parallel"})

_ALLOWED = frozenset(
    {
        "random.Random",
        "random.SystemRandom",
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.SeedSequence",
        "numpy.random.RandomState",
    }
)


class SeededRandomnessChecker:
    rule = "RL007"
    name = "seeded-randomness"
    description = "core/serving/parallel must use seeded RNG instances, not the global RNG"
    severity = Severity.ERROR
    default = True

    def check(self, module: Module, index: ModuleIndex) -> Iterable[Finding]:
        if not _SCOPED_DIRS & set(module.rel.split("/")):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = module.resolve(node.func)
            if resolved is None or resolved in _ALLOWED:
                continue
            if resolved.startswith("random.") or resolved.startswith("numpy.random."):
                yield Finding(
                    rule=self.rule,
                    path=module.rel,
                    line=node.lineno,
                    message=f"global-RNG call {resolved}() in deterministic code",
                    hint="thread a seeded random.Random(seed) instance from the caller",
                    column=node.col_offset,
                )

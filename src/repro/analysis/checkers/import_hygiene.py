"""RL004 — optional-dependency (numpy) import hygiene.

The stack runs dependency-free by design: numpy is an *optional*
acceleration, resolved once by ``core/vector.py`` behind a guarded
``try/except ImportError`` and selected through ``resolve_kernel``.  A bare
``import numpy`` anywhere else turns the optional dependency into a hard one
the moment that module is imported — exactly the regression the no-numpy CI
matrix exists to catch, but only at whatever line the matrix happens to
execute.  This rule catches it at lint time, everywhere.

An import is *guarded* when it sits inside a ``try`` whose handlers catch
``ImportError`` (or ``ModuleNotFoundError``/``Exception``).  Function-local
imports on vector-only code paths — reachable only after ``resolve_kernel``
already proved numpy importable — are legitimate but still flagged, and
carry inline suppressions saying exactly that.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.index import Module, ModuleIndex
from repro.analysis.model import Finding, Severity

__all__ = ["ImportHygieneChecker"]

_GUARD_EXCEPTIONS = {"ImportError", "ModuleNotFoundError", "Exception"}


def _handler_guards(handler: ast.ExceptHandler) -> bool:
    names: list[ast.expr] = []
    if handler.type is None:
        return True  # bare except catches ImportError too
    if isinstance(handler.type, ast.Tuple):
        names.extend(handler.type.elts)
    else:
        names.append(handler.type)
    return any(
        isinstance(name, ast.Name) and name.id in _GUARD_EXCEPTIONS
        for name in names
    )


def _imports_numpy(node: ast.Import | ast.ImportFrom) -> bool:
    if isinstance(node, ast.Import):
        return any(
            alias.name == "numpy" or alias.name.startswith("numpy.")
            for alias in node.names
        )
    module = node.module or ""
    return module == "numpy" or module.startswith("numpy.")


class ImportHygieneChecker:
    rule = "RL004"
    name = "optional-import-hygiene"
    description = "numpy imports must sit inside a try/except ImportError guard"
    severity = Severity.ERROR
    default = True

    def check(self, module: Module, index: ModuleIndex) -> Iterable[Finding]:
        findings: list[Finding] = []
        self._walk(module, module.tree, False, findings)
        return findings

    def _walk(
        self, module: Module, node: ast.AST, guarded: bool, findings: list[Finding]
    ) -> None:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            if _imports_numpy(node) and not guarded:
                findings.append(
                    Finding(
                        rule=self.rule,
                        path=module.rel,
                        line=node.lineno,
                        message="unguarded numpy import outside a try/except ImportError",
                        hint=(
                            "route through repro.core.vector's guarded import, or "
                            "suppress with a reason if the path is vector-only"
                        ),
                        column=node.col_offset,
                    )
                )
            return
        if isinstance(node, ast.Try):
            guards = any(_handler_guards(handler) for handler in node.handlers)
            for child in node.body:
                self._walk(module, child, guarded or guards, findings)
            for handler in node.handlers:
                for child in handler.body:
                    self._walk(module, child, guarded, findings)
            for child in node.orelse + node.finalbody:
                self._walk(module, child, guarded, findings)
            return
        for child in ast.iter_child_nodes(node):
            self._walk(module, child, guarded, findings)

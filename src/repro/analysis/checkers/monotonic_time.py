"""RL002 — durations and deadlines use the monotonic clock.

``time.time()`` is wall-clock: NTP slews and steps move it backwards and
forwards, so every elapsed-time subtraction and every deadline comparison
built on it is silently wrong on the machines where it matters.  The stack's
budget enforcement (optimizer budgets, cache TTLs, admission deadlines,
span durations) must use ``time.monotonic()`` / ``time.perf_counter()``.

The rule flags **every** ``time.time()`` call, through any alias.  The rare
legitimate wall-clock use — an epoch timestamp that leaves the process, like
a span's start time in the trace wire format — carries an inline
suppression whose reason documents exactly that.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.index import Module, ModuleIndex
from repro.analysis.model import Finding, Severity

__all__ = ["MonotonicTimeChecker"]


class MonotonicTimeChecker:
    rule = "RL002"
    name = "monotonic-time"
    description = "time.time() is banned for durations/deadlines; use time.monotonic()"
    severity = Severity.ERROR
    default = True

    def check(self, module: Module, index: ModuleIndex) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and module.resolve(node.func) == "time.time"
            ):
                yield Finding(
                    rule=self.rule,
                    path=module.rel,
                    line=node.lineno,
                    message="time.time() used; wall-clock is wrong for durations/deadlines",
                    hint=(
                        "use time.monotonic() or time.perf_counter(); if this is a "
                        "deliberate epoch timestamp, suppress with a reason"
                    ),
                    column=node.col_offset,
                )

"""RL005 — fork safety: no import-time concurrency, no bare mp primitives.

Two invariants the process-shard stack depends on:

* **No thread or process is created at import time.**  ``fork``-start
  children re-import modules; a module that spins up a thread on import
  deadlocks or duplicates work inside every spawned shard.  Workers must be
  created inside functions, on demand.
* **Multiprocessing primitives come from an explicit context.**  A bare
  ``multiprocessing.Process(...)`` / ``multiprocessing.Queue()`` binds to
  the platform default start method, which differs across OSes and fights
  the ``preferred_context`` threading the sharding layer does deliberately.
  ``context.Process(...)`` / ``context.Queue()`` (an mp context threaded
  through) is the sanctioned spelling.  ``multiprocessing.Pipe`` is exempt:
  a pipe is start-method independent and the multiplexer uses it directly.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.index import FunctionScopeVisitor, Module, ModuleIndex
from repro.analysis.model import Finding, Severity

__all__ = ["ForkSafetyChecker"]

_IMPORT_TIME_WORKERS = frozenset(
    {
        "threading.Thread",
        "threading.Timer",
        "multiprocessing.Process",
        "multiprocessing.Pool",
        "concurrent.futures.ThreadPoolExecutor",
        "concurrent.futures.ProcessPoolExecutor",
        "os.fork",
    }
)

_BARE_MP_PRIMITIVES = frozenset(
    {
        "multiprocessing.Process",
        "multiprocessing.Queue",
        "multiprocessing.SimpleQueue",
        "multiprocessing.JoinableQueue",
        "multiprocessing.Pool",
        "multiprocessing.Manager",
    }
)


class _Visitor(FunctionScopeVisitor):
    def __init__(self, module: Module) -> None:
        super().__init__()
        self.module = module
        self.findings: list[Finding] = []

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.module.resolve(node.func)
        if resolved in _IMPORT_TIME_WORKERS and self.at_module_level():
            self.findings.append(
                Finding(
                    rule="RL005",
                    path=self.module.rel,
                    line=node.lineno,
                    message=f"{resolved}() creates a worker at import time",
                    hint="create threads/processes inside functions, on demand",
                    column=node.col_offset,
                )
            )
        elif resolved in _BARE_MP_PRIMITIVES:
            self.findings.append(
                Finding(
                    rule="RL005",
                    path=self.module.rel,
                    line=node.lineno,
                    message=(
                        f"bare {resolved}() binds the platform-default start method"
                    ),
                    hint=(
                        "thread an mp context through (preferred_context / "
                        "get_context) and call context."
                        f"{resolved.rsplit('.', 1)[1]}(...)"
                    ),
                    column=node.col_offset,
                )
            )
        self.generic_visit(node)


class ForkSafetyChecker:
    rule = "RL005"
    name = "fork-safety"
    description = "no import-time worker creation; mp primitives via explicit contexts"
    severity = Severity.ERROR
    default = True

    def check(self, module: Module, index: ModuleIndex) -> Iterable[Finding]:
        visitor = _Visitor(module)
        visitor.visit(module.tree)
        return visitor.findings

"""RL001 — no blocking calls on the event loop.

The async front end (:mod:`repro.serving.aserver`) exists so that request
lifecycles complete as loop futures with zero bridge threads; a single
blocking call inside an ``async def`` stalls *every* in-flight request, not
just its own.  The repo's convention is explicit: blocking work rides
``run_in_executor`` (or the native async shard path), never the loop.

Two detection tiers:

* **resolved calls** — canonical dotted names known to block
  (``time.sleep``, ``subprocess.run``, ``open``, ...), caught through any
  import alias;
* **method heuristics** — attribute calls not rooted in an imported module
  but whose names are blocking verbs in this codebase (``future.result()``,
  ``connection.recv()``, ``service.optimize_batch()``).

Code inside a *nested sync def* is exempt (it is defined on the loop but
runs wherever it is called, typically an executor thread), and so is a call
that is directly awaited (``await loop.run_in_executor(...)``).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.index import FunctionScopeVisitor, Module, ModuleIndex
from repro.analysis.model import Finding, Severity

__all__ = ["AsyncBlockingChecker"]

BLOCKING_RESOLVED = frozenset(
    {
        "time.sleep",
        "select.select",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "socket.create_connection",
        "urllib.request.urlopen",
        "open",
        "input",
    }
)

BLOCKING_METHODS = frozenset(
    {"result", "acquire", "recv", "recv_bytes", "optimize", "optimize_batch"}
)


class _Visitor(FunctionScopeVisitor):
    def __init__(self, module: Module) -> None:
        super().__init__()
        self.module = module
        self.findings: list[Finding] = []
        self.awaited = {
            id(node.value)
            for node in ast.walk(module.tree)
            if isinstance(node, ast.Await)
        }

    def visit_Call(self, node: ast.Call) -> None:
        if self.in_async() and id(node) not in self.awaited:
            resolved = self.module.resolve(node.func)
            if resolved in BLOCKING_RESOLVED:
                self.findings.append(
                    Finding(
                        rule="RL001",
                        path=self.module.rel,
                        line=node.lineno,
                        message=f"blocking call {resolved}() inside an async function",
                        hint="bridge via loop.run_in_executor or use the async variant",
                        column=node.col_offset,
                    )
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in BLOCKING_METHODS
                and not self._rooted_in_import(node.func)
            ):
                self.findings.append(
                    Finding(
                        rule="RL001",
                        path=self.module.rel,
                        line=node.lineno,
                        message=(
                            f"potentially blocking method .{node.func.attr}() "
                            "inside an async function"
                        ),
                        hint="await the async variant, or bridge via run_in_executor",
                        column=node.col_offset,
                    )
                )
        self.generic_visit(node)

    def _rooted_in_import(self, func: ast.Attribute) -> bool:
        """Whether the call chain starts at an imported module/name.

        ``future.result()`` (a local variable) stays eligible for the method
        heuristic; ``module.result()`` where ``module`` was imported is a
        module-level function and only :data:`BLOCKING_RESOLVED` may flag it.
        """
        node: ast.AST = func
        while isinstance(node, ast.Attribute):
            node = node.value
        return isinstance(node, ast.Name) and node.id in self.module.aliases


class AsyncBlockingChecker:
    rule = "RL001"
    name = "no-blocking-in-async"
    description = "async def bodies must not make blocking calls on the event loop"
    severity = Severity.ERROR
    default = True

    def check(self, module: Module, index: ModuleIndex) -> Iterable[Finding]:
        visitor = _Visitor(module)
        visitor.visit(module.tree)
        return visitor.findings

"""RL008 — span hygiene: traces enter scopes correctly and survive hand-offs.

``trace_span`` is a context manager whose exit records the duration and
re-parents the ambient activation; calling it without ``with`` opens a span
that never closes and corrupts the parent chain for everything after it.
And because the activation rides a ``contextvar``, it does *not* follow work
onto pool threads — the repo's convention (see the shard router and the
portfolio racer) is ``context = capture()`` in the submitting scope, passed
into the closure's ``trace_span(..., context=context)``.

Three findings:

* a ``trace_span(...)`` call that is not the context expression of a
  ``with`` statement;
* a bare ``capture()`` expression statement — the captured activation is
  discarded, so the hand-off it exists for never happens;
* a closure handed to a worker (``pool.submit(closure, ...)`` or
  ``Thread(target=closure)``) that opens spans *without* an explicit
  ``context=`` argument — those spans would parent onto whatever trace the
  worker thread last saw.  Re-entering the trace with
  ``with activate_trace(...):`` around the span (the process-shard loop's
  hand-off, where the trace arrives over the wire) satisfies the rule too.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.index import Module, ModuleIndex
from repro.analysis.model import Finding, Severity

__all__ = ["SpanHygieneChecker"]

_FuncDef = ast.FunctionDef | ast.AsyncFunctionDef


def _is_trace_span(resolved: str | None) -> bool:
    return resolved is not None and (
        resolved == "trace_span" or resolved.endswith(".trace_span")
    )


def _is_capture(resolved: str | None) -> bool:
    return resolved is not None and (
        resolved == "capture" or resolved.endswith(".capture")
    )


def _is_activate(resolved: str | None) -> bool:
    return resolved is not None and (
        resolved == "activate_trace" or resolved.endswith(".activate_trace")
    )


def _submitted_names(func: _FuncDef, module: Module) -> set[str]:
    """Names handed to worker threads inside ``func``."""
    names: set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        handoff = (
            isinstance(node.func, ast.Attribute) and node.func.attr == "submit"
        ) or module.resolve(node.func) in ("threading.Thread", "threading.Timer")
        if not handoff:
            continue
        for arg in node.args:
            if isinstance(arg, ast.Name):
                names.add(arg.id)
        for keyword in node.keywords:
            if keyword.arg == "target" and isinstance(keyword.value, ast.Name):
                names.add(keyword.value.id)
    return names


class SpanHygieneChecker:
    rule = "RL008"
    name = "span-hygiene"
    description = "trace_span used as a context manager; explicit context across threads"
    severity = Severity.ERROR
    default = True

    def check(self, module: Module, index: ModuleIndex) -> Iterable[Finding]:
        findings: list[Finding] = []
        with_items = {
            id(item.context_expr)
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.With, ast.AsyncWith))
            for item in node.items
        }
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and _is_trace_span(module.resolve(node.func)):
                if id(node) not in with_items:
                    findings.append(
                        Finding(
                            rule=self.rule,
                            path=module.rel,
                            line=node.lineno,
                            message="trace_span(...) not entered as a context manager",
                            hint="use 'with trace_span(...):' so the span closes",
                            column=node.col_offset,
                        )
                    )
            elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                if _is_capture(module.resolve(node.value.func)):
                    findings.append(
                        Finding(
                            rule=self.rule,
                            path=module.rel,
                            line=node.lineno,
                            message="capture() result discarded",
                            hint="bind it and pass context=... into the worker's spans",
                            column=node.col_offset,
                        )
                    )
        self._check_handoffs(module, findings)
        return findings

    def _check_handoffs(self, module: Module, findings: list[Finding]) -> None:
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            submitted = _submitted_names(func, module)
            if not submitted:
                continue
            for nested in ast.walk(func):
                if (
                    not isinstance(nested, (ast.FunctionDef, ast.AsyncFunctionDef))
                    or nested is func
                    or nested.name not in submitted
                ):
                    continue
                self._scan_closure(module, nested, nested, False, findings)

    def _scan_closure(
        self,
        module: Module,
        nested: _FuncDef,
        node: ast.AST,
        activated: bool,
        findings: list[Finding],
    ) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            activated = activated or any(
                isinstance(item.context_expr, ast.Call)
                and _is_activate(module.resolve(item.context_expr.func))
                for item in node.items
            )
        elif (
            not activated
            and isinstance(node, ast.Call)
            and _is_trace_span(module.resolve(node.func))
            and not any(kw.arg == "context" for kw in node.keywords)
        ):
            findings.append(
                Finding(
                    rule=self.rule,
                    path=module.rel,
                    line=node.lineno,
                    message=(
                        f"closure {nested.name!r} handed to a worker "
                        "thread opens a span without explicit context"
                    ),
                    hint=(
                        "capture() in the submitting scope and pass context=... "
                        "into trace_span, or re-enter via activate_trace"
                    ),
                    column=node.col_offset,
                )
            )
        for child in ast.iter_child_nodes(node):
            self._scan_closure(module, nested, child, activated, findings)

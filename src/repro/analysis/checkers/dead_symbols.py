"""RL009 — informational dead-symbol report: unreferenced public helpers.

A growing codebase accretes public helpers whose last caller was deleted
two refactors ago; they cost review attention and imply API surface nobody
depends on.  This rule reports module-level public symbols (functions and
classes not prefixed ``_``, outside ``__init__.py`` re-export modules) that
have **zero references** anywhere in the linted tree — no ``Name`` load, no
attribute access, no ``from x import y``, no ``__all__`` listing.
References inside ``__init__.py`` modules do not count: re-export plumbing
keeps a symbol importable, not used — a helper alive only through its
package's ``__init__`` is exactly the orphan this rule exists to surface
(the sweep that introduced it deleted ``validate_order`` on those grounds).

It is *informational* (never fails a run) and off by default — enable with
``repro lint --rule RL009``, and lint ``src`` and ``tests`` together so
test-only usage counts before deleting anything.  Framework entry points are
exempt (``test_*``/``Test*`` collected by pytest, ``main`` invoked by
runners), and pytest fixtures count as referenced through the parameter
names that request them.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.index import Module, ModuleIndex
from repro.analysis.model import Finding, Severity

__all__ = ["DeadSymbolChecker"]


class DeadSymbolChecker:
    rule = "RL009"
    name = "unused-public-helper"
    description = "report module-level public symbols with zero references (advisory)"
    severity = Severity.INFO
    default = False

    def __init__(self) -> None:
        self._cache: tuple[int, dict[str, int]] | None = None

    def check(self, module: Module, index: ModuleIndex) -> Iterable[Finding]:
        if module.rel.endswith("__init__.py"):
            return
        references = self._references(index)
        for stmt in module.tree.body:
            if not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if stmt.name.startswith("_"):
                continue
            if (
                stmt.name.startswith(("test_", "Test"))
                or stmt.name == "main"
            ):
                continue  # framework entry point: discovered, not referenced
            if references.get(stmt.name, 0) == 0:
                kind = "class" if isinstance(stmt, ast.ClassDef) else "function"
                yield Finding(
                    rule=self.rule,
                    path=module.rel,
                    line=stmt.lineno,
                    message=f"public {kind} {stmt.name!r} has no references in the linted tree",
                    severity=Severity.INFO,
                    hint="delete it, mark it private, or lint a wider tree (src tests)",
                )

    def _references(self, index: ModuleIndex) -> dict[str, int]:
        """Name → reference count across every linted module (cached per index)."""
        if self._cache is not None and self._cache[0] == id(index):
            return self._cache[1]
        counts: dict[str, int] = {}

        def bump(name: str) -> None:
            counts[name] = counts.get(name, 0) + 1

        for module in index:
            if module.rel.endswith("__init__.py"):
                continue  # re-export plumbing is not usage
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Name):
                    bump(node.id)
                elif isinstance(node, ast.arg):
                    bump(node.arg)  # pytest fixtures are requested by parameter name
                elif isinstance(node, ast.Attribute):
                    bump(node.attr)
                elif isinstance(node, ast.ImportFrom):
                    for alias in node.names:
                        bump(alias.name)
                elif isinstance(node, ast.Assign):
                    exports = any(
                        isinstance(target, ast.Name) and target.id == "__all__"
                        for target in node.targets
                    )
                    if exports:
                        for inner in ast.walk(node.value):
                            if isinstance(inner, ast.Constant) and isinstance(
                                inner.value, str
                            ):
                                bump(inner.value)
        self._cache = (id(index), counts)
        return counts

"""RL006 — wire-codec parity: encoders and decoders agree on keys.

Every wire format in the stack is a hand-written pair — ``problem_to_wire``
/ ``problem_from_wire``, ``response_to_dict`` / ``response_from_dict``,
``Span.to_dict`` / ``span_from_dict``, the store's ``_entry_to_document`` /
``_entry_from_document``.  The failure mode is always the same: a field
added to one side and not the other, surfacing as a ``KeyError`` in a
*different process* (a shard, a revalidation worker) long after the edit.

This rule pairs codecs by name within a module and diffs the key sets it
can extract statically:

* **emitted** — string keys of dict literals (and ``dict(k=...)`` keywords,
  ``doc["k"] = ...`` stores) anywhere in the encoder body;
* **read** — ``doc["k"]`` subscripts (required), ``.get("k")`` calls and
  ``"k" in doc`` tests (optional) anywhere in the decoder body.

A key the encoder emits that the decoder never reads, or a key the decoder
*requires* that the encoder never emits, is a finding.  Codecs whose keys
cannot be extracted (tuple wire formats, delegating encoders) are skipped —
the rule only speaks when it can see both sides.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis.index import Module, ModuleIndex
from repro.analysis.model import Finding, Severity

__all__ = ["WireParityChecker"]

_SUFFIXES = ("wire", "dict", "document")

_FuncDef = ast.FunctionDef | ast.AsyncFunctionDef


def _snake(name: str) -> str:
    return re.sub(r"(?<!^)(?=[A-Z])", "_", name).lower()


def _emitted_keys(func: _FuncDef) -> set[str]:
    keys: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Dict):
            keys.update(
                key.value
                for key in node.keys
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
            )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id == "dict":
                keys.update(kw.arg for kw in node.keywords if kw.arg is not None)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    keys.add(target.slice.value)
    return keys


def _read_keys(func: _FuncDef) -> tuple[set[str], set[str]]:
    """``(required, optional)`` keys the decoder touches."""
    required: set[str] = set()
    optional: set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.ctx, ast.Load)
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            required.add(node.slice.value)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            optional.add(node.args[0].value)
        elif isinstance(node, ast.Compare) and any(
            isinstance(op, (ast.In, ast.NotIn)) for op in node.ops
        ):
            if isinstance(node.left, ast.Constant) and isinstance(node.left.value, str):
                optional.add(node.left.value)
    return required, optional


def _codec_pairs(tree: ast.Module) -> list[tuple[_FuncDef, _FuncDef]]:
    """(encoder, decoder) pairs found by name in one module."""
    functions: dict[str, _FuncDef] = {}
    classes: list[ast.ClassDef] = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions[node.name] = node
        elif isinstance(node, ast.ClassDef):
            classes.append(node)

    pairs: list[tuple[_FuncDef, _FuncDef]] = []
    for name, encoder in functions.items():
        for suffix in _SUFFIXES:
            marker = f"_to_{suffix}"
            if name.endswith(marker):
                partner = name[: -len(marker)] + f"_from_{suffix}"
                if partner in functions:
                    pairs.append((encoder, functions[partner]))

    for cls in classes:
        methods = {
            node.name: node
            for node in cls.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for suffix in _SUFFIXES:
            encoder = methods.get(f"to_{suffix}")
            if encoder is None:
                continue
            decoder = methods.get(f"from_{suffix}")
            if decoder is None:
                decoder = functions.get(f"{_snake(cls.name)}_from_{suffix}")
            if decoder is not None:
                pairs.append((encoder, decoder))
    return pairs


class WireParityChecker:
    rule = "RL006"
    name = "wire-codec-parity"
    description = "paired *_to_wire/*_from_wire codecs must agree on their keys"
    severity = Severity.ERROR
    default = True

    def check(self, module: Module, index: ModuleIndex) -> Iterable[Finding]:
        findings: list[Finding] = []
        for encoder, decoder in _codec_pairs(module.tree):
            emitted = _emitted_keys(encoder)
            required, optional = _read_keys(decoder)
            if not emitted or not (required | optional):
                continue  # tuple wire format or delegating codec: nothing to diff
            for key in sorted(emitted - required - optional):
                findings.append(
                    Finding(
                        rule=self.rule,
                        path=module.rel,
                        line=encoder.lineno,
                        message=(
                            f"{encoder.name} emits key {key!r} that "
                            f"{decoder.name} never reads"
                        ),
                        hint="read the key in the decoder, or stop emitting it",
                    )
                )
            for key in sorted(required - emitted):
                findings.append(
                    Finding(
                        rule=self.rule,
                        path=module.rel,
                        line=decoder.lineno,
                        message=(
                            f"{decoder.name} requires key {key!r} that "
                            f"{encoder.name} never emits"
                        ),
                        hint="emit the key in the encoder, or .get() it with a default",
                    )
                )
        return findings

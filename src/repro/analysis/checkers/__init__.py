"""The rule registry: every checker the ``repro lint`` engine knows.

Each module in this package implements one rule behind the
:class:`~repro.analysis.engine.Checker` protocol.  :func:`all_checkers`
is the single registration point — the CLI, the engine's unknown-rule
validation, and the README rule table all derive from it.
"""

from __future__ import annotations

from repro.analysis.checkers.async_blocking import AsyncBlockingChecker
from repro.analysis.checkers.dead_symbols import DeadSymbolChecker
from repro.analysis.checkers.fork_safety import ForkSafetyChecker
from repro.analysis.checkers.import_hygiene import ImportHygieneChecker
from repro.analysis.checkers.lock_discipline import LockDisciplineChecker
from repro.analysis.checkers.monotonic_time import MonotonicTimeChecker
from repro.analysis.checkers.randomness import SeededRandomnessChecker
from repro.analysis.checkers.span_hygiene import SpanHygieneChecker
from repro.analysis.checkers.wire_parity import WireParityChecker

__all__ = ["all_checkers"]


def all_checkers():
    """Every registered checker, in rule-id order."""
    return [
        AsyncBlockingChecker(),
        MonotonicTimeChecker(),
        LockDisciplineChecker(),
        ImportHygieneChecker(),
        ForkSafetyChecker(),
        WireParityChecker(),
        SeededRandomnessChecker(),
        SpanHygieneChecker(),
        DeadSymbolChecker(),
    ]

"""RL003 — lock discipline for ``# guarded-by:`` annotated attributes.

The serving stack's shared-state classes (``PlanCache``, ``ServingMetrics``,
``OptimizerPool``, ``ResponseMultiplexer``, ``SpanStore``) each pair mutable
attributes with one lock.  The pairing lives only in developers' heads until
it is written down — and an unguarded read slipped into
``ResponseMultiplexer.close()`` exactly that way.  This rule makes the
pairing checkable::

    self._stats = CacheStats()          # guarded-by: _lock
    _stats: CacheStats = field(...)     # guarded-by: _lock   (dataclass body)

    def _sorted_reservoir(self):        # requires-lock: _lock
        ...

Every ``self.X`` access to a guarded attribute outside a lexical
``with self.<lock>:`` block (in any method of the class) is a finding.
``# requires-lock: <lock>`` on a ``def`` line declares a caller-holds-lock
helper: its body is checked as if the lock were held, and the *call sites*
remain the callers' responsibility.  ``__init__``/``__post_init__``/
``__del__`` are exempt — construction and teardown are single-threaded.
Nested functions are checked with no locks held: a closure runs on whatever
thread calls it, which is precisely when the annotation matters.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis.index import Module, ModuleIndex
from repro.analysis.model import Finding, Severity

__all__ = ["LockDisciplineChecker"]

_GUARDED_RE = re.compile(r"guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")
_REQUIRES_RE = re.compile(r"requires-lock:\s*([A-Za-z_][A-Za-z0-9_]*)")
_EXEMPT_METHODS = {"__init__", "__post_init__", "__del__"}

_Body = list[ast.stmt]


def _self_attr(node: ast.AST) -> str | None:
    """``self.X`` → ``"X"``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class LockDisciplineChecker:
    rule = "RL003"
    name = "guarded-by-lock-discipline"
    description = "guarded-by annotated attributes are only touched under their lock"
    severity = Severity.ERROR
    default = True

    def check(self, module: Module, index: ModuleIndex) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                self._check_class(module, node, findings)
        return findings

    # -- annotation collection ---------------------------------------------

    def _annotation(
        self, module: Module, first: int, last: int, findings: list[Finding]
    ) -> str | None:
        """The guarded-by lock named on lines ``first``..``last``, if any."""
        text = module.comment_in_range(first, last, "guarded-by")
        if text is None:
            return None
        match = _GUARDED_RE.search(text)
        if match is None:
            findings.append(
                Finding(
                    rule=self.rule,
                    path=module.rel,
                    line=first,
                    message=f"malformed guarded-by annotation: {text.strip()!r}",
                    hint="expected '# guarded-by: <lock_attribute>'",
                )
            )
            return None
        return match.group(1)

    def _guarded_attrs(
        self, module: Module, cls: ast.ClassDef, findings: list[Finding]
    ) -> dict[str, str]:
        """attr name → lock name, from class-body and ``self.X = ...`` lines."""
        guarded: dict[str, str] = {}
        for stmt in cls.body:
            targets: list[str] = []
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                targets = [stmt.target.id]
            elif isinstance(stmt, ast.Assign):
                targets = [
                    target.id for target in stmt.targets if isinstance(target, ast.Name)
                ]
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for inner in ast.walk(stmt):
                    if isinstance(inner, (ast.Assign, ast.AnnAssign)):
                        assign_targets = (
                            inner.targets
                            if isinstance(inner, ast.Assign)
                            else [inner.target]
                        )
                        for target in assign_targets:
                            attr = _self_attr(target)
                            if attr is not None:
                                lock = self._annotation(
                                    module,
                                    inner.lineno,
                                    inner.end_lineno or inner.lineno,
                                    findings,
                                )
                                if lock is not None:
                                    guarded[attr] = lock
                continue
            if targets:
                lock = self._annotation(
                    module, stmt.lineno, stmt.end_lineno or stmt.lineno, findings
                )
                if lock is not None:
                    for name in targets:
                        guarded[name] = lock
        return guarded

    def _required_locks(
        self, module: Module, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> frozenset[str]:
        """Locks declared held by ``# requires-lock:`` on the def line."""
        first = func.lineno
        last = func.body[0].lineno - 1 if func.body else func.lineno
        text = module.comment_in_range(first, max(first, last), "requires-lock")
        if text is None:
            return frozenset()
        return frozenset(_REQUIRES_RE.findall(text))

    # -- access checking ---------------------------------------------------

    def _check_class(
        self, module: Module, cls: ast.ClassDef, findings: list[Finding]
    ) -> None:
        guarded = self._guarded_attrs(module, cls, findings)
        if not guarded:
            return
        for stmt in cls.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name in _EXEMPT_METHODS:
                continue
            held = set(self._required_locks(module, stmt))
            self._scan_body(module, stmt.body, guarded, held, findings)

    def _scan_body(
        self,
        module: Module,
        body: _Body,
        guarded: dict[str, str],
        held: set[str],
        findings: list[Finding],
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired = set(held)
                for item in stmt.items:
                    self._check_expr(module, item.context_expr, guarded, held, findings)
                    attr = _self_attr(item.context_expr)
                    if attr is not None:
                        acquired.add(attr)
                self._scan_body(module, stmt.body, guarded, acquired, findings)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A closure runs on whatever thread calls it — no lock assumed.
                self._scan_body(module, stmt.body, guarded, set(), findings)
            elif isinstance(stmt, ast.ClassDef):
                self._scan_body(module, stmt.body, guarded, held, findings)
            elif isinstance(stmt, (ast.If, ast.While)):
                self._check_expr(module, stmt.test, guarded, held, findings)
                self._scan_body(module, stmt.body, guarded, held, findings)
                self._scan_body(module, stmt.orelse, guarded, held, findings)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._check_expr(module, stmt.iter, guarded, held, findings)
                self._scan_body(module, stmt.body, guarded, held, findings)
                self._scan_body(module, stmt.orelse, guarded, held, findings)
            elif isinstance(stmt, ast.Try):
                self._scan_body(module, stmt.body, guarded, held, findings)
                for handler in stmt.handlers:
                    self._scan_body(module, handler.body, guarded, held, findings)
                self._scan_body(module, stmt.orelse, guarded, held, findings)
                self._scan_body(module, stmt.finalbody, guarded, held, findings)
            else:
                self._check_expr(module, stmt, guarded, held, findings)

    def _check_expr(
        self,
        module: Module,
        node: ast.AST,
        guarded: dict[str, str],
        held: set[str],
        findings: list[Finding],
    ) -> None:
        for inner in ast.walk(node):
            attr = _self_attr(inner)
            if attr is None or attr not in guarded:
                continue
            lock = guarded[attr]
            if lock not in held:
                findings.append(
                    Finding(
                        rule=self.rule,
                        path=module.rel,
                        line=inner.lineno,
                        message=(
                            f"self.{attr} accessed without holding self.{lock} "
                            f"(annotated '# guarded-by: {lock}')"
                        ),
                        hint=(
                            f"wrap in 'with self.{lock}:' or mark the method "
                            f"'# requires-lock: {lock}'"
                        ),
                        column=inner.col_offset,
                    )
                )

"""Inline suppression directives: ``# repro-lint: disable=RULE — reason``.

A suppression silences specific rules at one location *with a written
justification* — the reason is mandatory, so every exception to an invariant
is documented where it lives.  The grammar::

    # repro-lint: disable=RL002 — span starts are wall-clock by design
    # repro-lint: disable=RL001,RL008 — bridged via the bounded executor

* one or more rule ids, comma-separated, each matching ``[A-Z]+[0-9]+``;
* a separator (an em dash ``—``, ``--`` or ``:``) followed by a non-empty
  reason.

A trailing directive suppresses findings on its own line; a directive on a
comment-only line suppresses findings on the next source line (so long
statements can carry their justification above them).

Malformed directives — a ``repro-lint:`` comment the grammar rejects — are
**findings themselves** (rule ``LINT000``), never silent no-ops: a typo'd
suppression that quietly suppressed nothing would be the worst of both
worlds.  Unknown rule ids are likewise reported, by the engine, which knows
the registry.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.analysis.model import Finding, Severity

__all__ = ["Suppression", "parse_directives", "suppressed_rules"]

ENGINE_RULE = "LINT000"
"""Rule id of the engine's own findings (malformed/unknown directives)."""

_MARKER = "repro-lint:"
_DIRECTIVE_RE = re.compile(
    r"repro-lint:\s*disable\s*=\s*(?P<rules>[A-Z]+[0-9]+(?:\s*,\s*[A-Z]+[0-9]+)*)"
    r"\s*(?:—|--|:)\s*(?P<reason>\S.*)$"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed directive: the rules it silences, where, and why."""

    rules: tuple[str, ...]
    reason: str
    comment_line: int
    """Line the directive comment sits on."""

    effective_line: int
    """Line whose findings it suppresses (next line for comment-only lines)."""


def parse_directives(
    comments: Mapping[int, str], code_lines: frozenset[int], path: str
) -> tuple[list[Suppression], list[Finding]]:
    """Extract suppression directives from a file's comments.

    ``comments`` maps line number to comment text (without the leading
    ``#``); ``code_lines`` is the set of lines carrying non-comment source,
    used to distinguish trailing directives from comment-only ones.  Returns
    the parsed suppressions plus ``LINT000`` findings for every comment that
    names the marker but fails the grammar.
    """
    suppressions: list[Suppression] = []
    malformed: list[Finding] = []
    for line, text in sorted(comments.items()):
        if _MARKER not in text:
            continue
        match = _DIRECTIVE_RE.search(text)
        if match is None:
            malformed.append(
                Finding(
                    rule=ENGINE_RULE,
                    path=path,
                    line=line,
                    message=f"malformed repro-lint directive: {text.strip()!r}",
                    severity=Severity.ERROR,
                    hint="expected '# repro-lint: disable=RL00x[,RL00y] — reason'",
                )
            )
            continue
        rules = tuple(part.strip() for part in match.group("rules").split(","))
        effective = line if line in code_lines else line + 1
        suppressions.append(
            Suppression(
                rules=rules,
                reason=match.group("reason").strip(),
                comment_line=line,
                effective_line=effective,
            )
        )
    return suppressions, malformed


def suppressed_rules(suppressions: Iterable[Suppression]) -> dict[int, set[str]]:
    """Collapse suppressions into ``{effective_line: {rule, ...}}``."""
    by_line: dict[int, set[str]] = {}
    for suppression in suppressions:
        by_line.setdefault(suppression.effective_line, set()).update(suppression.rules)
    return by_line

"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.serialization import load_problem, save_problem
from repro.workloads import credit_card_screening


@pytest.fixture
def problem_file(tmp_path):
    return str(save_problem(credit_card_screening(), tmp_path / "problem.json"))


class TestGenerate:
    def test_generates_a_loadable_problem(self, tmp_path, capsys):
        output = tmp_path / "generated.json"
        assert main(["generate", "--services", "5", "--seed", "3", "-o", str(output)]) == 0
        problem = load_problem(output)
        assert problem.size == 5
        assert "wrote" in capsys.readouterr().out

    def test_generation_is_seeded(self, tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        main(["generate", "--services", "6", "--seed", "9", "-o", str(first)])
        main(["generate", "--services", "6", "--seed", "9", "-o", str(second)])
        assert load_problem(first).costs == load_problem(second).costs


class TestOptimize:
    def test_human_readable_output(self, problem_file, capsys):
        assert main(["optimize", problem_file]) == 0
        output = capsys.readouterr().out
        assert "bottleneck" in output
        assert "branch_and_bound" in output

    def test_json_output(self, problem_file, capsys):
        assert main(["optimize", problem_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "branch_and_bound"
        assert payload["optimal"] is True
        assert len(payload["plan"]["stages"]) == 4

    def test_alternative_algorithm(self, problem_file, capsys):
        assert main(["optimize", problem_file, "--algorithm", "greedy_cheapest_cost", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "greedy_cheapest_cost"

    def test_missing_file_is_a_clean_error(self, tmp_path, capsys):
        assert main(["optimize", str(tmp_path / "missing.json")]) == 2
        assert "error" in capsys.readouterr().err


class TestSimulate:
    def test_defaults_to_the_optimal_plan(self, problem_file, capsys):
        assert main(["simulate", problem_file, "--tuples", "300", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tuples_delivered"] >= 0
        assert payload["relative_error"] < 0.2

    def test_explicit_order(self, problem_file, capsys):
        assert main(["simulate", problem_file, "--order", "3,2,1,0", "--tuples", "200"]) == 0
        assert "makespan" in capsys.readouterr().out

    def test_invalid_order_rejected(self, problem_file, capsys):
        assert main(["simulate", problem_file, "--order", "0,1"]) == 2
        assert "permutation" in capsys.readouterr().err

    def test_non_numeric_order_rejected(self, problem_file, capsys):
        assert main(["simulate", problem_file, "--order", "a,b,c,d"]) == 2
        assert "error" in capsys.readouterr().err


class TestPlan:
    def test_plan_reports_portfolio_answer(self, problem_file, capsys):
        assert main(["plan", problem_file, "--budget", "0.5"]) == 0
        output = capsys.readouterr().out
        assert "portfolio" in output
        assert "plan:" in output

    def test_cached_repeats_hit_the_cache(self, problem_file, capsys):
        assert main(["plan", problem_file, "--cached", "--repeat", "3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 3
        assert [entry["cache_hit"] for entry in payload] == [False, True, True]
        assert payload[1]["latency_seconds"] <= payload[0]["latency_seconds"]

    def test_uncached_repeats_stay_cold(self, problem_file, capsys):
        assert main(["plan", problem_file, "--repeat", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [entry["cache_hit"] for entry in payload] == [False, False]

    def test_invalid_repeat_rejected(self, problem_file, capsys):
        assert main(["plan", problem_file, "--repeat", "0"]) == 2
        assert "error" in capsys.readouterr().err

    def test_kernel_knob_is_reported(self, problem_file, capsys):
        from repro.core.vector import set_default_kernel

        try:
            assert main(["plan", problem_file, "--kernel", "scalar"]) == 0
            output = capsys.readouterr().out
            assert "kernel: scalar (requested scalar)" in output
        finally:
            set_default_kernel(None)

    def test_unknown_kernel_rejected_by_argparse(self, problem_file, capsys):
        with pytest.raises(SystemExit):
            main(["plan", problem_file, "--kernel", "simd"])
        assert "invalid choice" in capsys.readouterr().err


class TestServe:
    def test_serve_binds_and_shuts_down(self, capsys, monkeypatch):
        from repro.serving import PlanServer

        # Substitute the blocking accept loop with an immediate interrupt so
        # the command exercises its full startup/shutdown path.
        def fake_serve_forever(self, poll_interval=0.5):
            raise KeyboardInterrupt

        monkeypatch.setattr(PlanServer, "serve_forever", fake_serve_forever)
        assert main(["serve", "--port", "0", "--budget", "0.2"]) == 0
        output = capsys.readouterr().out
        assert "listening on http://" in output
        assert "shutting down" in output

    def test_serve_routes_through_shards(self, capsys, monkeypatch):
        from repro.serving import PlanServer

        def fake_serve_forever(self, poll_interval=0.5):
            from repro.sharding import ShardRouter

            assert isinstance(self.plan_service, ShardRouter)
            assert self.plan_service.stats()["shards"] == 2
            raise KeyboardInterrupt

        monkeypatch.setattr(PlanServer, "serve_forever", fake_serve_forever)
        assert (
            main(
                [
                    "serve",
                    "--port",
                    "0",
                    "--budget",
                    "0.2",
                    "--shards",
                    "2",
                    "--shard-backend",
                    "inproc",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "2 inproc shards" in output

    def test_serve_rejects_invalid_shards(self, capsys):
        assert main(["serve", "--port", "0", "--shards", "0"]) == 2
        assert "error" in capsys.readouterr().err

    def test_serve_async_binds_and_shuts_down(self, capsys, monkeypatch):
        import repro.cli as cli_module

        # Substitute the foreground wait with an immediate interrupt so the
        # command exercises the async startup + graceful shutdown path.
        def fake_wait():
            raise KeyboardInterrupt

        monkeypatch.setattr(cli_module, "_wait_forever", fake_wait)
        assert main(["serve", "--port", "0", "--budget", "0.2", "--async"]) == 0
        output = capsys.readouterr().out
        assert "async front end" in output
        assert "shutting down" in output


class TestScenariosAndExperiments:
    def test_list_scenarios(self, capsys):
        assert main(["scenarios"]) == 0
        output = capsys.readouterr().out
        assert "credit-card-screening" in output
        assert "federated-document-pipeline" in output

    def test_optimize_named_scenario(self, capsys):
        assert main(["scenarios", "sensor-quality-pipeline"]) == 0
        assert "bottleneck" in capsys.readouterr().out

    def test_unknown_scenario(self, capsys):
        assert main(["scenarios", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_experiment_by_id(self, capsys, monkeypatch):
        # Replace E1 with a tiny-parameter variant so the CLI test stays fast.
        from repro.experiments import REGISTRY, Experiment
        from repro.experiments.e1_optimality import run_e1_optimality

        tiny = Experiment(
            "E1",
            "Optimality (tiny)",
            "tiny variant for the CLI test",
            lambda **kwargs: run_e1_optimality(sizes=(4,), instances_per_size=1),
        )
        monkeypatch.setitem(REGISTRY._experiments, "E1", tiny)
        assert main(["experiment", "e1"]) == 0
        output = capsys.readouterr().out
        assert output.startswith("## E1")

    def test_unknown_experiment_id(self, capsys):
        assert main(["experiment", "E42"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestBench:
    def test_runs_a_benchmark_module_and_writes_its_artifact(self, tmp_path, capsys):
        # A tiny stand-in module keeps this test fast and hermetic; the real
        # bench modules are smoke-run in CI through the same subcommand.
        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        (bench_dir / "bench_demo.py").write_text(
            "import json, pathlib\n"
            "def main(argv=None):\n"
            "    argv = list(argv or [])\n"
            "    out = pathlib.Path(argv[argv.index('-o') + 1])\n"
            "    out.write_text(json.dumps({'benchmark': 'demo'}))\n"
            "    print('wrote', out)\n"
            # No return: a main() falling off the end must count as success.
        )
        artifact = tmp_path / "out.json"
        assert (
            main(
                [
                    "bench",
                    "--benchmarks-dir",
                    str(bench_dir),
                    "demo",
                    "-o",
                    str(artifact),
                ]
            )
            == 0
        )
        assert json.loads(artifact.read_text()) == {"benchmark": "demo"}
        assert "wrote" in capsys.readouterr().out

    def test_unknown_benchmark_is_a_clean_error(self, tmp_path, capsys):
        assert main(["bench", "--benchmarks-dir", str(tmp_path), "nope"]) == 2
        assert "no benchmark module" in capsys.readouterr().err

    def test_plan_accepts_the_process_backend(self, problem_file, capsys):
        assert main(["plan", problem_file, "--backend", "processes", "--budget", "5"]) == 0
        assert "portfolio" in capsys.readouterr().out

"""Keeps the worked example in ``docs/ALGORITHM.md`` consistent with the code.

If any of these assertions fails, the numbers in the documentation no longer
describe what the library computes and the document must be updated.
"""

from __future__ import annotations

from itertools import permutations

import pytest

from repro.core import (
    CommunicationCostMatrix,
    OrderingProblem,
    PartialPlan,
    branch_and_bound,
    exhaustive_search,
)
from repro.core.bounds import max_residual_cost


@pytest.fixture
def documented_problem() -> OrderingProblem:
    """The four-service, two-site instance used in docs/ALGORITHM.md §4."""
    return OrderingProblem.from_parameters(
        costs=[1.0, 2.0, 0.5, 3.0],
        selectivities=[0.5, 0.8, 0.9, 0.4],
        transfer=CommunicationCostMatrix(
            [
                [0.0, 0.5, 4.0, 4.0],
                [0.5, 0.0, 4.0, 4.0],
                [4.0, 4.0, 0.0, 0.5],
                [4.0, 4.0, 0.5, 0.0],
            ]
        ),
        names=["A", "B", "C", "D"],
    )


class TestWorkedExample:
    def test_prefix_measures(self, documented_problem):
        prefix_a = PartialPlan.from_order(documented_problem, (0,))
        assert prefix_a.epsilon == pytest.approx(1.0)
        assert max_residual_cost(prefix_a).value == pytest.approx(3.0)

        prefix_ab = PartialPlan.from_order(documented_problem, (0, 1))
        assert prefix_ab.epsilon == pytest.approx(1.25)
        assert max_residual_cost(prefix_ab).value == pytest.approx(2.6)

        prefix_abc = PartialPlan.from_order(documented_problem, (0, 1, 2))
        assert prefix_abc.epsilon == pytest.approx(2.6)
        assert prefix_abc.bottleneck_position == 1  # service B
        assert max_residual_cost(prefix_abc).value == pytest.approx(1.08)
        # Lemma 2 applies: every completion of (A, B, C) costs exactly 2.6.
        assert documented_problem.cost((0, 1, 2, 3)) == pytest.approx(2.6)

    def test_optimal_and_worst_plans(self, documented_problem):
        result = branch_and_bound(documented_problem)
        assert result.plan.service_names == ("B", "A", "C", "D")
        assert result.cost == pytest.approx(2.4)
        assert result.cost == pytest.approx(exhaustive_search(documented_problem).cost)
        worst = max(
            documented_problem.cost(order) for order in permutations(range(4))
        )
        assert worst == pytest.approx(5.2)

    def test_search_effort_as_documented(self, documented_problem):
        stats = branch_and_bound(documented_problem).statistics
        assert stats.nodes_expanded == 17
        assert stats.lemma2_closures == 1
        assert stats.lemma3_prunes == 1
        assert stats.incumbent_updates == 1
        assert stats.extra["seed_cost"] == pytest.approx(2.6)

"""Unit tests for JSON (de)serialization of problems, plans and results."""

from __future__ import annotations

import json

import pytest

from repro.core import branch_and_bound
from repro.exceptions import InvalidProblemError
from repro.serialization import (
    PROBLEM_FORMAT,
    load_problem,
    plan_to_dict,
    problem_from_dict,
    problem_to_dict,
    result_to_dict,
    save_problem,
)
from repro.workloads import credit_card_screening, federated_document_pipeline


class TestProblemRoundTrip:
    def test_round_trip_preserves_everything(self, four_service_problem):
        document = problem_to_dict(four_service_problem)
        assert document["format"] == PROBLEM_FORMAT
        restored = problem_from_dict(document)
        assert restored.costs == four_service_problem.costs
        assert restored.selectivities == four_service_problem.selectivities
        assert restored.transfer == four_service_problem.transfer
        assert [s.name for s in restored.services] == [s.name for s in four_service_problem.services]

    def test_round_trip_with_precedence_and_hosts(self):
        problem = federated_document_pipeline()
        restored = problem_from_dict(problem_to_dict(problem))
        assert restored.has_precedence_constraints
        assert sorted(restored.precedence.edges()) == sorted(problem.precedence.edges())
        assert [s.host for s in restored.services] == [s.host for s in problem.services]
        # Optimization gives the same answer on both.
        assert branch_and_bound(restored).cost == pytest.approx(branch_and_bound(problem).cost)

    def test_round_trip_with_sink_transfer(self, three_service_problem):
        problem = three_service_problem.with_sink_transfer([1.0, 2.0, 3.0])
        restored = problem_from_dict(problem_to_dict(problem))
        assert restored.sink_transfer == (1.0, 2.0, 3.0)

    def test_file_round_trip(self, tmp_path):
        problem = credit_card_screening()
        path = save_problem(problem, tmp_path / "problem.json")
        restored = load_problem(path)
        assert restored.name == problem.name
        assert restored.transfer == problem.transfer
        # The file is valid, human-readable JSON.
        document = json.loads(path.read_text())
        assert document["format"] == PROBLEM_FORMAT


class TestMalformedDocuments:
    def test_wrong_format_rejected(self):
        with pytest.raises(InvalidProblemError):
            problem_from_dict({"format": "something-else", "services": [], "transfer": []})

    def test_wrong_version_rejected(self, four_service_problem):
        document = problem_to_dict(four_service_problem)
        document["version"] = 99
        with pytest.raises(InvalidProblemError):
            problem_from_dict(document)

    def test_missing_fields_rejected(self):
        with pytest.raises(InvalidProblemError):
            problem_from_dict({"format": PROBLEM_FORMAT, "version": 1, "services": [{"name": "a"}]})

    def test_empty_services_rejected(self):
        with pytest.raises(InvalidProblemError):
            problem_from_dict({"services": [], "transfer": []})

    def test_malformed_service_entry_rejected(self):
        with pytest.raises(InvalidProblemError):
            problem_from_dict({"services": [{"cost": 1.0}], "transfer": [[0.0]]})

    def test_malformed_precedence_edge_rejected(self, three_service_problem):
        document = problem_to_dict(three_service_problem)
        document["precedence"] = [[0]]
        with pytest.raises(InvalidProblemError):
            problem_from_dict(document)

    def test_non_dict_rejected(self):
        with pytest.raises(InvalidProblemError):
            problem_from_dict(["not", "a", "dict"])  # type: ignore[arg-type]

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(InvalidProblemError):
            load_problem(path)


class TestPlanAndResultSerialization:
    def test_plan_to_dict(self, four_service_problem):
        plan = branch_and_bound(four_service_problem).plan
        document = plan_to_dict(plan)
        assert document["order"] == list(plan.order)
        assert document["cost"] == pytest.approx(plan.cost)
        assert len(document["stages"]) == 4
        assert document["stages"][0]["input_rate"] == 1.0

    def test_result_to_dict_is_json_serializable(self, four_service_problem):
        result = branch_and_bound(four_service_problem)
        document = result_to_dict(result)
        encoded = json.dumps(document)
        assert "branch_and_bound" in encoded
        assert document["plan"]["cost"] == pytest.approx(result.cost)

"""Unit tests for the textual query parser."""

from __future__ import annotations

import pytest

from repro.exceptions import QueryError
from repro.workflow import parse_query


class TestParseQuery:
    def test_minimal_query(self):
        query = parse_query("PROCESS persons USING lookup, history")
        assert query.source == "persons"
        assert query.services == ("lookup", "history")
        assert query.explicit_precedence == ()
        assert query.input_attributes == frozenset()

    def test_full_query(self):
        query = parse_query(
            "PROCESS docs USING decrypt, classify, route "
            "WITH decrypt BEFORE classify, classify BEFORE route "
            "GIVEN doc_id, region"
        )
        assert query.source == "docs"
        assert query.services == ("decrypt", "classify", "route")
        assert query.explicit_precedence == (("decrypt", "classify"), ("classify", "route"))
        assert query.input_attributes == frozenset({"doc_id", "region"})

    def test_keywords_are_case_insensitive(self):
        query = parse_query("process docs using a, b with a before b")
        assert query.services == ("a", "b")
        assert query.explicit_precedence == (("a", "b"),)

    def test_multiline_input(self):
        query = parse_query(
            """
            PROCESS sensor_readings
            USING range_check, dedup, outlier_filter
            GIVEN reading_id
            """
        )
        assert query.source == "sensor_readings"
        assert len(query.services) == 3

    def test_empty_text_rejected(self):
        with pytest.raises(QueryError):
            parse_query("   ")

    def test_missing_using_clause_rejected(self):
        with pytest.raises(QueryError):
            parse_query("PROCESS persons")

    def test_malformed_precedence_rejected(self):
        with pytest.raises(QueryError):
            parse_query("PROCESS p USING a, b WITH a AFTER b")

    def test_invalid_identifier_rejected(self):
        with pytest.raises(QueryError):
            parse_query("PROCESS p USING a, 9bad")

    def test_empty_service_list_rejected(self):
        with pytest.raises(QueryError):
            parse_query("PROCESS p USING ,")

    def test_duplicate_services_rejected_by_query_model(self):
        with pytest.raises(QueryError):
            parse_query("PROCESS p USING a, a")

"""Unit tests for the declarative query model."""

from __future__ import annotations

import pytest

from repro.exceptions import QueryError
from repro.workflow import ServiceCatalog, ServiceDescriptor, ServiceQuery


def _catalog() -> ServiceCatalog:
    return ServiceCatalog(
        [
            ServiceDescriptor(
                "decrypt", host="h1", cost=1.0, selectivity=1.0, produces={"plaintext"}
            ),
            ServiceDescriptor(
                "classify",
                host="h2",
                cost=2.0,
                selectivity=0.5,
                consumes={"plaintext"},
                produces={"label"},
            ),
            ServiceDescriptor(
                "route", host="h3", cost=0.5, selectivity=0.9, consumes={"label"}
            ),
            ServiceDescriptor("audit", host="h4", cost=0.2, selectivity=1.0),
        ]
    )


class TestServiceQuery:
    def test_validation(self):
        with pytest.raises(QueryError):
            ServiceQuery(source="", services=("a",))
        with pytest.raises(QueryError):
            ServiceQuery(source="s", services=())
        with pytest.raises(QueryError):
            ServiceQuery(source="s", services=("a", "a"))
        with pytest.raises(QueryError):
            ServiceQuery(source="s", services=("a",), explicit_precedence=(("a", "b"),))

    def test_explicit_precedence_only(self):
        query = ServiceQuery(
            source="docs",
            services=("decrypt", "audit"),
            explicit_precedence=(("decrypt", "audit"),),
        )
        assert query.resolve_precedence(_catalog()) == [("decrypt", "audit")]

    def test_dataflow_precedence_derived_from_attributes(self):
        query = ServiceQuery(source="docs", services=("decrypt", "classify", "route"))
        constraints = query.resolve_precedence(_catalog())
        assert ("decrypt", "classify") in constraints
        assert ("classify", "route") in constraints

    def test_input_attributes_remove_constraints(self):
        query = ServiceQuery(
            source="docs",
            services=("classify", "route"),
            input_attributes={"plaintext"},
        )
        constraints = query.resolve_precedence(_catalog())
        assert ("classify", "route") in constraints
        assert all(before != "decrypt" for before, _ in constraints)

    def test_missing_attribute_provider_raises(self):
        query = ServiceQuery(source="docs", services=("classify",))
        with pytest.raises(QueryError, match="plaintext"):
            query.resolve_precedence(_catalog())

    def test_explicit_and_dataflow_constraints_are_merged(self):
        query = ServiceQuery(
            source="docs",
            services=("decrypt", "classify", "audit"),
            explicit_precedence=(("audit", "decrypt"),),
        )
        constraints = query.resolve_precedence(_catalog())
        assert ("audit", "decrypt") in constraints
        assert ("decrypt", "classify") in constraints

    def test_describe(self):
        query = ServiceQuery(source="docs", services=("decrypt", "audit"))
        assert "docs" in query.describe()

"""Unit tests for choreography generation."""

from __future__ import annotations

import pytest

from repro.core import branch_and_bound
from repro.workflow import CLIENT, build_choreography


class TestBuildChoreography:
    def test_instructions_follow_the_plan(self, four_service_problem):
        plan = branch_and_bound(four_service_problem).plan
        choreography = build_choreography(plan, block_size=8)
        assert len(choreography.instructions) == 4
        assert choreography.block_size == 8
        # First stage receives from the client, last forwards to the client.
        assert choreography.instructions[0].receive_from == CLIENT
        assert choreography.instructions[-1].forward_to == CLIENT
        # Chain consistency: stage i forwards to the service of stage i+1.
        names = [four_service_problem.service(index).name for index in plan.order]
        for position, instruction in enumerate(choreography.instructions):
            assert instruction.service == names[position]
            if position + 1 < len(names):
                assert instruction.forward_to == names[position + 1]
                assert choreography.instructions[position + 1].receive_from == names[position]

    def test_transfer_costs_match_problem(self, four_service_problem):
        plan = four_service_problem.plan([3, 0, 1, 2])
        choreography = build_choreography(plan)
        for position in range(3):
            expected = four_service_problem.transfer_cost(plan.order[position], plan.order[position + 1])
            assert choreography.instructions[position].transfer_cost == expected
        assert choreography.instructions[-1].transfer_cost == 0.0

    def test_sink_transfer_on_last_hop(self, three_service_problem):
        problem = three_service_problem.with_sink_transfer([1.0, 2.0, 3.0])
        plan = problem.plan([0, 1, 2])
        choreography = build_choreography(plan)
        assert choreography.instructions[-1].transfer_cost == 3.0

    def test_expected_bottleneck_cost(self, four_service_problem):
        plan = branch_and_bound(four_service_problem).plan
        choreography = build_choreography(plan)
        assert choreography.expected_bottleneck_cost == pytest.approx(plan.cost)

    def test_instruction_lookup(self, four_service_problem):
        plan = four_service_problem.plan([0, 1, 2, 3])
        choreography = build_choreography(plan)
        assert choreography.instruction_for("WS2").position == 2
        with pytest.raises(KeyError):
            choreography.instruction_for("nope")

    def test_invalid_block_size(self, four_service_problem):
        plan = four_service_problem.plan([0, 1, 2, 3])
        with pytest.raises(ValueError):
            build_choreography(plan, block_size=0)

    def test_describe_is_a_routing_table(self, four_service_problem):
        plan = four_service_problem.plan([0, 1, 2, 3])
        text = build_choreography(plan).describe()
        assert "WS0" in text and "recv<-" in text and "send->" in text

"""Unit tests for service descriptors and the catalogue."""

from __future__ import annotations

import pytest

from repro.exceptions import QueryError
from repro.workflow import ServiceCatalog, ServiceDescriptor


def _descriptor(name="svc", **overrides):
    defaults = dict(name=name, host="h1", cost=1.0, selectivity=0.5)
    defaults.update(overrides)
    return ServiceDescriptor(**defaults)


class TestServiceDescriptor:
    def test_valid_descriptor(self):
        descriptor = _descriptor(consumes={"a"}, produces={"b"})
        assert descriptor.consumes == frozenset({"a"})
        assert descriptor.produces == frozenset({"b"})

    def test_validation(self):
        with pytest.raises(QueryError):
            _descriptor(name="")
        with pytest.raises(QueryError):
            _descriptor(host="")
        with pytest.raises(QueryError):
            _descriptor(cost=-1.0)
        with pytest.raises(QueryError):
            _descriptor(selectivity=0.0)

    def test_to_service(self):
        service = _descriptor(name="x", host="node", cost=2.0, selectivity=0.3).to_service()
        assert service.name == "x"
        assert service.host == "node"
        assert service.cost == 2.0
        assert service.selectivity == 0.3


class TestServiceCatalog:
    def test_register_and_get(self):
        catalog = ServiceCatalog([_descriptor("a"), _descriptor("b")])
        assert len(catalog) == 2
        assert catalog.get("a").name == "a"
        assert "b" in catalog
        assert catalog.names() == ["a", "b"]

    def test_duplicate_rejected(self):
        catalog = ServiceCatalog([_descriptor("a")])
        with pytest.raises(QueryError):
            catalog.register(_descriptor("a"))

    def test_unknown_lookup_lists_known_names(self):
        catalog = ServiceCatalog([_descriptor("a")])
        with pytest.raises(QueryError, match="a"):
            catalog.get("missing")

    def test_iteration(self):
        catalog = ServiceCatalog([_descriptor("a"), _descriptor("b")])
        assert [d.name for d in catalog] == ["a", "b"]

"""Integration tests for the query planner (query -> problem -> plan -> choreography)."""

from __future__ import annotations

import pytest

from repro.core import exhaustive_search
from repro.exceptions import QueryError
from repro.network import clustered_topology, uniform_topology
from repro.workflow import QueryPlanner, ServiceCatalog, ServiceDescriptor, parse_query


def _catalog(hosts: list[str]) -> ServiceCatalog:
    return ServiceCatalog(
        [
            ServiceDescriptor("decrypt", host=hosts[0], cost=2.0, selectivity=1.0, produces={"plain"}),
            ServiceDescriptor("language", host=hosts[1], cost=1.0, selectivity=0.5),
            ServiceDescriptor(
                "classify", host=hosts[2], cost=5.0, selectivity=0.4, consumes={"plain"}
            ),
            ServiceDescriptor("summarize", host=hosts[3], cost=8.0, selectivity=1.0),
        ]
    )


@pytest.fixture
def planner() -> QueryPlanner:
    topology = clustered_topology(2, 2, seed=3)
    hosts = topology.host_names()
    return QueryPlanner(_catalog(hosts), topology, tuple_size=2048.0, block_size=4)


class TestBuildProblem:
    def test_problem_has_one_service_per_reference(self, planner):
        query = parse_query("PROCESS docs USING decrypt, language, classify")
        problem = planner.build_problem(query)
        assert problem.size == 3
        assert [s.name for s in problem.services] == ["decrypt", "language", "classify"]

    def test_dataflow_constraint_becomes_precedence(self, planner):
        query = parse_query("PROCESS docs USING decrypt, classify")
        problem = planner.build_problem(query)
        assert problem.has_precedence_constraints
        decrypt = problem.service_index("decrypt")
        classify = problem.service_index("classify")
        assert decrypt in problem.precedence.predecessors(classify)

    def test_transfer_costs_come_from_topology(self, planner):
        query = parse_query("PROCESS docs USING decrypt, language, classify, summarize")
        problem = planner.build_problem(query)
        # Services on the same cluster communicate more cheaply than across clusters.
        assert problem.transfer.min_cost() < problem.transfer.max_cost()

    def test_unknown_service_raises(self, planner):
        query = parse_query("PROCESS docs USING decrypt, nonexistent")
        with pytest.raises(QueryError):
            planner.build_problem(query)


class TestPlan:
    def test_planned_query_is_optimal_and_consistent(self, planner):
        query = parse_query("PROCESS docs USING decrypt, language, classify, summarize")
        planned = planner.plan(query)
        assert planned.result.optimal
        assert planned.result.cost == pytest.approx(exhaustive_search(planned.problem).cost)
        assert planned.expected_response_time_per_tuple == pytest.approx(planned.result.cost)
        # Choreography follows the optimized order and the planner's block size.
        assert len(planned.choreography.instructions) == 4
        assert planned.choreography.block_size == 4

    def test_precedence_respected_in_final_plan(self, planner):
        query = parse_query("PROCESS docs USING decrypt, classify, summarize")
        planned = planner.plan(query)
        order = planned.result.order
        problem = planned.problem
        assert order.index(problem.service_index("decrypt")) < order.index(
            problem.service_index("classify")
        )

    def test_explicit_constraint_from_query_text(self, planner):
        query = parse_query("PROCESS docs USING language, summarize WITH summarize BEFORE language")
        planned = planner.plan(query)
        order = planned.result.order
        problem = planned.problem
        assert order.index(problem.service_index("summarize")) < order.index(
            problem.service_index("language")
        )

    def test_alternative_algorithm(self):
        topology = uniform_topology(4)
        planner = QueryPlanner(_catalog(topology.host_names()), topology, algorithm="greedy_cheapest_cost")
        planned = planner.plan(parse_query("PROCESS docs USING decrypt, language, summarize"))
        assert planned.result.algorithm == "greedy_cheapest_cost"
        assert not planned.result.optimal

    def test_describe_contains_routing_table(self, planner):
        planned = planner.plan(parse_query("PROCESS docs USING decrypt, language"))
        text = planned.describe()
        assert "Query over" in text
        assert "recv<-" in text

    def test_invalid_block_size(self):
        topology = uniform_topology(4)
        with pytest.raises(ValueError):
            QueryPlanner(_catalog(topology.host_names()), topology, block_size=0)

"""Unit tests for the named scenarios."""

from __future__ import annotations

import pytest

from repro.core import branch_and_bound, exhaustive_search
from repro.workloads import (
    all_scenarios,
    credit_card_screening,
    federated_document_pipeline,
    sensor_quality_pipeline,
)


class TestCreditCardScreening:
    def test_structure(self):
        problem = credit_card_screening()
        assert problem.size == 4
        names = [s.name for s in problem.services]
        assert "card_lookup" in names and "payment_history" in names
        lookup = problem.service(problem.service_index("card_lookup"))
        assert lookup.is_proliferative  # person -> many card numbers
        assert not problem.all_selective

    def test_transfer_costs_reflect_data_centres(self):
        problem = credit_card_screening()
        lookup = problem.service_index("card_lookup")
        history = problem.service_index("payment_history")
        fraud = problem.service_index("fraud_score")
        assert problem.transfer_cost(lookup, history) < problem.transfer_cost(lookup, fraud)

    def test_optimal_plan_is_found(self):
        problem = credit_card_screening()
        assert branch_and_bound(problem).cost == pytest.approx(exhaustive_search(problem).cost)


class TestSensorPipeline:
    def test_all_services_selective_or_neutral(self):
        problem = sensor_quality_pipeline()
        assert problem.all_selective
        assert problem.size == 6

    def test_edge_links_cheaper_than_edge_cloud(self):
        problem = sensor_quality_pipeline()
        range_check = problem.service_index("range_check")
        dedup = problem.service_index("dedup")
        calibration = problem.service_index("calibration")
        assert problem.transfer_cost(range_check, dedup) < problem.transfer_cost(
            range_check, calibration
        )


class TestDocumentPipeline:
    def test_precedence_constraints_present(self):
        problem = federated_document_pipeline()
        assert problem.has_precedence_constraints
        decrypt = problem.service_index("decrypt")
        scrubber = problem.service_index("pii_scrubber")
        assert decrypt in problem.precedence.predecessors(scrubber)

    def test_transfer_matrix_is_asymmetric(self):
        problem = federated_document_pipeline()
        assert not problem.transfer.is_symmetric()

    def test_optimal_plan_respects_constraints(self):
        problem = federated_document_pipeline()
        order = branch_and_bound(problem).order
        decrypt = problem.service_index("decrypt")
        assert order.index(decrypt) < order.index(problem.service_index("content_classifier"))


class TestAllScenarios:
    def test_registry_contains_three_named_problems(self):
        scenarios = all_scenarios()
        assert len(scenarios) == 3
        assert set(scenarios) == {
            "credit-card-screening",
            "sensor-quality-pipeline",
            "federated-document-pipeline",
        }
        for name, problem in scenarios.items():
            assert problem.name == name

"""Unit tests for the experiment workload suites."""

from __future__ import annotations

import pytest

from repro.workloads import (
    default_spec,
    heterogeneity_suite,
    scaling_suite,
    selectivity_suite,
    simulation_suite,
)


class TestDefaultSpec:
    def test_default_spec_is_selective_only(self):
        spec = default_spec(6)
        assert spec.service_count == 6
        # The baseline family keeps every service selective (sigma <= 1).
        from repro.workloads import generate_problem

        problem = generate_problem(spec, seed=0)
        assert problem.all_selective


class TestScalingSuite:
    def test_sizes_and_counts(self):
        suites = scaling_suite(sizes=(4, 5), instances_per_size=3, seed=1)
        assert set(suites) == {4, 5}
        assert all(len(problems) == 3 for problems in suites.values())
        assert all(problem.size == 4 for problem in suites[4])

    def test_reproducible(self):
        a = scaling_suite(sizes=(5,), instances_per_size=2, seed=3)
        b = scaling_suite(sizes=(5,), instances_per_size=2, seed=3)
        assert [p.costs for p in a[5]] == [p.costs for p in b[5]]


class TestHeterogeneitySuite:
    def test_levels_and_mean_preservation(self):
        suites = heterogeneity_suite(service_count=6, levels=(0.0, 1.0), instances_per_level=2)
        assert set(suites) == {0.0, 1.0}
        uniform_problem = suites[0.0][0]
        clustered_problem = suites[1.0][0]
        assert uniform_problem.has_uniform_transfer
        assert not clustered_problem.has_uniform_transfer
        assert uniform_problem.transfer.mean_cost() == pytest.approx(
            clustered_problem.transfer.mean_cost()
        )

    def test_services_identical_across_levels(self):
        suites = heterogeneity_suite(service_count=5, levels=(0.0, 0.5), instances_per_level=1)
        assert suites[0.0][0].costs == suites[0.5][0].costs
        assert suites[0.0][0].selectivities == suites[0.5][0].selectivities

    def test_heterogeneity_grows_with_level(self):
        suites = heterogeneity_suite(service_count=6, levels=(0.0, 0.5, 1.0), instances_per_level=1)
        values = [suites[level][0].transfer.heterogeneity() for level in (0.0, 0.5, 1.0)]
        assert values[0] <= values[1] <= values[2]


class TestSelectivitySuite:
    def test_three_regimes(self):
        regimes = selectivity_suite(service_count=5)
        assert [regime.name for regime in regimes] == [
            "highly-selective",
            "weakly-selective",
            "mixed-proliferative",
        ]

    def test_regimes_produce_expected_selectivity_ranges(self):
        from repro.workloads import generate_problem

        regimes = {regime.name: regime.spec for regime in selectivity_suite(service_count=8)}
        strong = generate_problem(regimes["highly-selective"], seed=1)
        assert max(strong.selectivities) <= 0.4
        weak = generate_problem(regimes["weakly-selective"], seed=1)
        assert min(weak.selectivities) >= 0.6
        mixed_has_proliferative = any(
            max(generate_problem(regimes["mixed-proliferative"], seed=seed).selectivities) > 1.0
            for seed in range(5)
        )
        assert mixed_has_proliferative


class TestSimulationSuite:
    def test_sizes(self):
        problems = simulation_suite(seed=1, instances=2, service_count=5)
        assert len(problems) == 2
        assert all(problem.size == 5 for problem in problems)

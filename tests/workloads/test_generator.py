"""Unit tests for the random problem generator."""

from __future__ import annotations

import pytest

from repro.exceptions import WorkloadError
from repro.workloads import Constant, Uniform, WorkloadSpec, generate_problem, generate_suite


class TestWorkloadSpec:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(service_count=0)
        with pytest.raises(WorkloadError):
            WorkloadSpec(precedence_density=1.5)

    def test_with_service_count(self):
        spec = WorkloadSpec(service_count=4)
        assert spec.with_service_count(9).service_count == 9
        assert spec.service_count == 4


class TestGenerateProblem:
    def test_reproducible_for_same_seed(self):
        spec = WorkloadSpec(service_count=6)
        a = generate_problem(spec, seed=5)
        b = generate_problem(spec, seed=5)
        assert a.costs == b.costs
        assert a.selectivities == b.selectivities
        assert a.transfer == b.transfer

    def test_different_seeds_differ(self):
        spec = WorkloadSpec(service_count=6)
        assert generate_problem(spec, seed=1).costs != generate_problem(spec, seed=2).costs

    def test_respects_distribution_bounds(self):
        spec = WorkloadSpec(
            service_count=10,
            cost=Uniform(1.0, 2.0),
            selectivity=Uniform(0.2, 0.4),
            transfer=Uniform(0.5, 0.6),
        )
        problem = generate_problem(spec, seed=3)
        assert all(1.0 <= cost <= 2.0 for cost in problem.costs)
        assert all(0.2 <= sigma <= 0.4 for sigma in problem.selectivities)
        assert problem.transfer.min_cost() >= 0.5
        assert problem.transfer.max_cost() <= 0.6

    def test_symmetric_transfer_flag(self):
        symmetric = generate_problem(WorkloadSpec(service_count=6, symmetric_transfer=True), seed=1)
        assert symmetric.transfer.is_symmetric()
        asymmetric = generate_problem(
            WorkloadSpec(service_count=6, symmetric_transfer=False), seed=1
        )
        assert not asymmetric.transfer.is_symmetric()

    def test_constant_distributions(self):
        spec = WorkloadSpec(
            service_count=4,
            cost=Constant(1.0),
            selectivity=Constant(0.5),
            transfer=Constant(2.0),
        )
        problem = generate_problem(spec, seed=0)
        assert set(problem.costs) == {1.0}
        assert problem.transfer.is_uniform()

    def test_precedence_density_zero_means_unconstrained(self):
        problem = generate_problem(WorkloadSpec(service_count=6, precedence_density=0.0), seed=1)
        assert not problem.has_precedence_constraints

    def test_precedence_density_one_forces_a_chain(self):
        problem = generate_problem(WorkloadSpec(service_count=5, precedence_density=1.0), seed=1)
        assert problem.has_precedence_constraints
        # With density 1 the only feasible order is 0, 1, 2, 3, 4.
        problem.validate_plan([0, 1, 2, 3, 4])
        with pytest.raises(Exception):
            problem.validate_plan([1, 0, 2, 3, 4])

    def test_sink_transfer_distribution(self):
        spec = WorkloadSpec(service_count=4, sink_transfer=Constant(3.0))
        problem = generate_problem(spec, seed=2)
        assert problem.sink_transfer == (3.0, 3.0, 3.0, 3.0)

    def test_services_are_named_and_hosted(self):
        problem = generate_problem(WorkloadSpec(service_count=3), seed=0)
        assert [s.name for s in problem.services] == ["WS0", "WS1", "WS2"]
        assert all(s.host is not None for s in problem.services)


class TestGenerateSuite:
    def test_suite_size_and_independence(self):
        suite = generate_suite(WorkloadSpec(service_count=5), count=4, seed=9)
        assert len(suite) == 4
        costs = {problem.costs for problem in suite}
        assert len(costs) == 4

    def test_suite_reproducibility(self):
        spec = WorkloadSpec(service_count=5)
        first = generate_suite(spec, count=3, seed=1)
        second = generate_suite(spec, count=3, seed=1)
        assert [p.costs for p in first] == [p.costs for p in second]

    def test_negative_count_rejected(self):
        with pytest.raises(WorkloadError):
            generate_suite(WorkloadSpec(service_count=3), count=-1)
